"""Request-level event-driven simulation of a CXL expander.

The analytic :class:`~repro.hw.cxl.device.CxlDevice` computes loaded
latency from closed-form queueing expressions.  This module simulates the
same device at *request* granularity -- each request traverses the inbound
link, the MC queue, a DRAM bank (with row-buffer state and refresh), and
the outbound link -- so the closed forms can be validated against an
independent mechanism, and so device-internal effects (bank conflicts,
refresh collisions, link retries) can be observed directly rather than
through the fitted tail model.

The simulation is deliberately structured after Figure 2b of the paper:

    CXL Ctrl -> request queue -> request scheduler -> DDR command -> DRAM

Requests arrive open-loop (Poisson at a configured load); per-request
latency is ``completion - arrival`` plus the host-side overhead.  A write
request (drawn from ``read_fraction``) serializes its data inbound like a
read request does, but its completion carries no data: on a full-duplex
link the outbound flit is skipped, while CXL-C's shared-bus controller
still pays a full flit for the acknowledgement.

Two engines compute the identical timeline:

* ``engine="scalar"`` -- the per-request reference loop below, written in
  the same max-plus / phase-shifted form as the kernels so every float
  operation matches.  It is also the tracing path: span emission is
  per-request by nature.
* ``engine="vector"`` -- the NumPy kernels in
  :mod:`repro.hw.cxl.kernels`; no Python loop over requests, typically
  an order of magnitude faster (``BENCH_eventsim.json``).
* ``engine="batch"`` -- the same kernels fused across *many* operating
  points at once (:func:`simulate_batch`): B cells' request streams run
  through one set of max-plus scans and one rounds loop, amortizing
  kernel call overhead across a whole campaign chunk.
* ``engine="auto"`` (default) -- vector, unless a trace buffer is active.

All engines are bit-identical -- latencies and all event counters --
for every device; the ``device`` diag layer enforces this on every
``repro validate`` (``eventsim-engine-identity`` for scalar vs vector,
``eventsim-batch-identity`` for batched vs solo, including under fault
plans).

Observability: when a :class:`~repro.obs.trace.TraceBuffer` is active
(passed explicitly or installed process-wide via ``--trace``), every Nth
request additionally emits one span per pipeline stage -- link transit,
transaction-layer queueing, MC scheduling, bank service -- in simulated
nanoseconds.  Tracing only *reads* the timeline the simulation computes
anyway: all random draws happen up front, before the event loop, so traced
and untraced runs are bit-identical, and each traced request's span
durations sum to its reported latency (the ``obs`` diag layer enforces
both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.inject import apply_fault_plan
from repro.faults.plan import active_fault_plan
from repro.hw.cxl.device import HOST_OVERHEAD_NS, CxlDevice
from repro.hw.cxl.kernels import (
    SimInputs,
    batch_chunks,
    batch_timeline,
    vector_timeline,
)
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_NS, metrics
from repro.obs.trace import TraceBuffer, tracing
from repro.rng import DEFAULT_SEED, generator_for
from repro.units import CACHELINE_BYTES

BANKS_PER_CHANNEL = 16
"""DDR4/DDR5 banks per channel visible to the scheduler."""

ENGINES = ("auto", "scalar", "vector", "batch")
"""Accepted ``engine`` arguments to :meth:`EventDrivenDevice.simulate`."""


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of one request-level simulation."""

    device: str
    offered_gbps: float
    latencies_ns: np.ndarray
    bank_conflicts: int
    refresh_collisions: int
    link_retries: int
    read_fraction: float = 1.0
    engine: str = "scalar"
    # RAS fault-injection ledger (all zero / None on fault-free runs)
    fault_plan: Optional[str] = None
    injected_retries: int = 0
    poisoned_reads: int = 0
    ecc_corrected: int = 0
    throttled_requests: int = 0

    def to_dict(self) -> dict:
        """JSON document for the run cache's disk tier.

        ``tolist()`` yields Python floats and ``json`` writes shortest
        round-trip reprs, so a reloaded result is bit-identical to the
        stored one.  No schema version is embedded: :class:`SimCell` keys
        fold ``FORMAT_VERSION``, so a format bump retires old documents
        as clean cache misses.
        """
        return {
            "kind": "eventsim",
            "device": self.device,
            "offered_gbps": self.offered_gbps,
            "latencies_ns": self.latencies_ns.tolist(),
            "bank_conflicts": self.bank_conflicts,
            "refresh_collisions": self.refresh_collisions,
            "link_retries": self.link_retries,
            "read_fraction": self.read_fraction,
            "engine": self.engine,
            "fault_plan": self.fault_plan,
            "injected_retries": self.injected_retries,
            "poisoned_reads": self.poisoned_reads,
            "ecc_corrected": self.ecc_corrected,
            "throttled_requests": self.throttled_requests,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EventSimResult":
        """Rebuild a result stored by :meth:`to_dict`."""
        if data.get("kind") != "eventsim":
            raise ValueError("not an eventsim document")
        return cls(
            device=data["device"],
            offered_gbps=data["offered_gbps"],
            latencies_ns=np.asarray(data["latencies_ns"], dtype=np.float64),
            bank_conflicts=int(data["bank_conflicts"]),
            refresh_collisions=int(data["refresh_collisions"]),
            link_retries=int(data["link_retries"]),
            read_fraction=data["read_fraction"],
            engine=data["engine"],
            fault_plan=data["fault_plan"],
            injected_retries=int(data["injected_retries"]),
            poisoned_reads=int(data["poisoned_reads"]),
            ecc_corrected=int(data["ecc_corrected"]),
            throttled_requests=int(data["throttled_requests"]),
        )

    @property
    def mean_ns(self) -> float:
        """Mean per-request latency."""
        return float(self.latencies_ns.mean())

    def percentile(self, p) -> float:
        """Latency percentile."""
        return float(np.percentile(self.latencies_ns, p))

    def tail_gap_ns(self) -> float:
        """p99.9 - p50."""
        return self.percentile(99.9) - self.percentile(50)


class EventDrivenDevice:
    """Request-level simulator for one :class:`CxlDevice`."""

    def __init__(self, device: CxlDevice, seed: int = DEFAULT_SEED):
        self.device = device
        self.seed = seed
        self._consts = None

    def _constants(self) -> dict:
        """Per-device timing constants, computed once per instance.

        ``_prepare`` runs once per campaign cell; walking the device
        profile's property chains (latency breakdown, link serialization)
        each time costs tens of microseconds that dwarf small-cell kernel
        work.  The cached values are the very objects the chains return,
        so every downstream float is unchanged.  Keyed on the module's
        ``BANKS_PER_CHANNEL`` so tests that patch it stay correct.
        """
        cached = self._consts
        if cached is not None and cached["banks_per_channel"] == BANKS_PER_CHANNEL:
            return cached
        device = self.device
        profile = device.profile
        timings = profile.dram.timings
        link = profile.link
        cached = {
            "banks_per_channel": BANKS_PER_CHANNEL,
            "n_banks": profile.dram.channels * BANKS_PER_CHANNEL,
            "flit_ns": link.serialization_ns(),
            "stack_ns": link.stack_latency_ns,
            "dispatch_ns": CACHELINE_BYTES / profile.backend_gbps,
            "fixed_mc_ns": device.latency_breakdown_ns()["controller"],
            "trefi_ns": timings.tREFI,
            "refresh_block_ns": 0.35 * timings.tRFC,
            "row_hit_ns": timings.row_hit_ns,
            "row_miss_ns": timings.row_miss_ns,
            "row_conflict_ns": timings.row_conflict_ns,
            "retry_penalty_ns": link.retry_penalty_ns,
            "retry_probability": link.retry_probability,
            "row_hit_rate": profile.dram.row_hit_rate,
            "full_duplex": link.full_duplex,
        }
        self._consts = cached
        return cached

    def _prepare(
        self, n_requests: int, offered_gbps: float, read_fraction: float
    ) -> SimInputs:
        """Draw all randomness and precompute the shared engine inputs.

        Both engines consume these exact arrays, so their float operations
        start from identical bits.  The RNG stream is keyed by the
        operating point; ``read_fraction`` joins the key -- and spends a
        draw -- only for mixed workloads, so every pure-read stream (the
        historical default) is unchanged.
        """
        device = self.device
        key = [
            "eventdevice", device.name,
            f"{offered_gbps:.3f}", f"{n_requests}",
        ]
        if read_fraction != 1.0:
            key.append(f"rf{read_fraction:.4f}")
        rng = generator_for(self.seed, *key)

        consts = self._constants()
        n_banks = consts["n_banks"]
        flit_ns = consts["flit_ns"]

        # Arrival process: Poisson with the configured mean rate.
        mean_gap_ns = CACHELINE_BYTES / offered_gbps
        arrivals = np.cumsum(rng.exponential(mean_gap_ns, n_requests))

        # Fine-grained per-bank refresh: each bank blocks for a fraction of
        # tRFC every tREFI, staggered (modern controllers refresh per bank
        # rather than stalling a whole rank).
        refresh_phase = rng.uniform(0.0, consts["trefi_ns"], n_banks)

        banks = rng.integers(0, n_banks, n_requests)
        # Row behaviour: reuse the bank's open row with the calibrated hit
        # rate, otherwise touch another row (miss or conflict depending on
        # the bank's state).
        row_reuse = rng.random(n_requests) < consts["row_hit_rate"]
        rows = rng.integers(0, 1 << 14, n_requests)
        retry_draw = rng.random(n_requests) < consts["retry_probability"] * 50
        # (per-request retry probability aggregated over the flit exchanges)
        if read_fraction != 1.0:
            writes = rng.random(n_requests) >= read_fraction
        else:
            writes = np.zeros(n_requests, dtype=bool)

        # Serial-resource shift tables (exclusive cumulative service).
        # Inbound link and MC dispatch serve every request identically;
        # the outbound link serves a write's completion for free on a
        # full-duplex link (no data flit) and a full flit on CXL-C's
        # shared bus.
        index = np.arange(n_requests)
        svc_out = np.full(n_requests, flit_ns)
        if consts["full_duplex"]:
            svc_out[writes] = 0.0
        shift_out = np.zeros(n_requests)
        np.cumsum(svc_out[:-1], out=shift_out[1:])

        # MC dispatch pipeline: deep enough to sustain the DRAM backend
        # (the controller's *latency* is pipelined, not a throughput cap).
        dispatch_ns = consts["dispatch_ns"]

        return SimInputs(
            n=n_requests,
            n_banks=n_banks,
            flit_ns=flit_ns,
            stack_ns=consts["stack_ns"],
            dispatch_ns=dispatch_ns,
            fixed_mc_ns=consts["fixed_mc_ns"],
            trefi_ns=consts["trefi_ns"],
            refresh_block_ns=consts["refresh_block_ns"],
            row_hit_ns=consts["row_hit_ns"],
            row_miss_ns=consts["row_miss_ns"],
            row_conflict_ns=consts["row_conflict_ns"],
            retry_penalty_ns=consts["retry_penalty_ns"],
            host_overhead_ns=HOST_OVERHEAD_NS,
            arrivals=arrivals,
            banks=banks,
            row_reuse=row_reuse,
            rows=rows,
            retry_draw=retry_draw,
            writes=writes,
            refresh_phase=refresh_phase,
            shift_in=flit_ns * index,
            shift_mc=dispatch_ns * index,
            svc_out=svc_out,
            shift_out=shift_out,
        )

    def simulate(
        self,
        n_requests: int,
        offered_gbps: float,
        read_fraction: float = 1.0,
        trace: Optional[TraceBuffer] = None,
        engine: str = "auto",
    ) -> EventSimResult:
        """Simulate ``n_requests`` Poisson arrivals at ``offered_gbps``.

        ``trace`` overrides the process-wide buffer from
        :func:`repro.obs.trace.tracing`; sampled requests emit one span
        per pipeline stage.  Tracing never alters the simulated timeline.

        ``engine`` picks the implementation: ``"scalar"`` (per-request
        reference loop), ``"vector"`` (NumPy kernels), ``"batch"`` (the
        fused cross-cell kernels, here on a batch of one -- useful for
        spot-checking identity), or ``"auto"`` (vector unless tracing is
        active -- span emission is per-request).  All engines are
        bit-identical.
        """
        self._validate(n_requests, offered_gbps, read_fraction, engine)
        buf = trace if trace is not None else tracing()
        if engine in ("vector", "batch") and buf is not None:
            raise ConfigurationError(
                f"the {engine} engine cannot emit per-request trace spans; "
                "use engine='scalar' (or 'auto') when tracing"
            )
        if engine == "batch":
            resolved = "batch"
        elif engine == "scalar" or buf is not None:
            resolved = "scalar"
        else:
            resolved = "vector"

        inp, applied = self._prepare_with_faults(
            n_requests, offered_gbps, read_fraction
        )
        if resolved == "batch":
            timeline = batch_timeline([inp])[0]
            latencies = timeline.latencies_ns
            conflicts = timeline.bank_conflicts
            refreshes = timeline.refresh_collisions
            traced = 0
        elif resolved == "vector":
            timeline = vector_timeline(inp)
            latencies = timeline.latencies_ns
            conflicts = timeline.bank_conflicts
            refreshes = timeline.refresh_collisions
            traced = 0
        else:
            latencies, conflicts, refreshes, traced = self._scalar_timeline(
                inp, buf
            )
        return self._publish(
            inp, applied, latencies, conflicts, refreshes, traced,
            offered_gbps, read_fraction, resolved,
        )

    @staticmethod
    def _validate(
        n_requests: int, offered_gbps: float, read_fraction: float,
        engine: str,
    ) -> None:
        if n_requests < 1:
            raise ConfigurationError("need at least one request")
        if offered_gbps <= 0:
            raise ConfigurationError("offered load must be positive")
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigurationError(
                f"read fraction must be in [0, 1]: {read_fraction}"
            )
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )

    def _prepare_with_faults(
        self, n_requests: int, offered_gbps: float, read_fraction: float
    ):
        """Prepared inputs plus the applied fault plan, if one is active.

        RAS fault injection: a plan transforms the prepared inputs (from
        its own RNG stream) and supplies post-engine latency adjustments.
        With no plan -- or an empty one -- nothing here runs, so the
        fault-free path stays byte-identical to a build without the
        subsystem.  Both the preparation RNG and the fault RNG are keyed
        per operating point, which is what lets batched execution compose:
        each cell's arrays are drawn here, solo, before any batching
        decision is made.
        """
        inp = self._prepare(n_requests, offered_gbps, read_fraction)
        plan = active_fault_plan()
        applied = None
        if plan is not None and plan.enabled:
            inp, applied = apply_fault_plan(
                inp, self.device, plan, offered_gbps
            )
        return inp, applied

    def _publish(
        self, inp, applied, latencies, conflicts, refreshes, traced,
        offered_gbps, read_fraction, resolved,
    ) -> EventSimResult:
        """Post-engine adjustments, metrics emission, result assembly.

        Shared verbatim by the solo engines and :func:`simulate_batch`, so
        a batched cell's counters and metrics match its solo twin's.
        """
        retries = int(inp.retry_draw.sum())
        if applied is not None:
            # Shared elementwise post-engine transform (ECC correction
            # stalls, dropout completions): identical for all engines.
            latencies = applied.adjust_latencies(latencies)

        registry = metrics()
        if registry.enabled:
            labels = {"device": self.device.name}
            registry.counter("sim.requests", **labels).inc(inp.n)
            registry.counter("sim.bank_conflicts", **labels).inc(conflicts)
            registry.counter("sim.refresh_collisions", **labels).inc(refreshes)
            registry.counter("sim.link_retries", **labels).inc(retries)
            registry.counter("sim.traced_requests", **labels).inc(traced)
            registry.histogram(
                "sim.request_latency_ns",
                buckets=DEFAULT_LATENCY_BUCKETS_NS,
                **labels,
            ).observe_many(latencies)
            if applied is not None:
                registry.counter(
                    "sim.faults.injected_retries", **labels
                ).inc(applied.injected_retries)
                registry.counter(
                    "sim.faults.poisoned_reads", **labels
                ).inc(applied.poisoned_reads)
                registry.counter(
                    "sim.faults.ecc_corrected", **labels
                ).inc(applied.ecc_corrected)
                registry.counter(
                    "sim.faults.throttled_requests", **labels
                ).inc(applied.throttled_requests)

        return EventSimResult(
            device=self.device.name,
            offered_gbps=offered_gbps,
            latencies_ns=latencies,
            bank_conflicts=conflicts,
            refresh_collisions=refreshes,
            link_retries=retries,
            read_fraction=read_fraction,
            engine=resolved,
            fault_plan=applied.plan_key if applied is not None else None,
            injected_retries=(
                applied.injected_retries if applied is not None else 0
            ),
            poisoned_reads=(
                applied.poisoned_reads if applied is not None else 0
            ),
            ecc_corrected=(
                applied.ecc_corrected if applied is not None else 0
            ),
            throttled_requests=(
                applied.throttled_requests if applied is not None else 0
            ),
        )

    def _scalar_timeline(
        self, inp: SimInputs, buf: Optional[TraceBuffer]
    ):
        """The per-request reference loop (and tracing path).

        Written in the same form the vector kernels evaluate: serial
        resources via ``m = max(m, entry - shift); start = m + shift``
        against the shared shift tables, and the bank stage in the
        refresh-phase-shifted time domain.  Every floating-point operation
        here has an elementwise twin in :mod:`repro.hw.cxl.kernels`, which
        is what makes the engines bit-identical rather than merely close.
        """
        device = self.device
        link = device.profile.link
        n = inp.n
        arrivals = inp.arrivals
        shift_in, shift_mc, shift_out = inp.shift_in, inp.shift_mc, inp.shift_out
        svc_out = inp.svc_out
        banks, rows, row_reuse = inp.banks, inp.rows, inp.row_reuse
        retry_draw = inp.retry_draw
        service_scale = inp.service_scale
        refresh_phase = inp.refresh_phase
        flit_ns, stack_ns = inp.flit_ns, inp.stack_ns
        fixed_mc_ns = inp.fixed_mc_ns
        trefi, block = inp.trefi_ns, inp.refresh_block_ns
        row_hit_ns = inp.row_hit_ns
        row_miss_ns = inp.row_miss_ns
        row_conflict_ns = inp.row_conflict_ns
        retry_penalty_ns = inp.retry_penalty_ns
        host_ns = inp.host_overhead_ns

        # Serial-resource scan states (max-plus running maxima).
        m_in = m_mc = m_out = float("-inf")
        # Per-bank state: open row, and busy time in the phase-shifted
        # domain (idle banks sit at shifted zero = their phase).
        bank_free = refresh_phase.copy()
        bank_open_row = np.full(inp.n_banks, -1, dtype=np.int64)

        latencies = np.empty(n)
        conflicts = 0
        refreshes = 0
        traced = 0

        for i in range(n):
            arrival = arrivals[i]
            # Inbound link: wait for the wire, serialize one flit.
            x = arrival - shift_in[i]
            if x > m_in:
                m_in = x
            start_in = m_in + shift_in[i]
            inbound_free = start_in + flit_ns
            t = inbound_free + stack_ns

            # MC: dispatch pipeline + fixed processing.
            x = t - shift_mc[i]
            if x > m_mc:
                m_mc = x
            start_mc = m_mc + shift_mc[i]
            t = start_mc + fixed_mc_ns

            # Bank service with row-buffer state.
            bank = int(banks[i])
            if row_reuse[i] and bank_open_row[bank] >= 0:
                row = int(bank_open_row[bank])
            else:
                row = int(rows[i])
            if bank_open_row[bank] == row:
                service = row_hit_ns
            elif bank_open_row[bank] < 0:
                service = row_miss_ns
            else:
                service = row_conflict_ns
                conflicts += 1
            if service_scale is not None:
                # Same single multiply as the vector kernel's row_states.
                service = service * service_scale[i]
            bank_open_row[bank] = row
            # Busy/refresh recurrence in the phase-shifted domain.
            phase_b = refresh_phase[bank]
            busy = t + phase_b
            free = bank_free[bank]
            if free > busy:
                busy = free
            phase = busy % trefi
            if phase < block:
                refreshes += 1
            ready = busy + (block - phase)
            if busy > ready:
                ready = busy
            done_shifted = ready + service
            bank_free[bank] = done_shifted
            done = done_shifted - phase_b

            # Outbound link: response flit (free for full-duplex writes).
            x = done - shift_out[i]
            if x > m_out:
                m_out = x
            start_out = m_out + shift_out[i]
            outbound_free = start_out + svc_out[i]
            t = outbound_free + stack_ns
            if retry_draw[i]:
                t = t + retry_penalty_ns

            latencies[i] = (t - arrival) + host_ns

            if buf is not None and buf.sampled(i):
                traced += 1
                mc_entry = inbound_free + stack_ns
                bank_entry = start_mc + fixed_mc_ns
                bank_ready = busy - phase_b
                ready_real = ready - phase_b
                spans = (
                    ("link.in.wait", "link", arrival, start_in - arrival),
                    ("link.in.serialize", "link", start_in, flit_ns),
                    ("link.in.stack", "link", inbound_free, stack_ns),
                    ("mc.queue.wait", "mc", mc_entry, start_mc - mc_entry),
                    ("mc.schedule", "mc", start_mc, fixed_mc_ns),
                    ("bank.wait", "dram", bank_entry,
                     bank_ready - bank_entry),
                    ("bank.refresh", "dram", bank_ready,
                     ready_real - bank_ready),
                    ("bank.service", "dram", ready_real, done - ready_real),
                    ("link.out.wait", "link", done, start_out - done),
                    ("link.out.serialize", "link", start_out, svc_out[i]),
                    ("link.out.stack", "link", outbound_free, stack_ns),
                    ("link.retry", "link", outbound_free + stack_ns,
                     retry_penalty_ns if retry_draw[i] else 0.0),
                    ("host.overhead", "host", t, host_ns),
                )
                for name, cat, start_ns, dur_ns in spans:
                    if dur_ns > 0.0 or name == "host.overhead":
                        buf.add(name, cat, start_ns, dur_ns, track=i)
                # Annotate the closing span with the request's identity.
                last = buf.spans[-1]
                last.args.update(
                    device=device.name,
                    bank=bank,
                    write=bool(inp.writes[i]),
                    latency_ns=float(latencies[i]),
                )

        return latencies, conflicts, refreshes, traced

    def compare_with_analytic(
        self,
        offered_gbps: float,
        n_requests: int = 40_000,
        engine: str = "auto",
    ) -> dict:
        """Event-driven vs analytic mean/percentiles at one load."""
        sim = self.simulate(n_requests, offered_gbps, engine=engine)
        return compare_result_with_analytic(self.device, sim)


def compare_result_with_analytic(device: CxlDevice, sim: EventSimResult) -> dict:
    """Event-driven result vs the analytic closed forms at its load."""
    dist = device.distribution(sim.offered_gbps)
    return {
        "load_gbps": sim.offered_gbps,
        "sim_mean_ns": sim.mean_ns,
        "analytic_mean_ns": dist.mean_ns,
        "sim_p99_ns": sim.percentile(99),
        "analytic_p99_ns": dist.percentile(99),
        "sim_tail_gap_ns": sim.tail_gap_ns(),
        "analytic_tail_gap_ns": dist.tail_gap_ns(),
    }


def simulate_batch(
    points: Sequence[Tuple["EventDrivenDevice", int, float, float]],
) -> List[EventSimResult]:
    """Simulate many operating points through the fused batch kernels.

    ``points`` are ``(sim, n_requests, offered_gbps, read_fraction)``
    tuples -- heterogeneous devices, loads, mixes, and request counts are
    all fine; the auto-chunker splits the batch into cache-sized fused
    kernel calls.  Each point's randomness (and its fault-plan stream, if
    a plan is active) is drawn exactly as a solo :meth:`simulate` call
    would draw it, so every returned result is byte-identical to its solo
    twin -- only the ``engine`` field reads ``"batch"``.

    Tracing is per-request by nature and cannot ride the fused kernels;
    an active trace buffer is a configuration error here.
    """
    if tracing() is not None:
        raise ConfigurationError(
            "the batch engine cannot emit per-request trace spans; "
            "run cells solo with engine='scalar' when tracing"
        )
    prepared = []
    for sim, n_requests, offered_gbps, read_fraction in points:
        sim._validate(n_requests, offered_gbps, read_fraction, "batch")
        inp, applied = sim._prepare_with_faults(
            n_requests, offered_gbps, read_fraction
        )
        prepared.append((sim, inp, applied, offered_gbps, read_fraction))

    timelines: List = []
    inputs = [inp for _, inp, _, _, _ in prepared]
    for lo, hi in batch_chunks(
        [inp.n for inp in inputs], [inp.n_banks for inp in inputs]
    ):
        timelines.extend(batch_timeline(inputs[lo:hi]))

    return [
        sim._publish(
            inp, applied,
            timeline.latencies_ns,
            timeline.bank_conflicts,
            timeline.refresh_collisions,
            0,
            offered_gbps, read_fraction, "batch",
        )
        for (sim, inp, applied, offered_gbps, read_fraction), timeline
        in zip(prepared, timelines)
    ]
