"""CXL memory expansion devices.

* :mod:`repro.hw.cxl.link` -- the Flex Bus / PCIe physical and link layers
  (flit serialization, per-direction bandwidth, retry jitter).
* :mod:`repro.hw.cxl.controller` -- the third-party CXL memory controller
  (request queue, scheduler, thermal management).
* :mod:`repro.hw.cxl.device` -- assembled type-3 expanders, including the
  four calibrated profiles CXL-A..CXL-D from Table 1 of the paper.
"""

from repro.hw.cxl.link import CxlLink, FlitFormat
from repro.hw.cxl.controller import CxlMemoryController, ThermalModel
from repro.hw.cxl.device import (
    CXL_DEVICES,
    CxlDevice,
    DeviceProfile,
    cxl_a,
    cxl_b,
    cxl_c,
    cxl_d,
    device_by_name,
)
from repro.hw.cxl.cpmu import Cpmu, CpmuTrace
from repro.hw.cxl.eventdevice import EventDrivenDevice, EventSimResult
from repro.hw.cxl.fabric import SwitchedFabric, cmm_b_class_box

__all__ = [
    "CxlLink",
    "FlitFormat",
    "CxlMemoryController",
    "ThermalModel",
    "CxlDevice",
    "DeviceProfile",
    "CXL_DEVICES",
    "cxl_a",
    "cxl_b",
    "cxl_c",
    "cxl_d",
    "device_by_name",
    "Cpmu",
    "CpmuTrace",
    "EventDrivenDevice",
    "EventSimResult",
    "SwitchedFabric",
    "cmm_b_class_box",
]
