"""Assembled CXL type-3 memory expanders and the four testbed profiles.

A :class:`CxlDevice` composes a :class:`~repro.hw.cxl.link.CxlLink`, a
:class:`~repro.hw.cxl.controller.CxlMemoryController`, and a
:class:`~repro.hw.dram.DramBackend` into a :class:`~repro.hw.target.MemoryTarget`.
The four :class:`DeviceProfile` instances below are calibrated to Table 1 of
the paper plus the tail behaviour of §3.2:

==========  =====  ========  ========  =========  ==========================
device      type   DDR       idle lat  read BW    notes
==========  =====  ========  ========  =========  ==========================
``CXL-A``   ASIC   2xDDR4    214 ns    24 GB/s    tails grow from ~30% util
``CXL-B``   ASIC   1xDDR5    271 ns    22 GB/s    heavy tails even at idle
``CXL-C``   FPGA   2xDDR4    394 ns    18 GB/s    unidirectional link use,
                                                  3 us excursions under load
``CXL-D``   ASIC   2xDDR5    239 ns    52 GB/s    x16, most stable tails
==========  =====  ========  ========  =========  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import CalibrationError, ConfigurationError
from repro.hw.bandwidth import FULL_DUPLEX, SHARED_BUS, BandwidthModel
from repro.obs.metrics import metrics
from repro.hw.cxl.controller import CxlMemoryController
from repro.hw.cxl.link import CxlLink
from repro.hw.dram import DDR4, DDR5, DramBackend
from repro.hw.queueing import QueueModel
from repro.hw.tail import TailModel
from repro.hw.target import MemoryTarget

HOST_OVERHEAD_NS = 70.0
"""Round-trip core -> LLC-miss path -> PCIe root complex latency on the host.

Shared by all devices on the same host; part of every CXL access but not of
local DRAM accesses.
"""


@dataclass(frozen=True)
class DeviceProfile:
    """Everything needed to instantiate one vendor's expander.

    ``remote_latency_ns`` / ``remote_read_gbps`` are the measured Table 1
    "Remote" columns -- what the device looks like from the other socket --
    consumed by :func:`repro.hw.topology.remote_view`.
    """

    name: str
    vendor_type: str  # "asic" | "fpga"
    spec: str  # e.g. "CXL 1.1 x8"
    capacity_gb: float
    dram: DramBackend
    link: CxlLink
    controller: CxlMemoryController
    tail: TailModel
    idle_latency_ns: float
    read_gbps: float
    write_gbps: float
    backend_gbps: float
    duplex_mode: str = FULL_DUPLEX
    turnaround_penalty: float = 0.12
    remote_latency_ns: Optional[float] = None
    remote_read_gbps: Optional[float] = None
    hosts: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.vendor_type not in ("asic", "fpga"):
            raise ConfigurationError(f"unknown vendor type: {self.vendor_type}")
        if self.idle_latency_ns <= 0:
            raise ConfigurationError("idle latency must be positive")
        if min(self.read_gbps, self.write_gbps, self.backend_gbps) <= 0:
            raise ConfigurationError("bandwidth figures must be positive")


class CxlDevice(MemoryTarget):
    """A CXL 1.1 type-3 memory expander (CXL.io + CXL.mem)."""

    def __init__(self, profile: DeviceProfile, temperature_c: float = None):
        super().__init__(profile.name, profile.capacity_gb)
        self.profile = profile
        self.temperature_c = (
            temperature_c
            if temperature_c is not None
            else profile.controller.thermal.ambient_c
        )
        # The controller's internal processing latency is whatever remains
        # of the calibrated idle latency after host, link, and DRAM shares.
        fixed = (
            HOST_OVERHEAD_NS
            + profile.link.round_trip_overhead_ns()
            + profile.dram.mean_access_ns()
            + profile.dram.refresh_extra_mean_ns()
        )
        self._mc_internal_ns = profile.idle_latency_ns - fixed
        if self._mc_internal_ns < 0:
            raise CalibrationError(
                f"{profile.name}: idle latency {profile.idle_latency_ns}ns is "
                f"below the host+link+DRAM floor {fixed:.1f}ns"
            )
        metrics().counter("hw.device.builds", device=profile.name).inc()

    # -- latency breakdown -------------------------------------------------

    def latency_breakdown_ns(self) -> dict:
        """Decompose the idle latency into its physical components.

        The white-box breakdown §3.2's "Reasoning" paragraph wishes the CXL
        Performance Monitoring Unit could provide.
        """
        p = self.profile
        return {
            "host": HOST_OVERHEAD_NS,
            "link": p.link.round_trip_overhead_ns(),
            "controller": self._mc_internal_ns,
            "dram": p.dram.mean_access_ns(),
            "refresh": p.dram.refresh_extra_mean_ns(),
        }

    @property
    def is_fpga(self) -> bool:
        """Whether this is an FPGA-based device (CXL-C)."""
        return self.profile.vendor_type == "fpga"

    # -- MemoryTarget ------------------------------------------------------

    def idle_latency_ns(self) -> float:
        """Calibrated idle latency, thermally derated when throttling."""
        base = self.profile.idle_latency_ns
        derate = self.profile.controller.thermal.service_derating(self.temperature_c)
        if derate > 1.0:
            # Throttling stretches the DRAM-facing service portion.
            dram_share = (
                self.profile.dram.mean_access_ns() + self._mc_internal_ns
            )
            base += dram_share * (derate - 1.0)
        return base

    def bandwidth_model(self) -> BandwidthModel:
        """Per-direction link/backend capacities, thermally derated."""
        p = self.profile
        derate = p.controller.thermal.service_derating(self.temperature_c)
        return BandwidthModel(
            read_gbps=p.read_gbps / derate,
            write_gbps=p.write_gbps / derate,
            backend_gbps=p.backend_gbps / derate,
            mode=p.duplex_mode,
            turnaround_penalty=p.turnaround_penalty,
        )

    def queue_model(self) -> QueueModel:
        """The vendor MC's request queue over banked DRAM service."""
        # Per-request service at the device: DRAM access divided across
        # channels (banked service pipelines requests).
        service = self.profile.dram.mean_access_ns() / self.profile.dram.channels
        return self.profile.controller.queue_model(
            service_ns=max(service, 8.0), temperature_c=self.temperature_c
        )

    def tail_model(self) -> TailModel:
        """The device's calibrated vendor tail behaviour."""
        return self.profile.tail

    def at_temperature(self, temperature_c: float) -> "CxlDevice":
        """A copy of this device operating at ``temperature_c`` (stress test)."""
        return CxlDevice(self.profile, temperature_c=temperature_c)


def _x8_link(full_duplex: bool = True) -> CxlLink:
    return CxlLink(pcie_gen=5, lanes=8, full_duplex=full_duplex)


def _x16_link() -> CxlLink:
    return CxlLink(pcie_gen=5, lanes=16)


CXL_A_PROFILE = DeviceProfile(
    name="CXL-A",
    vendor_type="asic",
    spec="CXL 1.1 x8",
    capacity_gb=128,
    dram=DramBackend(timings=DDR4, channels=2),
    link=_x8_link(),
    controller=CxlMemoryController(
        processing_ns=60.0,
        queue_onset_util=0.55,
        queue_variability=1.5,
        queue_depth=48,
        scheduler="fr-fcfs",
    ),
    tail=TailModel(
        jitter_ns=15.0,
        jitter_shape=2.0,
        tail_prob_idle=0.004,
        tail_scale_idle_ns=60.0,
        onset_util=0.30,
        prob_growth=0.10,
        scale_growth=4.0,
        tail_cap_ns=1500.0,
        deep_prob=3e-4,
        deep_scale_ns=400.0,
    ),
    idle_latency_ns=214.0,
    read_gbps=24.0,
    write_gbps=12.0,
    backend_gbps=32.0,  # controller crossbar cap (below the 2xDDR4 40)
    remote_latency_ns=375.0,
    remote_read_gbps=14.0,
    hosts=("SPR2S", "EMR2S"),
)
"""Lowest-latency testbed device: ASIC, 2xDDR4, 214 ns / 24 GB/s."""

CXL_B_PROFILE = DeviceProfile(
    name="CXL-B",
    vendor_type="asic",
    spec="CXL 1.1 x8",
    capacity_gb=128,
    dram=DramBackend(timings=DDR5, channels=1),
    link=_x8_link(),
    controller=CxlMemoryController(
        processing_ns=110.0,
        queue_onset_util=0.50,
        queue_variability=1.8,
        queue_depth=48,
        scheduler="fr-fcfs",
    ),
    tail=TailModel(
        jitter_ns=18.0,
        jitter_shape=2.0,
        tail_prob_idle=0.008,
        tail_scale_idle_ns=75.0,
        onset_util=0.40,
        prob_growth=0.12,
        scale_growth=5.0,
        tail_cap_ns=2000.0,
    ),
    idle_latency_ns=271.0,
    read_gbps=22.0,
    write_gbps=4.5,
    backend_gbps=30.0,
    remote_latency_ns=473.0,
    remote_read_gbps=13.0,
    hosts=("SPR2S", "EMR2S"),
)
"""ASIC with a single DDR5 channel: 271 ns / 22 GB/s, heavy idle tails."""

CXL_C_PROFILE = DeviceProfile(
    name="CXL-C",
    vendor_type="fpga",
    spec="CXL 1.1 x8",
    capacity_gb=16,
    dram=DramBackend(timings=DDR4, channels=2),
    link=_x8_link(full_duplex=False),
    controller=CxlMemoryController(
        processing_ns=260.0,
        queue_onset_util=0.45,
        queue_variability=2.2,
        queue_depth=128,
        scheduler="fcfs",
    ),
    tail=TailModel(
        jitter_ns=25.0,
        jitter_shape=1.8,
        tail_prob_idle=0.008,
        tail_scale_idle_ns=80.0,
        onset_util=0.35,
        prob_growth=0.25,
        scale_growth=10.0,
        tail_cap_ns=3000.0,
    ),
    idle_latency_ns=394.0,
    read_gbps=19.0,
    write_gbps=11.0,
    backend_gbps=40.0,
    duplex_mode=SHARED_BUS,
    turnaround_penalty=0.30,
    remote_latency_ns=621.0,
    remote_read_gbps=14.0,
    hosts=("SPR2S", "EMR2S"),
)
"""FPGA prototype: slow (394 ns), unable to drive both link directions."""

CXL_D_PROFILE = DeviceProfile(
    name="CXL-D",
    vendor_type="asic",
    spec="CXL 1.1 x16",
    capacity_gb=756,
    dram=DramBackend(timings=DDR5, channels=2),
    link=_x16_link(),
    controller=CxlMemoryController(
        processing_ns=75.0,
        queue_onset_util=0.80,
        queue_variability=1.0,
        queue_depth=64,
        scheduler="fr-fcfs",
    ),
    tail=TailModel(
        jitter_ns=14.0,
        jitter_shape=2.2,
        tail_prob_idle=0.004,
        tail_scale_idle_ns=55.0,
        onset_util=0.70,
        prob_growth=0.05,
        scale_growth=2.5,
        tail_cap_ns=1200.0,
        deep_prob=1.5e-4,
        deep_scale_ns=400.0,
    ),
    idle_latency_ns=239.0,
    read_gbps=52.0,
    write_gbps=23.0,
    backend_gbps=59.0,
    remote_latency_ns=333.0,
    remote_read_gbps=14.0,
    hosts=("EMR2S'",),
)
"""Highest-bandwidth device: x16 lanes, 2xDDR5, 52 GB/s, NUMA-like tails."""


def cxl_a() -> CxlDevice:
    """Instantiate the CXL-A expander."""
    return CxlDevice(CXL_A_PROFILE)


def cxl_b() -> CxlDevice:
    """Instantiate the CXL-B expander."""
    return CxlDevice(CXL_B_PROFILE)


def cxl_c() -> CxlDevice:
    """Instantiate the CXL-C expander."""
    return CxlDevice(CXL_C_PROFILE)


def cxl_d() -> CxlDevice:
    """Instantiate the CXL-D expander."""
    return CxlDevice(CXL_D_PROFILE)


CXL_DEVICES = {
    "CXL-A": cxl_a,
    "CXL-B": cxl_b,
    "CXL-C": cxl_c,
    "CXL-D": cxl_d,
}
"""Factory map of the testbed's four expanders."""


def device_by_name(name: str) -> CxlDevice:
    """Instantiate a testbed device by its paper name ("CXL-A".."CXL-D")."""
    try:
        return CXL_DEVICES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown CXL device {name!r}; choose from {sorted(CXL_DEVICES)}"
        ) from None


def with_tail_model(device: CxlDevice, tail: TailModel) -> CxlDevice:
    """A copy of ``device`` with a substituted tail model (ablation hook)."""
    return CxlDevice(replace(device.profile, tail=tail))
