"""Cross-socket (NUMA) memory access over the UPI interconnect.

Remote-socket DRAM is the paper's closest performance peer to CXL: similar
latency regime (190-410 ns across the testbed), full-duplex link, but with a
mature coherence fabric that keeps tails small (p99.9-p50 of only ~61 ns).
A :class:`NumaMemory` target wraps a socket's :class:`~repro.hw.imc.LocalDram`
with one or more :class:`NumaHop` traversals; multi-hop chains model the
8-socket SKX8S system's 410 ns configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.bandwidth import FULL_DUPLEX, BandwidthModel
from repro.hw.queueing import QueueModel
from repro.hw.tail import NUMA_TAIL, TailModel
from repro.hw.target import MemoryTarget


@dataclass(frozen=True)
class NumaHop:
    """One UPI hop between sockets.

    Parameters
    ----------
    latency_ns:
        One-way added round-trip latency of the hop (link transit + remote
        caching-agent processing).
    read_gbps / write_gbps:
        Per-direction UPI bandwidth available to memory traffic.
    """

    latency_ns: float = 77.0
    read_gbps: float = 110.0
    write_gbps: float = 90.0

    def __post_init__(self) -> None:
        if self.latency_ns < 0:
            raise ConfigurationError(f"hop latency must be >= 0: {self.latency_ns}")
        if min(self.read_gbps, self.write_gbps) <= 0:
            raise ConfigurationError("hop bandwidth must be positive")


class NumaMemory(MemoryTarget):
    """DRAM on a remote socket reached through ``hops`` UPI traversals."""

    def __init__(
        self,
        local: MemoryTarget,
        hop: NumaHop,
        hops: int = 1,
        name: str = None,
        tail: TailModel = NUMA_TAIL,
        idle_latency_ns: float = None,
        read_bandwidth_gbps: float = None,
    ):
        """Wrap ``local`` behind ``hops`` x ``hop``.

        ``idle_latency_ns`` / ``read_bandwidth_gbps`` override the composed
        values when a platform's measured Table 1 numbers are available
        (measurements fold in effects, such as snoop latency, that the hop
        model does not represent explicitly).
        """
        if hops < 1:
            raise ConfigurationError(f"hops must be >= 1: {hops}")
        super().__init__(
            name or f"{local.name}+{hops}hop", local.capacity_gb
        )
        self.local = local
        self.hop = hop
        self.hops = hops
        self._tail = tail
        self._idle_override = idle_latency_ns
        self._read_bw_override = read_bandwidth_gbps

    def idle_latency_ns(self) -> float:
        """Measured remote latency, or local + hop latency when uncalibrated."""
        if self._idle_override is not None:
            return self._idle_override
        return self.local.idle_latency_ns() + self.hops * self.hop.latency_ns

    def bandwidth_model(self) -> BandwidthModel:
        """Full-duplex UPI capacities, divided across chained hops."""
        # Each hop is full-duplex; chaining hops divides usable bandwidth
        # (shared links on the longer path), and the local DRAM behind the
        # last hop is the backend limit.
        read = self.hop.read_gbps / self.hops
        write = self.hop.write_gbps / self.hops
        if self._read_bw_override is not None:
            scale = self._read_bw_override / read
            read *= scale
            write *= scale
        return BandwidthModel(
            read_gbps=read,
            write_gbps=write,
            backend_gbps=self.local.bandwidth_model().backend_gbps,
            mode=FULL_DUPLEX,
        )

    def queue_model(self) -> QueueModel:
        """The far iMC's queue plus the hop's own (well-behaved) stage."""
        inner = self.local.queue_model()
        # The UPI link adds its own (small, well-behaved) queueing stage;
        # fold it into a single model with slightly higher variability.
        return QueueModel(
            service_ns=inner.service_ns + 4.0 * self.hops,
            variability=inner.variability * 1.15,
            onset_util=min(inner.onset_util, 0.92),
            max_delay_ns=inner.max_delay_ns,
        )

    def tail_model(self) -> TailModel:
        """Cross-socket tails: slightly larger than local, still stable."""
        return self._tail
