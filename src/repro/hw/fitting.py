"""Fitting device models to measured data: adopt Melody on your hardware.

Everything in :mod:`repro.hw` is calibrated to the paper's testbed.  A user
with *their own* device measures it with the real Intel MLC and MIO, then
fits our models to those measurements:

* :func:`fit_tail_model` -- recover :class:`~repro.hw.tail.TailModel`
  parameters from a per-request latency sample (MIO output) via quantile
  matching: the median pins the base, the bulk spread pins the jitter, and
  the exceedance tail pins the excursion probability and scale.
* :func:`fit_queue_model` -- recover
  :class:`~repro.hw.queueing.QueueModel` parameters from a loaded-latency
  curve (MLC output): the flat region pins the onset, the knee's growth
  pins the service x variability product, and the wall pins the cap.
* :func:`fit_device` -- bundle both into a ready-to-use
  :class:`~repro.hw.topology.ComposedTarget` standing in for the measured
  device, so campaigns, Spa, and the tools run against it unchanged.

Round-trip accuracy is tested by fitting the models to samples drawn from
known parameters (see ``tests/hw/test_fitting.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError
from repro.hw.bandwidth import BandwidthModel
from repro.hw.queueing import QueueModel
from repro.hw.tail import TailModel
from repro.hw.topology import ComposedTarget
from repro.hw.target import MemoryTarget

MIN_TAIL_SAMPLES = 5_000
"""Below this, the p99.9 exceedance estimate is too noisy to fit."""


@dataclass(frozen=True)
class TailFit:
    """A fitted tail model plus its goodness-of-fit summary."""

    base_ns: float
    tail: TailModel
    p50_error_ns: float
    p999_error_ns: float


def fit_tail_model(
    latencies_ns: Sequence[float],
    utilization: float = 0.0,
) -> TailFit:
    """Fit a :class:`TailModel` to a per-request latency sample.

    The sample should come from a (near-)idle measurement; ``utilization``
    records the operating point so the onset can be placed above it.

    Method: the 5th percentile estimates the deterministic base; jitter
    mean/shape come from the bulk (5th-90th percentile) via gamma moment
    matching; excursions are everything beyond ``base + 4 x jitter``, with
    probability = exceedance rate and scale = mean exceedance.
    """
    arr = np.asarray(latencies_ns, dtype=float)
    if arr.size < MIN_TAIL_SAMPLES:
        raise CalibrationError(
            f"need >= {MIN_TAIL_SAMPLES} samples to fit tails, got {arr.size}"
        )
    base = float(np.percentile(arr, 5))
    extras = np.maximum(0.0, arr - base)

    # Jitter from the robust centre: for a gamma with shape ~2 the median
    # sits at ~0.84 x mean, so the median-based estimate is immune to the
    # excursion mass in the upper tail.
    jitter_mean = max(float(np.median(extras)) / 0.839, 0.1)
    jitter_shape = 2.0

    # Excursions from the deep tail: beyond 5 x jitter the gamma is
    # negligible, the overshoot mean estimates the exponential scale
    # (memorylessness), and the exceedance rate back-extrapolates to the
    # full excursion probability: P(exc > t) = p0 * exp(-t / scale).
    threshold = 5.0 * jitter_mean
    overshoot = extras[extras > threshold] - threshold
    # The gamma jitter itself leaks past the threshold with a known rate
    # (shape 2, t = 5 x mean => (1 + 10) e^-10); subtract it so the
    # excursion probability is not inflated for stable devices.
    gamma_leak = float((1.0 + 10.0) * np.exp(-10.0))
    if len(overshoot) >= 10:
        tail_scale = float(overshoot.mean())
        exceedance = max(
            0.0, float(len(overshoot)) / arr.size - gamma_leak
        )
        if tail_scale > 1.5 * jitter_mean:
            # A genuine excursion regime: back-extrapolate to t = 0.
            tail_prob = min(
                0.2, exceedance * float(np.exp(threshold / tail_scale))
            )
        else:
            # Overshoots on the jitter scale are jitter, not excursions;
            # extrapolating would be ill-conditioned (e^(t/s) blows up).
            tail_prob = min(0.2, exceedance)
        tail_cap = float(extras.max()) * 1.5
    else:
        tail_scale = 0.0
        tail_prob = 0.0
        tail_cap = 1000.0

    tail = TailModel(
        jitter_ns=jitter_mean,
        jitter_shape=jitter_shape,
        tail_prob_idle=min(1.0, tail_prob),
        tail_scale_idle_ns=tail_scale,
        onset_util=float(np.clip(utilization + 0.1, 0.05, 0.95)),
        prob_growth=0.1,
        scale_growth=3.0,
        tail_cap_ns=max(tail_cap, 1.0),
    )
    fitted_mean = base + tail.mean_extra_ns(utilization)
    del fitted_mean  # diagnostic percentiles below are the fit report
    p50_fit = base + jitter_mean  # coarse; exact p50 needs sampling
    p999_fit = base + threshold + tail_scale * np.log(
        max(tail_prob / 1e-3, 1.0000001)
    )
    return TailFit(
        base_ns=base,
        tail=tail,
        p50_error_ns=abs(p50_fit - float(np.percentile(arr, 50))),
        p999_error_ns=abs(p999_fit - float(np.percentile(arr, 99.9))),
    )


def fit_queue_model(
    curve: Sequence[Tuple[float, float]],
) -> Tuple[QueueModel, float]:
    """Fit a :class:`QueueModel` to a loaded-latency curve.

    ``curve`` holds ``(bandwidth_gbps, latency_ns)`` points (MLC output).
    Returns ``(model, peak_gbps)``.

    Method: the peak is the largest measured bandwidth; the idle latency is
    the flat region's minimum; the onset is the first utilization where
    latency rises 5% above idle; the service x variability product is
    least-squares fitted on the rho/(1-rho) shape over the rising region;
    the cap is the highest observed queueing delay.
    """
    points = sorted((float(b), float(l)) for b, l in curve)
    if len(points) < 4:
        raise CalibrationError("need >= 4 curve points to fit queueing")
    bandwidths = np.array([p[0] for p in points])
    latencies = np.array([p[1] for p in points])
    peak = float(bandwidths.max()) / 0.999
    idle = float(latencies.min())

    utils = bandwidths / peak
    rising = latencies > idle * 1.05
    if not rising.any():
        # Perfectly flat curve: an iMC-like target.
        return (
            QueueModel(service_ns=10.0, onset_util=0.95,
                       max_delay_ns=max(idle, 1.0)),
            peak,
        )
    onset = float(np.clip(utils[rising].min() - 0.05, 0.0, 0.94))

    delays = latencies - idle
    mask = rising & (utils < 0.999)
    rho = np.clip((utils[mask] - onset) / (1.0 - onset), 1e-6, 1.0 - 1e-6)
    shape = rho / (1.0 - rho)
    denominator = float(np.sum(shape**2))
    if denominator > 0:
        coeff = float(np.sum(delays[mask] * shape)) / denominator
    else:
        # All rising points sit at the saturated wall: fall back to the
        # delay magnitude as the service scale.
        coeff = float(delays[rising].mean())
    coeff = max(coeff, 0.1)
    max_delay = float(delays.max()) if delays.max() > 0 else 100.0

    model = QueueModel(
        service_ns=coeff,  # variability folded into the product
        variability=1.0,
        onset_util=onset,
        max_delay_ns=max(max_delay, coeff),
    )
    return model, peak


def fit_device(
    name: str,
    idle_latencies_ns: Sequence[float],
    loaded_curve: Sequence[Tuple[float, float]],
    write_gbps: float = None,
    capacity_gb: float = 128.0,
) -> MemoryTarget:
    """Build a drop-in target from a device's measurements.

    ``idle_latencies_ns`` is a MIO-style per-request sample at idle;
    ``loaded_curve`` is an MLC-style (bandwidth, latency) sweep.
    """
    tail_fit = fit_tail_model(idle_latencies_ns)
    queue, peak = fit_queue_model(loaded_curve)
    bandwidth = BandwidthModel(
        read_gbps=peak,
        write_gbps=write_gbps if write_gbps is not None else peak * 0.4,
        backend_gbps=peak * 1.5,
    )

    class _Measured(MemoryTarget):
        """A target standing in for the measured device."""

        def idle_latency_ns(self):
            """Mean of the measured idle sample."""
            return float(np.mean(idle_latencies_ns))

        def bandwidth_model(self):
            """Capacities from the measured curve's peak."""
            return bandwidth

        def queue_model(self):
            """The fitted queueing behaviour."""
            return queue

        def tail_model(self):
            """The fitted tail behaviour."""
            return tail_fit.tail

    return _Measured(name, capacity_gb)


def roundtrip_report(target: MemoryTarget, fitted: MemoryTarget,
                     loads_gbps: Sequence[float]) -> dict:
    """Compare an original target with its fitted stand-in at given loads."""
    rows = {}
    for load in loads_gbps:
        original = target.distribution(load)
        recovered = fitted.distribution(load)
        rows[load] = {
            "mean_error_ns": abs(original.mean_ns - recovered.mean_ns),
            "gap_error_ns": abs(
                original.tail_gap_ns() - recovered.tail_gap_ns()
            ),
        }
    return rows
