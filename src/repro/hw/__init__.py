"""Hardware substrate: DRAM, iMC, NUMA interconnect, CXL devices, topologies.

This package models every piece of hardware the Melody paper measures:

* :mod:`repro.hw.dram` -- DDR4/DDR5 DRAM backends (banks, row buffer, refresh)
* :mod:`repro.hw.queueing` -- load/latency queueing math shared by all targets
* :mod:`repro.hw.tail` -- parametric tail-latency models
* :mod:`repro.hw.target` -- the :class:`~repro.hw.target.MemoryTarget` interface
* :mod:`repro.hw.imc` -- the CPU's integrated memory controller (local DRAM)
* :mod:`repro.hw.numa` -- UPI cross-socket hops
* :mod:`repro.hw.cxl` -- CXL link, third-party memory controller, and devices
* :mod:`repro.hw.topology` -- composed memory topologies (CXL+NUMA, switch,
  hardware interleaving)
* :mod:`repro.hw.platform` -- the five server platforms of Table 1
* :mod:`repro.hw.eventsim` -- a small event-driven queue simulator used to
  validate the analytic queueing model
"""

from repro.hw.target import LatencyDistribution, MemoryTarget
from repro.hw.dram import DDR4, DDR5, DramBackend, DramTimings
from repro.hw.imc import IntegratedMemoryController, LocalDram
from repro.hw.numa import NumaHop, NumaMemory
from repro.hw.topology import (
    CxlNumaTopology,
    CxlSwitchTopology,
    InterleavedTarget,
    remote_view,
)
from repro.hw.pooling import SharedDeviceView, pool_views
from repro.hw.fitting import fit_device, fit_queue_model, fit_tail_model
from repro.hw.platform import (
    EMR2S,
    EMR2S_PRIME,
    PLATFORMS,
    SKX2S,
    SKX8S,
    SPR2S,
    Platform,
    platform_by_name,
)

__all__ = [
    "LatencyDistribution",
    "MemoryTarget",
    "DDR4",
    "DDR5",
    "DramBackend",
    "DramTimings",
    "IntegratedMemoryController",
    "LocalDram",
    "NumaHop",
    "NumaMemory",
    "CxlNumaTopology",
    "CxlSwitchTopology",
    "InterleavedTarget",
    "remote_view",
    "Platform",
    "PLATFORMS",
    "SPR2S",
    "EMR2S",
    "EMR2S_PRIME",
    "SKX2S",
    "SKX8S",
    "platform_by_name",
    "SharedDeviceView",
    "pool_views",
    "fit_device",
    "fit_queue_model",
    "fit_tail_model",
]
