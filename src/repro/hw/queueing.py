"""Load-dependent queueing delay models shared by all memory targets.

Two complementary views are provided:

* **Open loop** -- callers offer a bandwidth (GB/s); the model returns the
  queueing delay requests experience at that load.  This follows the familiar
  M/G/1-style growth: negligible below ~50% utilization, then super-linear,
  diverging at saturation.  Real memory controllers bound the divergence with
  finite queues, so the delay is capped at a configurable maximum that
  represents a full request queue (this is the "vertical wall" at the right
  end of every loaded-latency curve in Figure 3a of the paper).

* **Closed loop** -- a fixed number of traffic threads each inject a
  configurable delay between consecutive accesses (exactly how Intel MLC
  generates its load points).  Throughput and latency are solved
  self-consistently with a fixed-point iteration, which naturally produces
  the saturating latency/bandwidth curves without ever "offering" an
  impossible load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QueueModel:
    """Analytic open-loop queueing delay for a memory service point.

    Parameters
    ----------
    service_ns:
        Mean service time of the bottleneck resource (per cacheline).
    variability:
        Squared-coefficient-of-variation-like factor; 1.0 gives M/M/1-style
        growth, lower values model more deterministic (pipelined) service.
    max_delay_ns:
        Queueing delay when the request queue is completely full.  Acts as
        the cap on the divergence at saturation.
    onset_util:
        Utilization below which queueing delay is (nearly) zero.  DRAM and
        mature iMCs hold latency flat until ~90% utilization; immature CXL
        controllers start queueing as early as 50%.
    """

    service_ns: float
    variability: float = 1.0
    max_delay_ns: float = 4000.0
    onset_util: float = 0.0

    def __post_init__(self) -> None:
        if self.service_ns < 0:
            raise ConfigurationError(f"service_ns must be >= 0: {self.service_ns}")
        if not 0.0 <= self.onset_util < 1.0:
            raise ConfigurationError(f"onset_util must be in [0, 1): {self.onset_util}")
        if self.max_delay_ns <= 0:
            raise ConfigurationError(f"max_delay_ns must be > 0: {self.max_delay_ns}")

    def delay_ns(self, utilization: float) -> float:
        """Mean queueing delay at ``utilization`` (0..1+; >=1 returns the cap).

        Below ``onset_util`` the delay is zero; beyond it the effective
        utilization is rescaled so the delay still diverges exactly at 1.0.
        """
        if utilization <= self.onset_util:
            return 0.0
        if utilization >= 1.0:
            return self.max_delay_ns
        # Rescale so rho spans (0, 1) over (onset_util, 1.0); clamp just
        # under 1 so float rounding at the boundary cannot divide by zero.
        rho = (utilization - self.onset_util) / (1.0 - self.onset_util)
        rho = min(rho, 1.0 - 1e-12)
        raw = self.variability * self.service_ns * rho / (1.0 - rho)
        return min(raw, self.max_delay_ns)


def utilization(load_gbps: float, peak_gbps: float) -> float:
    """Offered-load utilization, clamped to [0, inf); peak 0 means unusable."""
    if peak_gbps <= 0:
        raise ConfigurationError(f"peak bandwidth must be positive: {peak_gbps}")
    return max(0.0, load_gbps / peak_gbps)


def solve_closed_loop(
    latency_at_load,
    n_threads: int,
    inject_delay_ns: float,
    peak_gbps: float,
    bytes_per_access: int = 64,
    tol_ns: float = 0.05,
    max_iter: int = 200,
):
    """Solve the closed-loop fixed point for MLC-style traffic generation.

    Each of ``n_threads`` threads repeats: access memory (takes ``latency``),
    then compute for ``inject_delay_ns``.  Thread throughput is therefore
    ``1 / (latency + delay)`` accesses per ns and total offered bandwidth
    follows; but the latency itself depends on that bandwidth, so we iterate
    to a fixed point (damped to guarantee convergence near saturation).

    Parameters
    ----------
    latency_at_load:
        Callable ``f(load_gbps) -> latency_ns`` describing the target.
    n_threads:
        Number of concurrent traffic threads.
    inject_delay_ns:
        Compute delay injected between consecutive accesses of one thread.
    peak_gbps:
        Peak bandwidth of the target; used to cap the achieved load.

    Returns
    -------
    (latency_ns, achieved_gbps):
        The self-consistent mean latency and total achieved bandwidth.
    """
    if n_threads <= 0:
        raise ConfigurationError(f"n_threads must be positive: {n_threads}")
    if inject_delay_ns < 0:
        raise ConfigurationError(f"inject_delay_ns must be >= 0: {inject_delay_ns}")

    cap = 0.999 * peak_gbps

    def offered_at(load: float) -> float:
        per_thread_ns = latency_at_load(load) + inject_delay_ns
        if per_thread_ns <= 0:
            return cap
        return n_threads * bytes_per_access / per_thread_ns  # bytes/ns == GB/s

    # offered_at is non-increasing in load (latency grows with load), so
    # g(load) = offered_at(load) - load is strictly decreasing: bisection is
    # robust where damped iteration oscillates at the saturation knee.
    if offered_at(cap) >= cap:
        # Saturated: throughput pins at the knee and the surplus demand
        # shows up as latency via Little's law.
        lat = max(
            latency_at_load(cap),
            n_threads * bytes_per_access / cap - inject_delay_ns,
        )
        return lat, cap

    lo, hi = 0.0, cap
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if offered_at(mid) > mid:
            lo = mid
        else:
            hi = mid
        if (hi - lo) * bytes_per_access < tol_ns:  # GB/s gap scaled small
            break
    load = 0.5 * (lo + hi)
    return latency_at_load(load), load
