"""A compact event-driven queue simulator for validating the analytic models.

The analytic targets in this package compute loaded latency from closed-form
queueing expressions.  This module provides an independent discrete-event
simulation of the same physical setup -- N closed-loop clients issuing
requests with think time against a single service point -- so tests can
check that the analytic fixed point (:func:`repro.hw.queueing.solve_closed_loop`)
agrees with an actual simulation, and so ablation studies can quantify what
the closed forms abstract away.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SimResult:
    """Outcome of one closed-loop simulation run."""

    latencies_ns: np.ndarray  # per-request total latency (queue + service)
    duration_ns: float  # simulated time span
    completed: int  # requests completed

    @property
    def mean_latency_ns(self) -> float:
        """Mean per-request latency."""
        return float(self.latencies_ns.mean()) if self.completed else 0.0

    @property
    def throughput_per_ns(self) -> float:
        """Completed requests per simulated nanosecond."""
        return self.completed / self.duration_ns if self.duration_ns > 0 else 0.0

    def bandwidth_gbps(self, bytes_per_request: int = 64) -> float:
        """Achieved bandwidth in GB/s."""
        return self.throughput_per_ns * bytes_per_request


def simulate_closed_loop(
    n_clients: int,
    think_time_ns: float,
    service_sampler,
    n_requests: int,
    rng: np.random.Generator,
    servers: int = 1,
) -> SimResult:
    """Simulate N closed-loop clients against a FCFS multi-server station.

    Each client repeats: think for ``think_time_ns`` (exponentially jittered
    to avoid lockstep artefacts), issue a request, wait for completion.
    Service times are drawn from ``service_sampler(rng) -> ns``.

    Parameters
    ----------
    n_clients:
        Concurrent closed-loop clients (traffic threads).
    think_time_ns:
        Mean think (injected-delay) time between a completion and the next
        issue from the same client.
    service_sampler:
        Callable returning one service time in ns.
    n_requests:
        Total completions to simulate.
    servers:
        Parallel service units (e.g. DRAM channels behaving independently).
    """
    if n_clients <= 0 or n_requests <= 0 or servers <= 0:
        raise ConfigurationError("clients, requests, and servers must be positive")
    if think_time_ns < 0:
        raise ConfigurationError("think time must be >= 0")

    # Event heap holds (time, seq, kind, client); kinds: 0=issue 1=finish.
    events = []
    seq = 0
    for client in range(n_clients):
        start = rng.exponential(think_time_ns) if think_time_ns > 0 else 0.0
        heapq.heappush(events, (start, seq, 0, client))
        seq += 1

    server_free_at = [0.0] * servers
    latencies = np.empty(n_requests)
    completed = 0
    now = 0.0
    while completed < n_requests and events:
        now, _, kind, client = heapq.heappop(events)
        if kind == 0:  # issue a request
            server_idx = int(np.argmin(server_free_at))
            begin = max(now, server_free_at[server_idx])
            service = float(service_sampler(rng))
            finish = begin + service
            server_free_at[server_idx] = finish
            latencies[completed % n_requests] = finish - now
            heapq.heappush(events, (finish, seq, 1, client))
            seq += 1
        else:  # completion: record and start thinking
            completed += 1
            think = rng.exponential(think_time_ns) if think_time_ns > 0 else 0.0
            heapq.heappush(events, (now + think, seq, 0, client))
            seq += 1

    return SimResult(
        latencies_ns=latencies[:completed],
        duration_ns=now,
        completed=completed,
    )
