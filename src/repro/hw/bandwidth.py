"""Read/write bandwidth capacity models.

Figure 5 of the paper shows that the *shape* of achievable bandwidth versus
read/write ratio differs fundamentally across memory types:

* **Shared-bus memory** (DDR behind an iMC, and the FPGA CXL-C device that
  fails to use both CXL directions): a single bus carries reads and writes,
  so peak bandwidth occurs for read-only traffic and mixed traffic pays a
  bus-turnaround penalty.

* **Full-duplex links** (UPI cross-socket, ASIC CXL devices): reads and
  writes travel on independent unidirectional lanes, so the *total* peak
  occurs at a mixed ratio where both directions are busy.  The ratio at
  which the peak occurs equals the ratio of the two directions' capacities,
  which differs per device (2:1 for CXL-A, 3:1-4:1 for CXL-D, ...).

Both are captured by :class:`BandwidthModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

FULL_DUPLEX = "full-duplex"
SHARED_BUS = "shared-bus"


@dataclass(frozen=True)
class BandwidthModel:
    """Achievable bandwidth as a function of the read fraction.

    Parameters
    ----------
    read_gbps:
        Capacity of the read direction (GB/s).  For a shared bus this is the
        whole bus capacity under read-only traffic.
    write_gbps:
        Capacity of the write direction.  Ignored for shared-bus mode except
        as the write-only limit.
    backend_gbps:
        Shared downstream limit (DRAM channels behind the controller).  The
        total can never exceed this regardless of link duplexing.
    mode:
        ``FULL_DUPLEX`` or ``SHARED_BUS``.
    turnaround_penalty:
        Shared-bus only: fractional bandwidth lost at a perfect 1:1 mix due
        to bus turnarounds (0.15 = 15% loss).  The loss shrinks linearly as
        the mix approaches pure reads or pure writes.
    """

    read_gbps: float
    write_gbps: float
    backend_gbps: float
    mode: str = FULL_DUPLEX
    turnaround_penalty: float = 0.12

    def __post_init__(self) -> None:
        if self.mode not in (FULL_DUPLEX, SHARED_BUS):
            raise ConfigurationError(f"unknown duplex mode: {self.mode!r}")
        if min(self.read_gbps, self.write_gbps, self.backend_gbps) <= 0:
            raise ConfigurationError("all capacities must be positive")
        if not 0.0 <= self.turnaround_penalty < 1.0:
            raise ConfigurationError(
                f"turnaround_penalty out of range: {self.turnaround_penalty}"
            )

    def peak_gbps(self, read_fraction: float = 1.0) -> float:
        """Peak total bandwidth for a traffic mix with ``read_fraction`` reads."""
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigurationError(f"read_fraction out of range: {read_fraction}")
        if self.mode == FULL_DUPLEX:
            limits = [self.backend_gbps]
            if read_fraction > 0:
                limits.append(self.read_gbps / read_fraction)
            if read_fraction < 1:
                limits.append(self.write_gbps / (1.0 - read_fraction))
            return min(limits)
        # Shared bus: linear turnaround dip, worst at a 1:1 mix.
        mix = 1.0 - abs(2.0 * read_fraction - 1.0)  # 0 at pure r/w, 1 at 1:1
        base = self.read_gbps * read_fraction + self.write_gbps * (1.0 - read_fraction)
        return min(self.backend_gbps, base * (1.0 - self.turnaround_penalty * mix))

    def best_mix(self, samples: int = 101) -> tuple:
        """Return ``(read_fraction, peak_gbps)`` of the best traffic mix.

        When a backend cap creates a flat plateau of optimal mixes (as on
        CXL-A/D), the plateau *midpoint* is reported -- the ratio a
        measurement sweep would identify as the peak.
        """
        fractions = [i / (samples - 1) for i in range(samples)]
        peaks = [self.peak_gbps(f) for f in fractions]
        best_bw = max(peaks)
        plateau = [
            f for f, bw in zip(fractions, peaks)
            if bw >= best_bw * (1.0 - 1e-9)
        ]
        best_f = plateau[len(plateau) // 2]
        return best_f, best_bw
