"""Memory pooling: one CXL device shared by multiple hosts.

The paper motivates CXL with rack-level pooling (Pond-style, its citation
[34]) and Finding #2 notes CXL "could be useful ... e.g., in pooling
scenarios" -- but also that tail latency is the QoS risk.  This module
models the sharing side of that story: a device whose bandwidth is
consumed concurrently by *other* hosts, so one host's view of the device
operates at ``own load + neighbour load``.

:class:`SharedDeviceView` is a :class:`~repro.hw.target.MemoryTarget`
wrapper that folds the neighbours' load into every latency query, letting
the whole existing stack (pipeline, Melody, Spa, MIO) measure noisy-
neighbour interference without modification.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.hw.bandwidth import BandwidthModel
from repro.hw.queueing import QueueModel
from repro.hw.tail import TailModel
from repro.hw.target import LatencyDistribution, MemoryTarget


class SharedDeviceView(MemoryTarget):
    """One host's view of a pooled device with neighbour traffic.

    The neighbours' aggregate load shifts the operating point: latency
    queries at own-load ``x`` are answered at ``x + neighbour_gbps``, and
    the bandwidth available to this host shrinks by the neighbours' share.
    """

    def __init__(
        self,
        device: MemoryTarget,
        neighbour_gbps: float,
        neighbour_read_fraction: float = 0.7,
        name: str = None,
    ):
        if neighbour_gbps < 0:
            raise ConfigurationError("neighbour load cannot be negative")
        peak = device.peak_bandwidth_gbps(neighbour_read_fraction)
        if neighbour_gbps >= peak:
            raise ConfigurationError(
                f"neighbours alone saturate {device.name} "
                f"({neighbour_gbps} >= {peak:.1f} GB/s)"
            )
        super().__init__(
            name or f"{device.name}+{neighbour_gbps:.0f}GBps-neighbours",
            device.capacity_gb,
        )
        self.device = device
        self.neighbour_gbps = neighbour_gbps
        self.neighbour_read_fraction = neighbour_read_fraction

    # -- MemoryTarget -------------------------------------------------------

    def idle_latency_ns(self) -> float:
        """This host's unloaded latency (neighbour pressure included)."""
        # "Idle" for this host still includes the neighbours' pressure.
        return self.device.distribution(
            self.neighbour_gbps, self.neighbour_read_fraction
        ).mean_ns

    def bandwidth_model(self) -> BandwidthModel:
        """Capacities left over after the neighbours' share."""
        inner = self.device.bandwidth_model()
        scale = 1.0 - self.neighbour_gbps / max(
            inner.backend_gbps, self.neighbour_gbps + 1e-9
        )
        return BandwidthModel(
            read_gbps=max(0.5, inner.read_gbps * scale),
            write_gbps=max(0.25, inner.write_gbps * scale),
            backend_gbps=max(0.5, inner.backend_gbps - self.neighbour_gbps),
            mode=inner.mode,
            turnaround_penalty=inner.turnaround_penalty,
        )

    def queue_model(self) -> QueueModel:
        """The underlying device's queue model."""
        return self.device.queue_model()

    def tail_model(self) -> TailModel:
        """The underlying device's tail model."""
        return self.device.tail_model()

    def distribution(
        self, load_gbps: float = 0.0, read_fraction: float = 1.0
    ) -> LatencyDistribution:
        """Latency at own load + neighbour load on the *device*."""
        total = load_gbps + self.neighbour_gbps
        # Combined read fraction, traffic-weighted.
        if total > 0:
            combined_rf = (
                load_gbps * read_fraction
                + self.neighbour_gbps * self.neighbour_read_fraction
            ) / total
        else:
            combined_rf = read_fraction
        return self.device.distribution(total, combined_rf)


def pool_views(
    device_factory,
    hosts: int,
    per_neighbour_gbps: float,
    **kwargs,
) -> Sequence[SharedDeviceView]:
    """Views for ``hosts`` equal tenants of one pooled device.

    Each host sees the other ``hosts - 1`` tenants as neighbours.
    """
    if hosts < 1:
        raise ConfigurationError("need at least one host")
    views = []
    for i in range(hosts):
        device = device_factory()
        views.append(
            SharedDeviceView(
                device,
                neighbour_gbps=per_neighbour_gbps * (hosts - 1),
                name=f"{device.name}-pool{hosts}-host{i}",
                **kwargs,
            )
        )
    return views
