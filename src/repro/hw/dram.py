"""DRAM device model: DDR timings, banks, row buffer, and refresh.

Both the CPU's integrated memory controller (iMC) and every CXL expander
terminate in commodity DRAM.  This module models the part of latency and
latency *variation* that originates in the DRAM chips themselves:

* Row-buffer locality: a request hits the open row (CAS only), misses it
  (activate + CAS), or conflicts (precharge + activate + CAS).
* Refresh: every tREFI a rank is unavailable for tRFC, so a small fraction
  of requests eat up to a full tRFC of extra delay.  This is the source of
  the small-but-nonzero tails the paper observes even on local DRAM.
* Channel bandwidth: transfer-rate x bus-width, derated to the sustainable
  fraction real controllers achieve.

The numbers below follow JEDEC DDR4-3200 / DDR5-4800 speed bins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DramTimings:
    """JEDEC-style timing set for one DRAM generation (all times in ns)."""

    generation: str
    tCL: float  # CAS latency: column access on an open row
    tRCD: float  # row-to-column: activate before CAS on a closed bank
    tRP: float  # precharge: close a conflicting row first
    tRFC: float  # refresh cycle: rank unavailable during refresh
    tREFI: float  # refresh interval
    transfer_gtps: float  # transfer rate in GT/s (e.g. 3.2 for DDR4-3200)
    bus_bytes: int = 8  # 64-bit data bus
    sustained_fraction: float = 0.78  # fraction of theoretical BW sustained

    def __post_init__(self) -> None:
        if min(self.tCL, self.tRCD, self.tRP, self.tRFC, self.tREFI) <= 0:
            raise ConfigurationError("all DRAM timings must be positive")
        if not 0.0 < self.sustained_fraction <= 1.0:
            raise ConfigurationError(
                f"sustained_fraction out of range: {self.sustained_fraction}"
            )

    @property
    def row_hit_ns(self) -> float:
        """Access latency when the target row is already open."""
        return self.tCL

    @property
    def row_miss_ns(self) -> float:
        """Access latency when the bank is idle (activate + CAS)."""
        return self.tRCD + self.tCL

    @property
    def row_conflict_ns(self) -> float:
        """Access latency when another row is open (precharge first)."""
        return self.tRP + self.tRCD + self.tCL

    @property
    def refresh_duty(self) -> float:
        """Fraction of time a rank is blocked by refresh."""
        return self.tRFC / self.tREFI

    @property
    def channel_peak_gbps(self) -> float:
        """Theoretical per-channel peak bandwidth (GB/s)."""
        return self.transfer_gtps * self.bus_bytes

    @property
    def channel_sustained_gbps(self) -> float:
        """Sustainable per-channel bandwidth (GB/s)."""
        return self.channel_peak_gbps * self.sustained_fraction


DDR4 = DramTimings(
    generation="DDR4-3200",
    tCL=13.75,
    tRCD=13.75,
    tRP=13.75,
    tRFC=350.0,
    tREFI=7800.0,
    transfer_gtps=3.2,
)
"""DDR4-3200 (CL22): the memory behind SKX platforms, CXL-A, and CXL-C."""

DDR5 = DramTimings(
    generation="DDR5-4800",
    tCL=13.33,
    tRCD=13.33,
    tRP=13.33,
    tRFC=295.0,
    tREFI=3900.0,
    transfer_gtps=4.8,
)
"""DDR5-4800 (CL32): the memory behind SPR/EMR platforms, CXL-B, and CXL-D."""


@dataclass(frozen=True)
class DramBackend:
    """A set of DRAM channels behind one memory controller.

    Parameters
    ----------
    timings:
        The DRAM generation's timing set.
    channels:
        Number of independent channels.
    row_hit_rate / row_conflict_rate:
        Steady-state row-buffer behaviour of a mixed request stream; the
        remainder are plain row misses.
    """

    timings: DramTimings
    channels: int
    row_hit_rate: float = 0.55
    row_conflict_rate: float = 0.15

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ConfigurationError(f"channels must be positive: {self.channels}")
        if not 0.0 <= self.row_hit_rate <= 1.0:
            raise ConfigurationError(f"row_hit_rate out of range: {self.row_hit_rate}")
        if not 0.0 <= self.row_conflict_rate <= 1.0:
            raise ConfigurationError(
                f"row_conflict_rate out of range: {self.row_conflict_rate}"
            )
        if self.row_hit_rate + self.row_conflict_rate > 1.0:
            raise ConfigurationError("row hit + conflict rates exceed 1.0")

    @property
    def row_miss_rate(self) -> float:
        """Fraction of requests that are plain row misses."""
        return 1.0 - self.row_hit_rate - self.row_conflict_rate

    def mean_access_ns(self) -> float:
        """Mean chip-level access latency for the configured row behaviour."""
        t = self.timings
        return (
            self.row_hit_rate * t.row_hit_ns
            + self.row_miss_rate * t.row_miss_ns
            + self.row_conflict_rate * t.row_conflict_ns
        )

    def refresh_extra_mean_ns(self) -> float:
        """Mean extra latency contributed by refresh blocking.

        A request arriving during a refresh waits half of tRFC on average;
        the probability of arriving during one equals the refresh duty.
        """
        return self.timings.refresh_duty * self.timings.tRFC / 2.0

    def peak_bandwidth_gbps(self) -> float:
        """Sustained bandwidth across all channels."""
        return self.channels * self.timings.channel_sustained_gbps

    def access_jitter_ns(self) -> float:
        """Std-dev-scale jitter of chip-level access latency.

        The spread between a row hit and a row conflict bounds how much the
        chips alone can vary; controllers add their own variation on top.
        """
        t = self.timings
        return (t.row_conflict_ns - t.row_hit_ns) / 2.0
