"""Parametric tail-latency models.

The paper's central device-level finding (Finding #1) is that CXL devices
exhibit unstable, heavy *tail* latencies that average latency and bandwidth
do not capture: some devices (CXL-B, CXL-C) show large p99.9-p50 gaps even at
low utilization, others (CXL-A, CXL-D) only start misbehaving beyond an
onset utilization, while local DRAM and NUMA stay stable to 90-95%.

We model the per-request latency of a target as a three-part mixture::

    latency = base + jitter + tail_excursion

* ``base`` -- the deterministic component (link transit + MC + DRAM access).
* ``jitter`` -- small always-present variation (row-buffer misses, refresh),
  modelled as a gamma-distributed term with mean ``jitter_ns``.
* ``tail_excursion`` -- with probability ``tail_prob(util)`` the request
  additionally experiences an exponential excursion with mean
  ``tail_scale(util)``, capped at ``tail_cap_ns``.  This captures link-layer
  retries, flow-control back-pressure, scheduler hiccups, and thermal events
  inside third-party CXL MCs.

Both the probability and the magnitude of excursions grow once utilization
passes ``onset_util``, reproducing Figure 3c's device-specific divergence of
(p99.9 - p50) with load.  The model is deliberately pluggable (it is one of
the ablation hooks listed in DESIGN.md): passing :data:`NO_TAIL` to a device
yields an idealised, perfectly stable controller.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TailModel:
    """Tail-latency behaviour of one memory service point.

    Parameters
    ----------
    jitter_ns:
        Mean of the always-present gamma jitter (DRAM-level variation).
    jitter_shape:
        Gamma shape for the jitter; smaller = more skewed.
    tail_prob_idle:
        Probability that an idle-load request takes a tail excursion.
    tail_scale_idle_ns:
        Mean magnitude (ns) of an excursion at idle load.
    onset_util:
        Utilization at which load begins amplifying the tail.
    prob_growth:
        Linear growth rate of tail probability with utilization past onset
        (per unit utilization).
    scale_growth:
        Multiplicative growth of excursion magnitude at full utilization
        (1.0 = no growth).
    tail_cap_ns:
        Hard cap on a single excursion (keeps the distribution physical).
    deep_prob / deep_scale_ns:
        An optional second, much rarer and larger excursion class (p99.99+
        events: correlated retries, scheduler stalls).  Load-independent;
        zero by default.
    """

    jitter_ns: float = 12.0
    jitter_shape: float = 2.0
    tail_prob_idle: float = 0.0005
    tail_scale_idle_ns: float = 60.0
    onset_util: float = 0.9
    prob_growth: float = 0.01
    scale_growth: float = 1.5
    tail_cap_ns: float = 3000.0
    deep_prob: float = 0.0
    deep_scale_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.jitter_ns < 0 or self.jitter_shape <= 0:
            raise ConfigurationError("jitter parameters must be non-negative/positive")
        if not 0.0 <= self.tail_prob_idle <= 1.0:
            raise ConfigurationError(f"tail_prob_idle out of range: {self.tail_prob_idle}")
        if self.tail_scale_idle_ns < 0 or self.tail_cap_ns <= 0:
            raise ConfigurationError("tail scale/cap must be non-negative/positive")
        if not 0.0 <= self.onset_util <= 1.0:
            raise ConfigurationError(f"onset_util out of range: {self.onset_util}")
        if not 0.0 <= self.deep_prob <= 1.0 or self.deep_scale_ns < 0:
            raise ConfigurationError("deep-tail parameters out of range")

    def load_factor(self, util: float) -> float:
        """Excess utilization past the onset, in [0, 1]."""
        if util <= self.onset_util:
            return 0.0
        span = max(1e-9, 1.0 - self.onset_util)
        return min(1.0, (util - self.onset_util) / span)

    def tail_prob(self, util: float) -> float:
        """Probability of a tail excursion at ``util``."""
        prob = self.tail_prob_idle + self.prob_growth * self.load_factor(util)
        return min(1.0, prob)

    def tail_scale_ns(self, util: float) -> float:
        """Mean excursion magnitude (ns) at ``util``."""
        growth = 1.0 + (self.scale_growth - 1.0) * self.load_factor(util)
        return self.tail_scale_idle_ns * growth

    def mean_extra_ns(self, util: float) -> float:
        """Mean latency added by jitter + excursions at ``util``."""
        return self.jitter_ns + self.mean_excursion_ns(util)

    def mean_excursion_ns(self, util: float) -> float:
        """Mean latency added by tail *excursions* alone at ``util``.

        Excludes the always-present jitter: jitter exists on every memory
        type (row-buffer misses, refresh) and the out-of-order window hides
        it, whereas excursions are the CXL-specific events that serialize
        dependent access chains.
        """
        return (
            self.tail_prob(util) * self.tail_scale_ns(util)
            + self.deep_prob * self.deep_scale_ns
        )

    def sample_extra_ns(
        self, n: int, util: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n`` per-request extra-latency samples at ``util``."""
        if n < 0:
            raise ConfigurationError(f"sample count must be >= 0: {n}")
        jitter = rng.gamma(self.jitter_shape, self.jitter_ns / self.jitter_shape, n)
        prob = self.tail_prob(util)
        scale = self.tail_scale_ns(util)
        hit = rng.random(n) < prob
        excursions = np.zeros(n)
        n_hit = int(hit.sum())
        if n_hit and scale > 0:
            excursions[hit] = np.minimum(
                rng.exponential(scale, n_hit), self.tail_cap_ns
            )
        if self.deep_prob > 0 and self.deep_scale_ns > 0:
            deep_hit = rng.random(n) < self.deep_prob
            n_deep = int(deep_hit.sum())
            if n_deep:
                excursions[deep_hit] += np.minimum(
                    rng.exponential(self.deep_scale_ns, n_deep),
                    self.tail_cap_ns,
                )
        return jitter + excursions

    def scaled(self, prob_factor: float = 1.0, scale_factor: float = 1.0) -> "TailModel":
        """Return a copy with amplified tail probability/magnitude.

        Used by topology composition: CXL behind a NUMA hop exhibits
        dramatically worse tails (Figure 8c/d), which we model by amplifying
        the device's own tail parameters.
        """
        return replace(
            self,
            tail_prob_idle=min(1.0, self.tail_prob_idle * prob_factor),
            prob_growth=self.prob_growth * prob_factor,
            tail_scale_idle_ns=self.tail_scale_idle_ns * scale_factor,
            tail_cap_ns=self.tail_cap_ns * max(1.0, scale_factor),
        )


NO_TAIL = TailModel(
    jitter_ns=0.0,
    jitter_shape=1.0,
    tail_prob_idle=0.0,
    tail_scale_idle_ns=0.0,
    onset_util=1.0,
    prob_growth=0.0,
    scale_growth=1.0,
)
"""Idealised controller with perfectly deterministic latency (ablation)."""

DRAM_TAIL = TailModel(
    jitter_ns=13.0,
    jitter_shape=2.2,
    tail_prob_idle=0.0010,
    tail_scale_idle_ns=45.0,
    onset_util=0.93,
    prob_growth=0.004,
    scale_growth=1.2,
    tail_cap_ns=400.0,
)
"""Socket-local DRAM behind an iMC: p99.9-p50 around 45 ns, stable to ~93%."""

NUMA_TAIL = TailModel(
    jitter_ns=18.0,
    jitter_shape=2.2,
    tail_prob_idle=0.0015,
    tail_scale_idle_ns=58.0,
    onset_util=0.92,
    prob_growth=0.005,
    scale_growth=1.3,
    tail_cap_ns=500.0,
)
"""Cross-socket DRAM: slightly larger but still stable tails (~61 ns gap)."""
