"""Columnar manifests: one compact JSON document per (fingerprint, job).

A manifest maps every cell key of one campaign (or one shard of it) to
its segment span, plus the queryable columns -- kind, device, workload,
fault-plan key, operating point, latency count.  The encoding is
columnar and dictionary-compressed so a 10k-cell manifest is a few
hundred KB, not a 10k-file directory:

* all 64-hex cell keys concatenate into **one** string (sliced back on
  demand -- far faster to parse than 10k separate JSON strings);
* low-cardinality string columns (device, workload, fault plan,
  skeleton ref, segment name) store a vocabulary plus integer codes;
* numeric columns are plain JSON arrays, materialized as ``numpy``
  arrays once per process for vectorized predicate scans;
* document *skeletons* (see :mod:`repro.store.codec`) are stored once
  per distinct shape, content-addressed;
* workload/platform blobs referenced by analytic entries are embedded,
  so a store directory is self-contained -- it can be copied between
  hosts without dragging the JSON tier along.

Manifests are immutable once written (``<fingerprint>.json``, or
``<fingerprint>.<job_id>.json`` for one shard's slice) and written
atomically, mirroring the run cache's temp-file idiom.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

MANIFEST_VERSION = 1
"""Bump on any layout change; mismatched manifests are refused loudly
(the store is an explicit promotion target, not a best-effort cache)."""

KEY_HEX = 64
"""Cell keys are sha256 hex digests; the fixed width is what lets the
key column concatenate into one sliceable string."""

KIND_EVENTSIM = "eventsim"
KIND_ANALYTIC = "analytic"

_VOCAB_COLUMNS = (
    "kind",
    "device",
    "workload",
    "target",
    "fault_plan",
    "skeleton",
    "segment",
    "workload_ref",
    "platform_ref",
)
_FLOAT_COLUMNS = ("offered_gbps", "read_fraction")
_INT_COLUMNS = ("offset", "length", "n")

_TMP_SEQ = itertools.count()


@dataclass(frozen=True)
class ManifestEntry:
    """One cell's row: identity, queryable columns, and segment span."""

    key: str
    kind: str
    device: str
    workload: str
    target: str
    fault_plan: str
    offered_gbps: float
    read_fraction: float
    skeleton: str
    segment: str
    offset: int
    length: int
    n: int
    workload_ref: str = ""
    platform_ref: str = ""


class Manifest:
    """The columnar cell index of one (campaign fingerprint, job id).

    Rows append through :meth:`add`; columns materialize as ``numpy``
    arrays through :meth:`column`/:meth:`codes` (cached until the next
    append).  ``skeletons`` and ``blobs`` are content-addressed side
    tables shared by all rows.
    """

    def __init__(self, fingerprint: str, job_id: str = "") -> None:
        self.fingerprint = fingerprint
        self.job_id = job_id
        self.skeletons: Dict[str, Any] = {}
        self.blobs: Dict[str, Any] = {}
        self._keys: List[str] = []
        self._vocab: Dict[str, List[str]] = {
            name: [] for name in _VOCAB_COLUMNS
        }
        self._vocab_index: Dict[str, Dict[str, int]] = {
            name: {} for name in _VOCAB_COLUMNS
        }
        self._codes: Dict[str, List[int]] = {
            name: [] for name in _VOCAB_COLUMNS
        }
        self._floats: Dict[str, List[float]] = {
            name: [] for name in _FLOAT_COLUMNS
        }
        self._ints: Dict[str, List[int]] = {
            name: [] for name in _INT_COLUMNS
        }
        self._arrays: Dict[str, np.ndarray] = {}
        self._key_index: Optional[Dict[str, int]] = None
        # row -> ManifestEntry.  Rows are append-only and never mutate,
        # so cached entries stay valid across later ``add`` calls.
        self._entry_cache: Dict[int, ManifestEntry] = {}

    def __len__(self) -> int:
        return len(self._keys)

    # -- build side ------------------------------------------------------

    def _code(self, column: str, value: str) -> int:
        index = self._vocab_index[column]
        code = index.get(value)
        if code is None:
            code = len(self._vocab[column])
            self._vocab[column].append(value)
            index[value] = code
        return code

    def add(self, entry: ManifestEntry) -> None:
        """Append one row (key validated, vocab codes interned)."""
        if len(entry.key) != KEY_HEX:
            raise ValueError(
                f"cell key must be {KEY_HEX} hex chars, got {entry.key!r}"
            )
        self._keys.append(entry.key)
        for name in _VOCAB_COLUMNS:
            self._codes[name].append(
                self._code(name, getattr(entry, name))
            )
        for name in _FLOAT_COLUMNS:
            self._floats[name].append(float(getattr(entry, name)))
        for name in _INT_COLUMNS:
            self._ints[name].append(int(getattr(entry, name)))
        self._arrays.clear()
        self._key_index = None

    # -- read side -------------------------------------------------------

    def key_at(self, row: int) -> str:
        """Cell key of one row."""
        return self._keys[row]

    def keys(self) -> List[str]:
        """All cell keys, in row order."""
        return list(self._keys)

    def key_index(self) -> Dict[str, int]:
        """key -> row (first occurrence wins), built lazily."""
        if self._key_index is None:
            index: Dict[str, int] = {}
            for row, key in enumerate(self._keys):
                index.setdefault(key, row)
            self._key_index = index
        return self._key_index

    def vocab(self, column: str) -> List[str]:
        """Dictionary of one vocab column (code -> string)."""
        return self._vocab[column]

    def value_at(self, column: str, row: int) -> str:
        """Decoded string value of one vocab cell."""
        return self._vocab[column][self._codes[column][row]]

    def codes(self, column: str) -> np.ndarray:
        """Integer codes of one vocab column as an ``int64`` array."""
        cached = self._arrays.get(column)
        if cached is None:
            cached = np.asarray(self._codes[column], dtype=np.int64)
            self._arrays[column] = cached
        return cached

    def column(self, name: str) -> np.ndarray:
        """One numeric column as a ``float64``/``int64`` array."""
        cached = self._arrays.get(name)
        if cached is None:
            if name in _FLOAT_COLUMNS:
                cached = np.asarray(self._floats[name], dtype=np.float64)
            elif name in _INT_COLUMNS:
                cached = np.asarray(self._ints[name], dtype=np.int64)
            else:
                raise KeyError(f"no numeric column {name!r}")
            self._arrays[name] = cached
        return cached

    def match_mask(self, column: str, value: str) -> np.ndarray:
        """Boolean row mask for ``column == value`` (vectorized).

        A value absent from the vocabulary short-circuits to all-False
        without touching the code array.
        """
        code = self._vocab_index[column].get(value)
        if code is None:
            return np.zeros(len(self._keys), dtype=bool)
        return self.codes(column) == code

    def entry(self, row: int) -> ManifestEntry:
        """One row as a :class:`ManifestEntry` (cached per row)."""
        cached = self._entry_cache.get(row)
        if cached is not None:
            return cached
        values = {
            name: self.value_at(name, row) for name in _VOCAB_COLUMNS
        }
        values.update(
            {name: self._floats[name][row] for name in _FLOAT_COLUMNS}
        )
        values.update(
            {name: self._ints[name][row] for name in _INT_COLUMNS}
        )
        entry = ManifestEntry(key=self._keys[row], **values)
        self._entry_cache[row] = entry
        return entry

    def entries(self):
        """Iterate every row as a :class:`ManifestEntry`."""
        for row in range(len(self._keys)):
            yield self.entry(row)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (inverse of :meth:`from_dict`)."""
        return {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "job_id": self.job_id,
            "count": len(self._keys),
            "keys": "".join(self._keys),
            "vocab": {
                name: self._vocab[name] for name in _VOCAB_COLUMNS
            },
            "codes": {
                name: self._codes[name] for name in _VOCAB_COLUMNS
            },
            "floats": {
                name: self._floats[name] for name in _FLOAT_COLUMNS
            },
            "ints": {name: self._ints[name] for name in _INT_COLUMNS},
            "skeletons": self.skeletons,
            "blobs": self.blobs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Manifest":
        if data.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {data.get('version')!r}"
            )
        manifest = cls(data["fingerprint"], data.get("job_id", ""))
        count = int(data["count"])
        keys = data["keys"]
        if len(keys) != count * KEY_HEX:
            raise ValueError(
                f"key column holds {len(keys)} chars, expected "
                f"{count * KEY_HEX}"
            )
        manifest._keys = [
            keys[i * KEY_HEX:(i + 1) * KEY_HEX] for i in range(count)
        ]
        for name in _VOCAB_COLUMNS:
            vocab = list(data["vocab"][name])
            codes = [int(c) for c in data["codes"][name]]
            if len(codes) != count:
                raise ValueError(f"column {name!r} length mismatch")
            if codes and not all(0 <= c < len(vocab) for c in codes):
                raise ValueError(f"column {name!r} code out of range")
            manifest._vocab[name] = vocab
            manifest._vocab_index[name] = {
                value: code for code, value in enumerate(vocab)
            }
            manifest._codes[name] = codes
        for name in _FLOAT_COLUMNS:
            values = [float(v) for v in data["floats"][name]]
            if len(values) != count:
                raise ValueError(f"column {name!r} length mismatch")
            manifest._floats[name] = values
        for name in _INT_COLUMNS:
            values = [int(v) for v in data["ints"][name]]
            if len(values) != count:
                raise ValueError(f"column {name!r} length mismatch")
            manifest._ints[name] = values
        manifest.skeletons = dict(data["skeletons"])
        manifest.blobs = dict(data["blobs"])
        return manifest

    # -- disk ------------------------------------------------------------

    def filename(self) -> str:
        """``<fp>.json``, or ``<fp>.<job_id>.json`` for a shard slice."""
        if self.job_id:
            return f"{self.fingerprint}.{self.job_id}.json"
        return f"{self.fingerprint}.json"

    def write(self, directory: Path) -> Path:
        """Atomically write this manifest into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / self.filename()
        tmp = Path(
            f"{path}.tmp.{os.getpid()}."
            f"{threading.get_ident()}.{next(_TMP_SEQ)}"
        )
        try:
            with open(tmp, "w") as handle:
                json.dump(self.to_dict(), handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: Path) -> "Manifest":
        with open(path, "r") as handle:
            return cls.from_dict(json.load(handle))
