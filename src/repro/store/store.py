"""ResultStore: read/scan/merge facade over segments and manifests.

Layout, under ``<cache_dir>/store/``::

    manifests/<fingerprint>.json            merged campaign manifest
    manifests/<fingerprint>.<job_id>.json   one shard's slice
    segments/<writer_id>-<seq>.f64          packed float64 payloads

Reads are O(1): key -> (manifest row) -> ``np.memmap`` slice ->
:func:`~repro.store.codec.join_document`.  Scans are vectorized over
the manifest columns and never touch segments except for the latency
arrays a query actually asks percentiles of.  Shard merging
(:meth:`ResultStore.compact`) folds ``<fp>.<job>.json`` manifests into
one ``<fp>.json``; overlapping cell keys must be bit-identical (same
skeleton, same span bytes) or the merge raises :class:`StoreConflict`
-- two shards disagreeing about one cell is corruption, never a tie to
break silently.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.store.codec import (
    array_span,
    compile_skeleton,
    skeleton_ref,
    split_document,
)
from repro.store.manifest import (
    KIND_ANALYTIC,
    KIND_EVENTSIM,
    Manifest,
    ManifestEntry,
)
from repro.store.segments import SegmentWriter, open_segment

MANIFEST_DIR = "manifests"
SEGMENT_DIR = "segments"


class StoreConflict(Exception):
    """Two store entries claim the same cell key with different bytes."""


@dataclass(frozen=True)
class ScanHit:
    """One row matched by :meth:`ResultStore.scan`.

    Carries the columnar fields directly; the latency payload stays on
    disk until :meth:`latencies`/:meth:`percentile` asks for it.
    """

    store: "ResultStore"
    manifest: Manifest
    row: int
    entry: ManifestEntry

    @property
    def key(self) -> str:
        """Cell key of the matched row."""
        return self.entry.key

    def latencies(self) -> np.ndarray:
        """The row's packed latency array (zero-copy segment view)."""
        return self.store._latencies(self.manifest, self.entry)

    def percentile(self, p: float) -> float:
        """Latency percentile straight off the segment span."""
        return float(np.percentile(self.latencies(), p))

    def document(self) -> Any:
        """The full reassembled result document."""
        return self.store._document(self.manifest, self.entry)


class StoreWriter:
    """Appends results of one (fingerprint, job) into the store.

    Re-opening an existing manifest extends it (new vectors land in
    fresh segment files; prior spans keep pointing where they were), so
    repeated promotions of one campaign accrete instead of clobbering.
    Writers of distinct (fingerprint, job) pairs never share a segment
    file, which is what lets shard processes write concurrently.
    """

    def __init__(
        self, store: "ResultStore", fingerprint: str, job_id: str = ""
    ) -> None:
        self.store = store
        path = store.manifest_dir / Manifest(fingerprint, job_id).filename()
        if path.exists():
            self.manifest = Manifest.load(path)
        else:
            self.manifest = Manifest(fingerprint, job_id)
        writer_id = fingerprint[:12] + (f".{job_id}" if job_id else "")
        self._segments = SegmentWriter(store.segment_dir, writer_id)

    def __len__(self) -> int:
        return len(self.manifest)

    def add(
        self,
        key: str,
        doc: Dict[str, Any],
        workload_doc: Optional[Dict[str, Any]] = None,
        platform_doc: Optional[Dict[str, Any]] = None,
        fault_plan: str = "",
    ) -> ManifestEntry:
        """Store one result document under ``key``.

        ``doc`` is the exact JSON-tier document (event-sim ``to_dict``
        output, or an analytic run document including its blob refs);
        the split codec guarantees it reassembles bit-identically.
        """
        skeleton, vector = split_document(doc)
        ref = skeleton_ref(skeleton)
        self.manifest.skeletons.setdefault(ref, skeleton)
        segment, offset, length = self._segments.append(vector)
        if doc.get("kind") == KIND_EVENTSIM:
            entry = ManifestEntry(
                key=key,
                kind=KIND_EVENTSIM,
                device=doc["device"],
                workload="",
                target=doc["device"],
                fault_plan=doc.get("fault_plan") or "",
                offered_gbps=float(doc["offered_gbps"]),
                read_fraction=float(doc["read_fraction"]),
                skeleton=ref,
                segment=segment,
                offset=offset,
                length=length,
                n=len(doc["latencies_ns"]),
            )
        else:
            workload_ref = doc.get("workload_ref", "")
            platform_ref = doc.get("platform_ref", "")
            if workload_doc is not None and workload_ref:
                self.manifest.blobs.setdefault(workload_ref, workload_doc)
            if platform_doc is not None and platform_ref:
                self.manifest.blobs.setdefault(platform_ref, platform_doc)
            entry = ManifestEntry(
                key=key,
                kind=KIND_ANALYTIC,
                device=doc["target_name"],
                workload=(
                    workload_doc.get("name", "") if workload_doc else ""
                ),
                target=doc["target_name"],
                fault_plan=fault_plan,
                offered_gbps=math.nan,
                read_fraction=math.nan,
                skeleton=ref,
                segment=segment,
                offset=offset,
                length=length,
                n=0,
                workload_ref=workload_ref,
                platform_ref=platform_ref,
            )
        self.manifest.add(entry)
        return entry

    def commit(self) -> Path:
        """Flush segments, write the manifest, refresh the live index."""
        self._segments.flush()
        self._segments.close()
        path = self.manifest.write(self.store.manifest_dir)
        self.store._install(path.name, self.manifest)
        return path


class ResultStore:
    """Union view of every manifest under one store root.

    Thread-safe: one store may serve concurrent ``repro serve`` query
    jobs.  Loading is lazy (first access scans ``manifests/``) and
    incremental installs from in-process writers keep the index fresh
    without re-reading anything.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._lock = threading.RLock()
        self._loaded = False
        self._manifests: Dict[str, Manifest] = {}
        # key -> (manifest, row); first manifest to claim a key wins
        # (claims are bit-identical by construction; the store diag
        # layer and compact() enforce, the index just picks one).
        self._index: Dict[str, Tuple[Manifest, int]] = {}
        self._blob_objects: Dict[str, Any] = {}
        self._spans: Dict[Tuple[str, str], Optional[Tuple[int, int]]] = {}
        # Warm-read caches.  Compiled joins are keyed by skeleton ref
        # (content-addressed, so safe across manifests); segment views
        # by segment name, re-opened through the size-aware
        # ``open_segment`` memo whenever a span reaches past the cached
        # mapping (a concurrent shard grew the file).  Both are plain
        # dicts touched without the lock: a lost race costs one
        # duplicate compile/open, never a wrong answer.
        self._joins: Dict[str, Any] = {}
        self._segment_views: Dict[str, np.ndarray] = {}
        self.corrupt_manifests = 0

    @property
    def manifest_dir(self) -> Path:
        return self.root / MANIFEST_DIR

    @property
    def segment_dir(self) -> Path:
        return self.root / SEGMENT_DIR

    # -- index maintenance ----------------------------------------------

    def _load(self) -> None:
        with self._lock:
            if self._loaded:
                return
            self._loaded = True
            if not self.manifest_dir.is_dir():
                return
            for path in sorted(self.manifest_dir.glob("*.json")):
                try:
                    manifest = Manifest.load(path)
                except (OSError, ValueError, KeyError, TypeError):
                    # A truncated manifest must not take the whole store
                    # down; it is counted, skipped, and left in place
                    # for `repro validate --layer store` to report.
                    self.corrupt_manifests += 1
                    continue
                self._install_locked(path.name, manifest)

    def _install(self, name: str, manifest: Manifest) -> None:
        with self._lock:
            self._load()
            self._install_locked(name, manifest)

    def _install_locked(self, name: str, manifest: Manifest) -> None:
        previous = self._manifests.get(name)
        if previous is not None:
            # Re-install (a writer extended this manifest): drop the
            # stale rows so the fresh ones claim the keys.
            self._index = {
                key: claim
                for key, claim in self._index.items()
                if claim[0] is not previous
            }
        self._manifests[name] = manifest
        for key, row in manifest.key_index().items():
            self._index.setdefault(key, (manifest, row))

    def refresh(self) -> None:
        """Drop the index and re-scan ``manifests/`` on next access."""
        with self._lock:
            self._loaded = False
            self._manifests.clear()
            self._index.clear()
            self._spans.clear()
            self._joins.clear()
            self._segment_views.clear()
            self.corrupt_manifests = 0

    # -- reads -----------------------------------------------------------

    def __len__(self) -> int:
        self._load()
        with self._lock:
            return len(self._index)

    def __contains__(self, key: str) -> bool:
        self._load()
        with self._lock:
            return key in self._index

    def keys(self) -> List[str]:
        """Every stored cell key (shadowed duplicates excluded)."""
        self._load()
        with self._lock:
            return list(self._index)

    def manifests(self) -> List[Manifest]:
        """All loaded manifests, one per (fingerprint, job) file."""
        self._load()
        with self._lock:
            return list(self._manifests.values())

    def _claim(self, key: str) -> Tuple[Manifest, int]:
        self._load()
        with self._lock:
            claim = self._index.get(key)
        if claim is None:
            raise KeyError(f"key {key} not in store")
        return claim

    def _vector(self, entry: ManifestEntry) -> np.ndarray:
        end = entry.offset + entry.length
        view = self._segment_views.get(entry.segment)
        if view is None or end > view.size:
            view = open_segment(self.segment_dir / entry.segment)
            self._segment_views[entry.segment] = view
        if end > view.size:
            raise ValueError(
                f"span [{entry.offset}:{end}] exceeds segment "
                f"{entry.segment} ({view.size} values)"
            )
        return view[entry.offset:end]

    def _document(self, manifest: Manifest, entry: ManifestEntry) -> Any:
        join = self._joins.get(entry.skeleton)
        if join is None:
            join = compile_skeleton(manifest.skeletons[entry.skeleton])
            self._joins[entry.skeleton] = join
        return join(self._vector(entry))

    def get(self, key: str) -> Any:
        """The stored document, reassembled bit-exactly.

        Large float arrays come back as read-only views of the mmapped
        segment -- no copy, no parse.
        """
        manifest, row = self._claim(key)
        return self._document(manifest, manifest.entry(row))

    def entry_for(self, key: str) -> ManifestEntry:
        """The manifest row of ``key`` (columns only, no segment read)."""
        manifest, row = self._claim(key)
        return manifest.entry(row)

    def get_result(self, key: str):
        """The stored result as a live object.

        Event-sim documents rebuild as
        :class:`~repro.hw.cxl.eventdevice.EventSimResult`; analytic
        documents rebuild as :class:`~repro.cpu.pipeline.RunResult`
        through the manifest's embedded workload/platform blobs.
        Raises ``KeyError`` when the key is absent or an analytic
        entry's blob is missing.
        """
        manifest, row = self._claim(key)
        entry = manifest.entry(row)
        doc = self._document(manifest, entry)
        if entry.kind == KIND_EVENTSIM:
            from repro.hw.cxl.eventdevice import EventSimResult

            return EventSimResult.from_dict(doc)
        from repro.runtime.serialize import (
            platform_from_dict,
            run_result_from_dict,
            workload_from_dict,
        )

        return run_result_from_dict(
            doc,
            workload=self._blob(
                manifest, entry.workload_ref, workload_from_dict
            ),
            platform=self._blob(
                manifest, entry.platform_ref, platform_from_dict
            ),
        )

    def _blob(self, manifest: Manifest, ref: str, from_dict):
        with self._lock:
            obj = self._blob_objects.get(ref)
        if obj is None:
            data = manifest.blobs.get(ref)
            if data is None:
                raise KeyError(f"manifest references missing blob {ref}")
            obj = from_dict(data)
            with self._lock:
                self._blob_objects[ref] = obj
        return obj

    def _latencies(
        self, manifest: Manifest, entry: ManifestEntry
    ) -> np.ndarray:
        """Zero-copy latency array of one event-sim entry.

        Fast path: the packed-array span inside the vector, computed
        once per skeleton.  Short arrays (below the codec's packing
        threshold) fall back to document reassembly.
        """
        if entry.kind != KIND_EVENTSIM:
            raise KeyError(f"entry {entry.key} has no latency array")
        skeleton = manifest.skeletons[entry.skeleton]
        memo_key = (entry.skeleton, "latencies_ns")
        with self._lock:
            span = self._spans.get(memo_key, False)
        if span is False:
            try:
                span = array_span(skeleton, "latencies_ns")
            except KeyError:
                span = None
            with self._lock:
                self._spans[memo_key] = span
        if span is None:
            doc = self._document(manifest, entry)
            return np.asarray(doc["latencies_ns"], dtype=np.float64)
        offset, length = span
        vector = self._vector(entry)
        return vector[offset:offset + length]

    # -- scans -----------------------------------------------------------

    def scan(
        self,
        kind: Optional[str] = None,
        device: Optional[str] = None,
        workload: Optional[str] = None,
        target: Optional[str] = None,
        fault_plan: Optional[str] = None,
        min_gbps: Optional[float] = None,
        max_gbps: Optional[float] = None,
        fingerprint: Optional[str] = None,
    ) -> List[ScanHit]:
        """Vectorized predicate scan over every manifest's columns.

        String filters are exact matches (``fault_plan=""`` selects
        fault-free entries) except ``fingerprint``, which matches any
        campaign fingerprint it prefixes; ``min/max_gbps`` bound the
        offered load of event-sim entries (analytic entries carry NaN
        and never match a load bound).  Rows shadowed by another
        manifest's claim of the same key are skipped, so overlapping
        shard manifests never double-report a cell.
        """
        self._load()
        hits: List[ScanHit] = []
        with self._lock:
            manifests = list(self._manifests.values())
            index = self._index
        for manifest in manifests:
            if fingerprint is not None \
                    and not manifest.fingerprint.startswith(fingerprint):
                continue
            count = len(manifest)
            if count == 0:
                continue
            mask = np.ones(count, dtype=bool)
            for column, value in (
                ("kind", kind),
                ("device", device),
                ("workload", workload),
                ("target", target),
                ("fault_plan", fault_plan),
            ):
                if value is not None:
                    mask &= manifest.match_mask(column, value)
                    if not mask.any():
                        break
            else:
                gbps = manifest.column("offered_gbps")
                if min_gbps is not None:
                    mask &= gbps >= min_gbps
                if max_gbps is not None:
                    mask &= gbps <= max_gbps
            if not mask.any():
                continue
            for row in np.nonzero(mask)[0]:
                row = int(row)
                key = manifest.key_at(row)
                claim = index.get(key)
                if claim is not None and (
                    claim[0] is not manifest or claim[1] != row
                ):
                    continue  # shadowed duplicate
                hits.append(
                    ScanHit(self, manifest, row, manifest.entry(row))
                )
        return hits

    # -- writes ----------------------------------------------------------

    def writer(self, fingerprint: str, job_id: str = "") -> StoreWriter:
        """A :class:`StoreWriter` appending under ``(fingerprint, job)``."""
        self._load()
        return StoreWriter(self, fingerprint, job_id)

    # -- maintenance -----------------------------------------------------

    def compact(self, fingerprint: str) -> int:
        """Merge every shard manifest of ``fingerprint`` into one.

        Folds ``<fp>.<job>.json`` slices (plus any existing merged
        ``<fp>.json``) into a single ``<fp>.json``, then removes the
        slices.  Segment files are left untouched -- the merged
        manifest points at the same spans, so a merge is manifest-sized
        work no matter how many gigabytes the shards simulated.
        Duplicate cell keys must be bit-identical (same skeleton, same
        span bytes) or :class:`StoreConflict` is raised and nothing is
        written.  Returns the merged entry count.
        """
        if not self.manifest_dir.is_dir():
            return 0
        merged_path = self.manifest_dir / f"{fingerprint}.json"
        shard_paths = sorted(
            self.manifest_dir.glob(f"{fingerprint}.*.json")
        )
        paths = ([merged_path] if merged_path.exists() else []) \
            + shard_paths
        if not paths:
            return 0
        merged = Manifest(fingerprint, "")
        claimed: Dict[str, ManifestEntry] = {}
        for path in paths:
            part = Manifest.load(path)
            for entry in part.entries():
                incumbent = claimed.get(entry.key)
                if incumbent is not None:
                    self._verify_identical(incumbent, entry)
                    continue
                claimed[entry.key] = entry
                merged.skeletons.setdefault(
                    entry.skeleton, part.skeletons[entry.skeleton]
                )
                for ref in (entry.workload_ref, entry.platform_ref):
                    if ref and ref in part.blobs:
                        merged.blobs.setdefault(ref, part.blobs[ref])
                merged.add(entry)
        merged.write(self.manifest_dir)
        for path in shard_paths:
            try:
                path.unlink()
            except OSError:
                pass
        self.refresh()
        return len(merged)

    def _verify_identical(
        self, left: ManifestEntry, right: ManifestEntry
    ) -> None:
        if left.skeleton != right.skeleton:
            raise StoreConflict(
                f"cell {left.key} stored with two different skeletons "
                f"({left.skeleton} vs {right.skeleton})"
            )
        a = self._vector(left)
        b = self._vector(right)
        if a.tobytes() != b.tobytes():
            raise StoreConflict(
                f"cell {left.key} stored with two different payloads "
                f"({left.segment}@{left.offset} vs "
                f"{right.segment}@{right.offset})"
            )

    def query_rows(
        self,
        kind: Optional[str] = None,
        device: Optional[str] = None,
        workload: Optional[str] = None,
        target: Optional[str] = None,
        fault_plan: Optional[str] = None,
        min_gbps: Optional[float] = None,
        max_gbps: Optional[float] = None,
        fingerprint: Optional[str] = None,
        percentiles: Tuple[float, ...] = (),
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Scan, shape, and sort: the query surface's row documents.

        One row dict per matching entry, deterministically ordered
        (kind, device, workload, target, offered load, key) so the CLI
        table, the JSON export, and the serve route all paginate
        identically.  ``mean_ns``/``p<P>_ns`` fields are added only for
        event-sim rows with a stored latency array -- those are the only
        rows whose segments get touched.  NaN column values (e.g.
        ``offered_gbps`` of analytic rows) stay NaN; JSON renderers map
        them to null.
        """
        rows = []
        for hit in self.scan(
            kind=kind, device=device, workload=workload, target=target,
            fault_plan=fault_plan, min_gbps=min_gbps, max_gbps=max_gbps,
            fingerprint=fingerprint,
        ):
            entry = hit.entry
            row: Dict[str, Any] = {
                "key": entry.key,
                "kind": entry.kind,
                "device": entry.device,
                "workload": entry.workload,
                "target": entry.target,
                "fault_plan": entry.fault_plan,
                "offered_gbps": entry.offered_gbps,
                "read_fraction": entry.read_fraction,
                "n": entry.n,
            }
            if entry.kind == KIND_EVENTSIM and entry.n > 0:
                row["mean_ns"] = float(hit.latencies().mean())
                for p in percentiles:
                    row[f"p{p:g}_ns"] = hit.percentile(p)
            rows.append(row)
        rows.sort(key=lambda r: (
            r["kind"], r["device"], r["workload"], r["target"],
            -1.0 if math.isnan(r["offered_gbps"]) else r["offered_gbps"],
            r["key"],
        ))
        if limit is not None:
            rows = rows[:limit]
        return rows

    def stats(self) -> Dict[str, Any]:
        """JSON-safe store summary (manifests, entries, segment bytes)."""
        self._load()
        with self._lock:
            manifests = list(self._manifests.values())
            entries = len(self._index)
            corrupt = self.corrupt_manifests
        segment_files = 0
        segment_bytes = 0
        if self.segment_dir.is_dir():
            for path in self.segment_dir.iterdir():
                if path.suffix == ".f64":
                    segment_files += 1
                    try:
                        segment_bytes += path.stat().st_size
                    except OSError:
                        pass
        return {
            "root": str(self.root),
            "manifests": len(manifests),
            "fingerprints": len(
                {m.fingerprint for m in manifests}
            ),
            "entries": entries,
            "rows": sum(len(m) for m in manifests),
            "corrupt_manifests": corrupt,
            "segment_files": segment_files,
            "segment_bytes": segment_bytes,
        }

