"""repro.store: the append-only columnar result tier.

The run cache's JSON tier (:mod:`repro.runtime.cache`) is a write-ahead
store: one document per cell, parsed in full on every warm read.  That is
fine at hundreds of cells and hopeless at a million -- re-parsing a
million JSON documents to answer "all p99.9s for CXL-B" is the hot path
ROADMAP item 1 calls out.  This package is the analytical tier the cache
*promotes* finished results into:

* **segments** (:mod:`repro.store.segments`) -- append-only packed
  ``float64`` files holding every numeric payload (event-sim latency
  arrays, analytic counter vectors), read back as zero-copy ``mmap``
  views;
* **manifests** (:mod:`repro.store.manifest`) -- one compact columnar
  JSON document per (campaign fingerprint, job id) mapping cell keys to
  segment spans plus the queryable columns (device, operating point,
  fault-plan key, workload, target);
* the **codec** (:mod:`repro.store.codec`) -- a lossless split of any
  result document into (structural skeleton, number vector), so the
  store round-trips :class:`~repro.hw.cxl.eventdevice.EventSimResult`
  and analytic run documents bit-exactly while keeping every float in
  binary;
* :class:`~repro.store.store.ResultStore` -- the read/scan/merge facade:
  O(1) keyed reads through mmapped segments, vectorized predicate scans
  over the manifest columns, and shard-manifest merging with
  bit-identity overlap verification.

Bit-identity is the contract: a result read back from the store is
indistinguishable from the JSON-tier copy (the ``store`` diag layer and
``benchmarks/test_perf_store.py`` both enforce this before any speed
number counts).
"""

from repro.store.codec import (
    canonical_document,
    join_document,
    skeleton_ref,
    split_document,
)
from repro.store.manifest import Manifest, ManifestEntry
from repro.store.segments import SegmentWriter, open_segment
from repro.store.store import ResultStore, StoreConflict, StoreWriter

__all__ = [
    "Manifest",
    "ManifestEntry",
    "ResultStore",
    "SegmentWriter",
    "StoreConflict",
    "StoreWriter",
    "canonical_document",
    "join_document",
    "open_segment",
    "skeleton_ref",
    "split_document",
]
