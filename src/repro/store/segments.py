"""Append-only packed float64 segment files.

A segment is nothing but raw little-endian ``float64`` values appended
end to end -- no header, no framing.  All structure lives in the
manifest, which records ``(segment name, offset, length)`` spans.  That
makes the read path a single ``np.memmap`` slice: zero parse, zero copy,
and the OS page cache is the only cache we need.

Writers never share a segment file: each :class:`SegmentWriter` derives
its file names from a caller-supplied ``writer_id`` (campaign
fingerprint + shard job id), so N shard processes can append
concurrently into one ``segments/`` directory without coordination.
Files roll at :data:`SEGMENT_ROLL_BYTES` so a million-cell campaign does
not produce one unwieldy multi-gigabyte file.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

FLOAT_BYTES = 8
SEGMENT_DTYPE = "<f8"
SEGMENT_SUFFIX = ".f64"
SEGMENT_ROLL_BYTES = 64 * 1024 * 1024

_WRITER_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,96}$")


class SegmentWriter:
    """Appends float64 vectors to ``<dir>/<writer_id>-<seq>.f64`` files.

    ``append`` returns the ``(segment_name, offset, length)`` span the
    manifest must record; offsets are in float64 elements, not bytes.
    The writer keeps one file handle open and rolls to ``<seq>+1`` when
    the current file would exceed ``roll_bytes``.  Not thread-safe by
    itself -- the owning :class:`~repro.store.store.StoreWriter`
    serializes access.
    """

    def __init__(
        self,
        directory: Path,
        writer_id: str,
        roll_bytes: int = SEGMENT_ROLL_BYTES,
    ) -> None:
        if not _WRITER_ID_RE.match(writer_id):
            raise ValueError(f"invalid segment writer id {writer_id!r}")
        self.directory = Path(directory)
        self.writer_id = writer_id
        self.roll_bytes = int(roll_bytes)
        self._seq = 0
        self._handle = None
        self._offset = 0  # elements already in the current file
        # Resume past files from an interrupted shard instead of
        # clobbering them: spans in an already-written manifest must
        # keep pointing at the bytes they named.
        prefix = f"{writer_id}-"
        existing = [
            int(path.stem[len(prefix):])
            for path in self.directory.glob(f"{prefix}*{SEGMENT_SUFFIX}")
            if path.stem[len(prefix):].isdigit()
        ]
        if existing:
            self._seq = max(existing) + 1

    @property
    def current_segment(self) -> str:
        return f"{self.writer_id}-{self._seq}{SEGMENT_SUFFIX}"

    def append(self, vector: np.ndarray) -> Tuple[str, int, int]:
        """Append ``vector`` and return its ``(segment, offset, length)``."""
        data = np.ascontiguousarray(vector, dtype=SEGMENT_DTYPE)
        if data.ndim != 1:
            raise ValueError("segment vectors must be one-dimensional")
        if self._handle is None:
            self._open()
        elif (
            self._offset > 0
            and (self._offset + data.size) * FLOAT_BYTES > self.roll_bytes
        ):
            self._roll()
        span = (self.current_segment, self._offset, int(data.size))
        self._handle.write(data.tobytes())
        self._offset += int(data.size)
        return span

    def flush(self) -> None:
        """Flush buffered bytes to the current segment file."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Close the current segment file handle (reopened on append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _open(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / self.current_segment
        self._handle = open(path, "ab")
        self._offset = path.stat().st_size // FLOAT_BYTES

    def _roll(self) -> None:
        self.close()
        self._seq += 1
        self._open()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_MMAP_LOCK = threading.Lock()
_MMAP_CACHE: Dict[Tuple[str, int], Optional[np.ndarray]] = {}


def open_segment(path: Path) -> np.ndarray:
    """Read-only float64 view of a whole segment file, memoized.

    Memoized per ``(path, size)`` so a segment a concurrent shard is
    still appending to is remapped when it grows, while repeated reads
    of a settled segment share one mapping.  Empty files map to an empty
    array (``np.memmap`` refuses zero-length maps).
    """
    path = Path(path)
    size = path.stat().st_size
    key = (str(path), size)
    with _MMAP_LOCK:
        view = _MMAP_CACHE.get(key)
        if view is None:
            if size == 0:
                view = np.empty(0, dtype=SEGMENT_DTYPE)
            else:
                # Re-expose the mapping as a base-class ndarray (the
                # memmap stays alive as ``.base``): slicing ndarray is
                # several times cheaper than slicing np.memmap, and the
                # read path slices on every document.
                view = np.memmap(
                    path, dtype=SEGMENT_DTYPE, mode="r"
                ).view(np.ndarray)
            _MMAP_CACHE[key] = view
    return view


def read_span(path: Path, offset: int, length: int) -> np.ndarray:
    """Zero-copy slice of one span out of a segment file."""
    view = open_segment(path)
    end = offset + length
    if end > view.size:
        raise ValueError(
            f"span [{offset}:{end}] exceeds segment {path.name} "
            f"({view.size} values)"
        )
    return view[offset:end]
