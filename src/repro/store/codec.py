"""Lossless split of a result document into (skeleton, number vector).

The columnar tier stores every number of a result document -- scalars and
arrays alike -- as packed binary ``float64``, and everything else (keys,
strings, booleans, nulls, structure) as a *skeleton*: the same document
with each numeric leaf replaced by a positional marker.  Reassembly walks
the skeleton and consumes the vector in order.  Because thousands of
cells of one campaign share a single document shape, their skeletons are
byte-identical and the manifest stores each distinct skeleton exactly
once (content-addressed by :func:`skeleton_ref`); the per-cell storage
cost collapses to the raw numbers.

Bit-exactness argument:

* floats travel as IEEE-754 ``float64`` end to end -- no text round trip
  at all, so equality is trivial;
* ints are stored as ``float64`` only when exactly representable
  (``|v| <= 2**53``); larger ints stay literal in the skeleton;
* bools and ``None`` are structural, never numeric (``bool`` is an
  ``int`` subclass in Python -- the checks below test it first);
* dicts are walked in sorted-key order on both sides, so marker
  positions are canonical regardless of insertion order;
* a long list of floats (an event-sim latency array) collapses to one
  span marker and is reassembled as a zero-copy ``ndarray`` view of the
  mmapped segment -- ``tolist()`` of that view reproduces the original
  floats bit-for-bit.

Markers are strings starting with ``"\\x00"`` (a byte that never occurs
in real document strings -- and genuine strings that *do* start with it
are escaped, so the encoding is total, not best-effort).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Tuple

import numpy as np

_MARK = "\x00"
_EXACT_INT = 2 ** 53
_MIN_PACKED_LIST = 8
"""Float lists shorter than this stay element-wise in the skeleton;
collapsing a 3-float list to a span marker saves nothing and costs a
distinct skeleton per length."""


def split_document(doc: Any) -> Tuple[Any, np.ndarray]:
    """Split ``doc`` into (skeleton, float64 vector).

    ``doc`` must be JSON-representable (dicts with string keys, lists,
    strings, numbers, bools, ``None``); anything else raises
    ``TypeError``.  The inverse is :func:`join_document`.
    """
    numbers: List[float] = []
    skeleton = _strip(doc, numbers)
    return skeleton, np.asarray(numbers, dtype=np.float64)


def _strip(node: Any, out: List[float]) -> Any:
    if node is None or isinstance(node, bool):
        return node
    if isinstance(node, int):
        if -_EXACT_INT <= node <= _EXACT_INT:
            out.append(float(node))
            return _MARK + "i"
        return node  # not exactly representable: keep the literal
    if isinstance(node, float):
        out.append(node)
        return _MARK + "f"
    if isinstance(node, str):
        return _MARK + "s" + node if node.startswith(_MARK) else node
    if isinstance(node, dict):
        return {key: _strip(node[key], out) for key in sorted(node)}
    if isinstance(node, (list, tuple)):
        if len(node) >= _MIN_PACKED_LIST and all(
            type(v) is float for v in node
        ):
            out.extend(node)
            return f"{_MARK}F{len(node)}"
        return [_strip(v, out) for v in node]
    raise TypeError(
        f"document node of type {type(node).__name__} is not storable"
    )


def join_document(skeleton: Any, vector: np.ndarray) -> Any:
    """Reassemble the document :func:`split_document` took apart.

    Scalar markers become native Python ``float``/``int`` (so the result
    re-serializes through ``json`` exactly like the original); span
    markers become ``ndarray`` *views* of ``vector`` -- when the vector
    is an mmapped segment slice, large arrays are never copied.  Raises
    ``ValueError`` when skeleton and vector disagree (a corrupt entry
    must read as damage, not as plausible data).
    """
    position = 0

    def build(node: Any) -> Any:
        nonlocal position
        if isinstance(node, str) and node.startswith(_MARK):
            tag = node[1]
            if tag in ("f", "i") and position >= len(vector):
                raise ValueError("number vector shorter than skeleton")
            if tag == "f":
                value = float(vector[position])
                position += 1
                return value
            if tag == "i":
                value = int(vector[position])
                position += 1
                return value
            if tag == "s":
                return node[2:]
            if tag == "F":
                count = int(node[2:])
                span = vector[position:position + count]
                if len(span) != count:
                    raise ValueError("number vector shorter than skeleton")
                position += count
                return span
            raise ValueError(f"unknown skeleton marker {node[:2]!r}")
        if isinstance(node, dict):
            return {key: build(value) for key, value in node.items()}
        if isinstance(node, list):
            return [build(value) for value in node]
        return node

    doc = build(skeleton)
    if position != len(vector):
        raise ValueError(
            f"number vector has {len(vector)} values, skeleton consumed "
            f"{position}"
        )
    return doc


def compile_skeleton(skeleton: Any):
    """Compile a skeleton into a fast ``vector -> document`` function.

    :func:`join_document` re-walks the skeleton on every read; in a
    campaign store thousands of cells share one skeleton, so the walk is
    pure repeated work.  Compilation does the walk once, recording each
    marker's vector position, and the returned closure reassembles a
    document without inspecting the skeleton again.  All scalar slots
    are gathered with a single fancy-index + ``tolist()`` (one C call
    instead of one mmap ``__getitem__`` per scalar); span markers stay
    zero-copy slices of ``vector``.  The compiled function produces
    documents identical to :func:`join_document` and raises the same
    ``ValueError`` on a length mismatch.
    """
    scalar_slots: List[int] = []
    position = 0

    def compile_node(node: Any):
        nonlocal position
        if isinstance(node, str) and node.startswith(_MARK):
            tag = node[1]
            if tag == "f":
                slot = len(scalar_slots)
                scalar_slots.append(position)
                position += 1
                return lambda vector, scalars, slot=slot: scalars[slot]
            if tag == "i":
                slot = len(scalar_slots)
                scalar_slots.append(position)
                position += 1
                return lambda vector, scalars, slot=slot: int(
                    scalars[slot]
                )
            if tag == "s":
                text = node[2:]
                return lambda vector, scalars, text=text: text
            if tag == "F":
                count = int(node[2:])
                start = position
                position += count
                end = start + count
                return lambda vector, scalars, s=start, e=end: vector[s:e]
            raise ValueError(f"unknown skeleton marker {node[:2]!r}")
        if isinstance(node, dict):
            parts = [
                (key, compile_node(value)) for key, value in node.items()
            ]
            return lambda vector, scalars, parts=parts: {
                key: fn(vector, scalars) for key, fn in parts
            }
        if isinstance(node, list):
            parts = [compile_node(value) for value in node]
            return lambda vector, scalars, parts=parts: [
                fn(vector, scalars) for fn in parts
            ]
        return lambda vector, scalars, node=node: node

    root = compile_node(skeleton)
    expected = position
    index = np.asarray(scalar_slots, dtype=np.intp)

    def join(vector: np.ndarray) -> Any:
        if len(vector) != expected:
            raise ValueError(
                f"number vector has {len(vector)} values, skeleton "
                f"consumed {expected}"
            )
        scalars = (
            np.asarray(vector[index]).tolist() if len(index) else ()
        )
        return root(vector, scalars)

    return join


def skeleton_ref(skeleton: Any) -> str:
    """Content address of one skeleton (sha256 of canonical JSON)."""
    text = json.dumps(skeleton, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


def array_span(skeleton: Any, field: str) -> Tuple[int, int]:
    """(offset, length) of ``field``'s packed array inside the vector.

    Walks the skeleton exactly as :func:`join_document` would, counting
    consumed slots until the top-level key ``field`` carrying a span
    marker is reached.  Lets scans read one array (a latency vector)
    straight out of the segment without reassembling the document.
    Raises ``KeyError`` when the field is not a packed array.
    """
    position = 0

    def plain(node: Any, target: bool):
        nonlocal position
        if isinstance(node, str) and node.startswith(_MARK):
            tag = node[1]
            if tag in ("f", "i"):
                position += 1
            elif tag == "F":
                count = int(node[2:])
                if target:
                    return (position, count)
                position += count
            return None
        if isinstance(node, dict):
            for key, value in node.items():
                found = plain(value, key == field)
                if found is not None:
                    return found
            return None
        if isinstance(node, list):
            for value in node:
                found = plain(value, False)
                if found is not None:
                    return found
            return None
        return None

    found = plain(skeleton, False)
    if found is None:
        raise KeyError(f"no packed array field {field!r} in skeleton")
    return found


def canonical_document(doc: Any) -> str:
    """Canonical JSON text of a document for identity comparison.

    ``ndarray`` leaves (zero-copy reads) are rendered through
    ``tolist()`` so a store read and a JSON-tier read of the same result
    canonicalize to byte-identical text.
    """
    def native(node: Any) -> Any:
        if isinstance(node, np.ndarray):
            return node.tolist()
        if isinstance(node, np.floating):
            return float(node)
        if isinstance(node, np.integer):
            return int(node)
        if isinstance(node, dict):
            return {key: native(value) for key, value in node.items()}
        if isinstance(node, (list, tuple)):
            return [native(value) for value in node]
        return node

    return json.dumps(native(doc), sort_keys=True)
