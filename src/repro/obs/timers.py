"""Phase timers: wall-clock instrumentation for coarse execution stages.

:func:`phase_timer` wraps a block of work, records its wall time into the
``phase_seconds`` histogram of the active metrics registry (labelled by
phase name plus caller-supplied labels), and -- when tracing is enabled --
emits a wall-clock span so campaign phases appear as a timeline track in
Perfetto next to the simulated-time request spans.

Experiment drivers time their ``run`` and ``render`` stages through this;
Melody times whole campaigns.  With observability disabled the cost is two
``perf_counter`` calls and a no-op histogram lookup.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import DEFAULT_TIME_BUCKETS_S, metrics
from repro.obs.trace import CLOCK_WALL, tracing


@contextmanager
def phase_timer(phase: str, **labels: str) -> Iterator[None]:
    """Time a block as one named phase (histogram + optional wall span)."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        registry = metrics()
        if registry.enabled:
            registry.histogram(
                "phase_seconds",
                buckets=DEFAULT_TIME_BUCKETS_S,
                phase=phase,
                **labels,
            ).observe(elapsed)
        buffer = tracing()
        if buffer is not None:
            buffer.add(
                phase,
                "phase",
                start_ns=start * 1e9,
                dur_ns=elapsed * 1e9,
                clock=CLOCK_WALL,
                **labels,
            )
