"""Flight recorder: the last N wide events, queryable in-process.

Log files answer "what happened yesterday"; the flight recorder answers
"what just happened" without leaving the process: a bounded in-memory
ring of the most recent request wide events (plus each request's span
records), served by ``GET /debug/requests`` and
``GET /debug/requests/<id>``.  Because the ring holds the *same* record
dicts the event logger writes, the two views can never disagree -- and
the recorder keeps working even when the ndjson log is disabled or
sampling dropped the line.

Span trees: each recorded request carries flat span records
``{span_id, parent_id, name, ...}``; :func:`span_tree` nests them by
parent linkage so ``/debug/requests/<id>`` can return the full
parse → queue → coalesce → execute → cell hierarchy in one document.

Bounded by construction (a ``deque(maxlen=N)``), thread-safe (worker
threads record, the event loop reads), and -- like everything in
``repro.obs`` -- strictly read-only with respect to results.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

DEFAULT_CAPACITY = 256
"""How many requests the recorder remembers by default."""


def span_tree(spans: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Nest flat span records into a forest by ``parent_id`` linkage.

    Each input record must carry ``span_id``; ``parent_id`` may be
    missing, ``None``, or name a span outside the list (such orphans
    become roots, so a dropped span cannot hide its subtree).  Children
    keep input order; the records themselves are copied, not mutated.
    """
    by_id: Dict[object, Dict[str, object]] = {}
    ordered: List[Dict[str, object]] = []
    for record in spans:
        node = dict(record)
        node["children"] = []
        by_id[node.get("span_id")] = node
        ordered.append(node)
    roots: List[Dict[str, object]] = []
    for node in ordered:
        parent = by_id.get(node.get("parent_id"))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


class FlightRecorder:
    """A bounded ring of recent requests: wide event + span records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self.recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def record(
        self,
        event: Dict[str, object],
        spans: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        """Remember one request: its wide event and its span records."""
        entry = {"event": event, "spans": list(spans or ())}
        with self._lock:
            self._ring.append(entry)
            self.recorded += 1

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """The newest requests' wide events, newest first."""
        with self._lock:
            entries = list(self._ring)
        entries.reverse()
        if limit is not None:
            entries = entries[:max(limit, 0)]
        return [dict(entry["event"]) for entry in entries]

    def lookup(self, request_id: str) -> Optional[Dict[str, object]]:
        """One request's full record: wide event + nested span tree.

        Newest match wins if an id somehow repeats.  Returns ``None``
        when the request has aged out of the ring (or never existed).
        """
        with self._lock:
            entries = list(self._ring)
        for entry in reversed(entries):
            if entry["event"].get("request_id") == request_id:
                return {
                    "event": dict(entry["event"]),
                    "spans": span_tree(entry["spans"]),
                }
        return None

    def stats(self) -> Dict[str, object]:
        """Occupancy accounting for ``/stats``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "held": len(self._ring),
                "recorded": self.recorded,
            }
