"""Request-level trace spans in Chrome ``trace_event`` JSON.

The event-driven simulator (:mod:`repro.hw.cxl.eventdevice`) and the
campaign runtime annotate what they do as **spans** -- named, categorized
intervals -- collected into a :class:`TraceBuffer` and exported in the
Chrome ``trace_event`` array format, so a campaign's breakdown is directly
viewable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Two clock domains coexist in one file, kept apart as separate trace
*processes*:

* ``CLOCK_SIM`` -- simulated nanoseconds.  Each sampled request is one
  track (thread); its spans tile the request's life exactly, so the span
  durations of a track sum to the request's reported latency.  That sum
  identity is the ``obs`` diag layer's span-accounting invariant.
* ``CLOCK_WALL`` -- wall-clock nanoseconds (``time.perf_counter`` based),
  used by the runtime's batch and phase spans.

Sampling: a buffer created with ``sample_every=N`` records every Nth
request (:meth:`TraceBuffer.sampled`), which bounds trace size on long
simulations.  Sampling decisions *read* the request index only -- they
never touch an RNG -- so tracing cannot perturb simulated results.

Like the metrics registry, tracing is opt-in: :func:`tracing` returns
``None`` until :func:`enable_tracing` installs a process-wide buffer (the
CLI's ``--trace`` flag does this).
"""

from __future__ import annotations

import json
import os
import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

CLOCK_SIM = "sim"
"""Clock domain of simulated nanoseconds (the event simulator)."""

CLOCK_WALL = "wall"
"""Clock domain of wall-clock nanoseconds (the campaign runtime)."""

_CLOCK_PIDS = {CLOCK_SIM: 1, CLOCK_WALL: 2}
_CLOCK_NAMES = {
    CLOCK_SIM: "simulator (simulated ns)",
    CLOCK_WALL: "runtime (wall clock)",
}


@dataclass(frozen=True)
class Span:
    """One named interval in one clock domain."""

    name: str
    cat: str
    start_ns: float
    dur_ns: float
    track: int = 0
    clock: str = CLOCK_SIM
    args: Dict[str, object] = field(default_factory=dict)

    def to_chrome(self) -> Dict[str, object]:
        """The Chrome ``trace_event`` complete-event (``ph: X``) record."""
        event: Dict[str, object] = {
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": self.start_ns / 1e3,  # trace_event timestamps are in us
            "dur": self.dur_ns / 1e3,
            "pid": _CLOCK_PIDS[self.clock],
            "tid": self.track,
        }
        if self.args:
            event["args"] = dict(self.args)
        return event


class TraceBuffer:
    """An append-only span collector with request-index sampling."""

    def __init__(self, sample_every: int = 1):
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1: {sample_every}"
            )
        self.sample_every = sample_every
        self.spans: List[Span] = []

    def __len__(self) -> int:
        return len(self.spans)

    def sampled(self, index: int) -> bool:
        """Whether request ``index`` should be traced (every Nth is)."""
        return index % self.sample_every == 0

    def add(
        self,
        name: str,
        cat: str,
        start_ns: float,
        dur_ns: float,
        track: int = 0,
        clock: str = CLOCK_SIM,
        **args: object,
    ) -> None:
        """Append one span."""
        if clock not in _CLOCK_PIDS:
            raise ConfigurationError(f"unknown trace clock {clock!r}")
        self.spans.append(
            Span(
                name=name,
                cat=cat,
                start_ns=float(start_ns),
                dur_ns=float(dur_ns),
                track=track,
                clock=clock,
                args=dict(args),
            )
        )

    # -- queries (span accounting) ---------------------------------------

    def tracks(self, clock: str = CLOCK_SIM) -> Tuple[int, ...]:
        """All track ids seen in ``clock``, ascending."""
        return tuple(
            sorted({s.track for s in self.spans if s.clock == clock})
        )

    def spans_for_track(
        self, track: int, clock: str = CLOCK_SIM
    ) -> Tuple[Span, ...]:
        """The spans of one track, in emission order."""
        return tuple(
            s for s in self.spans if s.clock == clock and s.track == track
        )

    def span_sum_ns(self, track: int, clock: str = CLOCK_SIM) -> float:
        """Total span duration on one track (the accounting identity LHS)."""
        return sum(
            s.dur_ns for s in self.spans
            if s.clock == clock and s.track == track
        )

    # -- export ----------------------------------------------------------

    def to_chrome(self) -> Dict[str, object]:
        """The Chrome trace document: metadata + one event per span."""
        events: List[Dict[str, object]] = []
        for clock in sorted({s.clock for s in self.spans}):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": _CLOCK_PIDS[clock],
                    "args": {"name": _CLOCK_NAMES[clock]},
                }
            )
        events.extend(span.to_chrome() for span in self.spans)
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def dumps(self) -> str:
        """Serialize the Chrome trace document."""
        return json.dumps(self.to_chrome())

    def write(self, path: str) -> None:
        """Write the Chrome trace document to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.dumps())


_active: Optional[TraceBuffer] = None

_UNSET = object()
"""Distinguishes "no thread override" from an explicit ``None`` override."""

_tls = threading.local()
"""Per-thread trace-buffer override (see :func:`thread_tracing`)."""


def tracing() -> Optional[TraceBuffer]:
    """The active trace buffer, or ``None`` when tracing is off.

    A thread-local override installed by :func:`thread_tracing` wins over
    the process-wide buffer: ``repro serve`` gives each in-flight job its
    own buffer in its worker thread, so concurrent requests never
    interleave spans, while CLI commands keep using the process-wide
    buffer exactly as before.
    """
    override = getattr(_tls, "buffer", _UNSET)
    if override is not _UNSET:
        return override
    return _active


@contextmanager
def thread_tracing(
    buffer: Optional[TraceBuffer],
) -> Iterator[Optional[TraceBuffer]]:
    """Install ``buffer`` as this thread's trace buffer for the block.

    Only the current thread is affected; other threads (and the
    process-wide buffer) are untouched.  Passing ``None`` explicitly
    disables tracing in this thread even when a process-wide buffer is
    installed.
    """
    previous = getattr(_tls, "buffer", _UNSET)
    _tls.buffer = buffer
    try:
        yield buffer
    finally:
        if previous is _UNSET:
            del _tls.buffer
        else:
            _tls.buffer = previous


# -- cross-layer trace propagation ----------------------------------------

_TRACEPARENT = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16


@dataclass(frozen=True)
class TraceContext:
    """One request's position in a distributed trace (W3C-style).

    ``trace_id`` names the whole end-to-end request, ``span_id`` this
    layer's own span, and ``parent_id`` the caller's span (``None`` at
    the root).  Contexts are pure identifiers: generating or parsing one
    never touches a model RNG, so propagation cannot perturb results.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    sampled: bool = True

    @staticmethod
    def _hex(nbytes: int) -> str:
        return os.urandom(nbytes).hex()

    @classmethod
    def generate(cls, sampled: bool = True) -> "TraceContext":
        """A fresh root context (no caller to inherit from)."""
        return cls(
            trace_id=cls._hex(16), span_id=cls._hex(8), sampled=sampled
        )

    @classmethod
    def from_traceparent(cls, header: str) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header into a child context.

        Returns ``None`` for a missing, malformed, all-zero, or
        future-version header -- the caller should then fall back to
        :meth:`generate`.  The returned context keeps the caller's trace
        id, records the caller's span as ``parent_id``, and mints a new
        ``span_id`` for this layer.
        """
        if not header:
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        version, trace_id, parent_span, flags = match.groups()
        if version == "ff" or trace_id == _ZERO_TRACE \
                or parent_span == _ZERO_SPAN:
            return None
        return cls(
            trace_id=trace_id,
            span_id=cls._hex(8),
            parent_id=parent_span,
            sampled=bool(int(flags, 16) & 1),
        )

    def to_traceparent(self) -> str:
        """The ``traceparent`` header value naming this context's span."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"

    def child(self) -> "TraceContext":
        """A new context one level below this one (same trace)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=self._hex(8),
            parent_id=self.span_id,
            sampled=self.sampled,
        )


def enable_tracing(sample_every: int = 1) -> TraceBuffer:
    """Install a fresh process-wide trace buffer and return it."""
    global _active
    _active = TraceBuffer(sample_every=sample_every)
    return _active


def disable_tracing() -> None:
    """Stop collecting spans (the previous buffer is dropped)."""
    global _active
    _active = None


@contextmanager
def use_tracing(buffer: Optional[TraceBuffer]) -> Iterator[Optional[TraceBuffer]]:
    """Temporarily install ``buffer`` (tests and the diag suite)."""
    global _active
    previous = _active
    _active = buffer
    try:
        yield buffer
    finally:
        _active = previous
