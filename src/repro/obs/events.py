"""Wide-event structured logging: one canonical ndjson line per fact.

Instead of scattering ``print()`` lines through the serve path, every
request (and every campaign cell, at debug level) is summarized as one
**wide event** -- a flat JSON object carrying everything there is to say
about it: request id, trace id, tenant, query key, coalesce role,
queue-wait vs. execution split, cache hits, retry counts, status, bytes.
One line per request means one grep per question ("where did request X
spend its time?") instead of a join across interleaved log fragments.

The logger follows the registry idiom of :mod:`repro.obs.metrics`:

* a **zero-overhead null default** -- :func:`events` returns a shared
  :class:`NullEventLogger` until someone opts in via
  :func:`enable_events`, so instrumented code is free when nobody is
  watching;
* **leveled** (``debug`` < ``info`` < ``warn`` < ``error``) with cheap
  early suppression;
* **sampled** -- high-volume emitters mark their calls ``sampled=True``
  and the logger keeps every Nth (``sample_every``), which bounds log
  volume under load without losing the always-on lifecycle events;
* **thread-safe** -- serve worker threads and the event loop share one
  logger; a lock keeps lines whole (ndjson must never tear mid-line).

Determinism: events are assembled *from* results and timings, never fed
back into a model, and no RNG is touched -- served documents are
byte-identical with event logging on or off (enforced by the ``obs``
diag layer).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, TextIO, Union

from repro.errors import ConfigurationError

EVENT_SCHEMA_VERSION = 1
"""Bumped when the wide-event key set changes incompatibly."""

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}
"""Severity names, ascending."""

REQUIRED_KEYS = ("schema", "ts", "event", "level")
"""Keys every emitted event must carry."""

REQUIRED_REQUEST_KEYS = (
    "request_id", "trace_id", "tenant", "method", "path", "status",
    "role", "coalesced", "total_s", "bytes",
)
"""Additional keys a ``request`` wide event must carry."""


def build_event(
    event: str, level: str = "info", clock=time.time, **fields: object
) -> Dict[str, object]:
    """Assemble one canonical event dict (does not write anything).

    Kept separate from the logger so the flight recorder can hold the
    exact record that was (or would have been) logged, even when the log
    itself is disabled or sampled that line away.
    """
    if level not in LEVELS:
        raise ConfigurationError(
            f"unknown event level {level!r}; expected one of {sorted(LEVELS)}"
        )
    record: Dict[str, object] = {
        "schema": EVENT_SCHEMA_VERSION,
        "ts": round(float(clock()), 6),
        "event": event,
        "level": level,
    }
    record.update(fields)
    return record


def render_event(record: Dict[str, object]) -> str:
    """One ndjson line: sorted keys, compact separators, trailing LF."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), default=str
    ) + "\n"


def validate_event(record: object) -> List[str]:
    """Schema-check one decoded event; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"event is not an object: {type(record).__name__}"]
    for key in REQUIRED_KEYS:
        if key not in record:
            problems.append(f"missing required key {key!r}")
    level = record.get("level")
    if level is not None and level not in LEVELS:
        problems.append(f"unknown level {level!r}")
    schema = record.get("schema")
    if schema is not None and schema != EVENT_SCHEMA_VERSION:
        problems.append(
            f"schema version {schema!r} != {EVENT_SCHEMA_VERSION}"
        )
    ts = record.get("ts")
    if ts is not None and not isinstance(ts, (int, float)):
        problems.append(f"ts is not numeric: {ts!r}")
    if record.get("event") == "request":
        for key in REQUIRED_REQUEST_KEYS:
            if key not in record:
                problems.append(f"request event missing key {key!r}")
    return problems


class EventLogger:
    """A leveled, sampled, thread-safe ndjson event writer."""

    enabled = True
    """Lets hot paths skip event assembly when logging is off."""

    def __init__(
        self,
        sink: Optional[TextIO] = None,
        level: str = "info",
        sample_every: int = 1,
        clock=time.time,
    ):
        if level not in LEVELS:
            raise ConfigurationError(
                f"unknown event level {level!r}; "
                f"expected one of {sorted(LEVELS)}"
            )
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1: {sample_every}"
            )
        self._sink = sink if sink is not None else sys.stderr
        self._threshold = LEVELS[level]
        self.level = level
        self.sample_every = sample_every
        self._clock = clock
        self._lock = threading.Lock()
        self._sampled_seq = 0
        self.emitted = 0
        self.suppressed = 0

    def write(
        self, record: Dict[str, object], sampled: bool = False
    ) -> bool:
        """Write one prebuilt event record; returns whether it was kept.

        ``sampled=True`` subjects the record to every-Nth sampling (the
        counter is shared across all sampled emitters, which is what
        bounds total volume).  Level filtering applies either way.
        """
        level = record.get("level", "info")
        if LEVELS.get(str(level), LEVELS["info"]) < self._threshold:
            with self._lock:
                self.suppressed += 1
            return False
        line = render_event(record)
        with self._lock:
            if sampled:
                keep = self._sampled_seq % self.sample_every == 0
                self._sampled_seq += 1
                if not keep:
                    self.suppressed += 1
                    return False
            try:
                self._sink.write(line)
            except (ValueError, OSError):  # sink closed mid-shutdown
                self.suppressed += 1
                return False
            self.emitted += 1
        try:
            self._sink.flush()
        except (ValueError, OSError):  # sink already closed mid-shutdown
            pass
        return True

    def emit(
        self,
        event: str,
        level: str = "info",
        sampled: bool = False,
        **fields: object,
    ) -> Optional[Dict[str, object]]:
        """Build and write one event; returns the record if it was kept."""
        if LEVELS[level] < self._threshold:
            with self._lock:
                self.suppressed += 1
            return None
        record = build_event(event, level=level, clock=self._clock, **fields)
        return record if self.write(record, sampled=sampled) else None

    def stats(self) -> Dict[str, object]:
        """Emission accounting for ``/stats``."""
        with self._lock:
            return {
                "emitted": self.emitted,
                "suppressed": self.suppressed,
                "level": self.level,
                "sample_every": self.sample_every,
            }


class NullEventLogger:
    """The zero-overhead disabled logger: every emit is a no-op."""

    enabled = False
    level = "info"
    sample_every = 1
    emitted = 0
    suppressed = 0

    def write(self, record: Dict[str, object], sampled: bool = False) -> bool:
        """Discard the record."""
        return False

    def emit(
        self,
        event: str,
        level: str = "info",
        sampled: bool = False,
        **fields: object,
    ) -> None:
        """Discard the event."""
        return None

    def stats(self) -> Dict[str, object]:
        """An empty accounting snapshot (keeps the schema stable)."""
        return {
            "emitted": 0, "suppressed": 0, "level": self.level,
            "sample_every": 1,
        }


_NULL_LOGGER = NullEventLogger()
_active: Union[EventLogger, NullEventLogger] = _NULL_LOGGER


def events() -> Union[EventLogger, NullEventLogger]:
    """The active event logger (the no-op one unless somebody enabled it)."""
    return _active


def enable_events(
    logger: Optional[EventLogger] = None, **kwargs
) -> EventLogger:
    """Install a live logger (a fresh stderr one by default); returns it."""
    global _active
    _active = logger if logger is not None else EventLogger(**kwargs)
    return _active


def disable_events() -> None:
    """Restore the zero-overhead no-op logger."""
    global _active
    _active = _NULL_LOGGER


@contextmanager
def use_events(
    logger: Union[EventLogger, NullEventLogger],
) -> Iterator[Union[EventLogger, NullEventLogger]]:
    """Temporarily install ``logger`` (tests and the diag suite)."""
    global _active
    previous = _active
    _active = logger
    try:
        yield logger
    finally:
        _active = previous
