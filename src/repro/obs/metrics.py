"""The process-wide metrics registry: counters, gauges, histograms.

Observability of a measurement system must never distort the measurement.
The registry therefore has a **zero-overhead no-op default**: until a
caller opts in via :func:`enable_metrics` (the CLI's ``--metrics`` flag
does this), :func:`metrics` returns a shared :class:`NullRegistry` whose
instrument lookups return module-level null singletons -- no allocation,
no dict writes, no arithmetic on the hot path.  Instrumented code is
written once and is free when nobody is watching::

    metrics().counter("sim.requests", device=name).inc(n)

When a real :class:`MetricsRegistry` is installed, instruments are
memoized by ``(kind, name, labels)`` and the whole registry exports as a
JSON document (``to_json``, consumed by ``repro stats``) or as Prometheus
text exposition format (``to_prometheus``).

Thread safety: the registry is process-wide and -- since ``repro serve``
-- mutated from server worker threads while the event loop exports it.
One shared :func:`threading.RLock` guards every instrument update,
instrument creation, and export, so ``+=`` on shared floats can never
tear or lose increments and an export always sees a consistent snapshot
(a histogram's ``counts`` always sum to its ``count``).  The lock is
re-initialized in forked children (``os.register_at_fork``) so a process
pool forked while another thread holds it cannot deadlock.

Determinism guarantee: instruments only *read* the quantities they are
handed -- none of them touches an RNG or feeds back into a model -- so
enabling metrics can never perturb simulated results (enforced by the
``obs`` layer of :mod:`repro.diag`).
"""

from __future__ import annotations

import json
import os
import re
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

LabelItems = Tuple[Tuple[str, str], ...]

_LOCK = threading.RLock()
"""One lock for all instrument updates, creation, and exports.

A single shared lock (rather than one per instrument) keeps exports
trivially consistent -- nothing can move while a snapshot renders -- and
instrument updates are far too coarse (per batch, per simulated run) for
the contention to matter.
"""


def _reset_lock_after_fork() -> None:
    """Replace the lock in forked children.

    ``fork`` clones only the calling thread; a lock held by any *other*
    thread at fork time would stay locked forever in the child.  Campaign
    pool workers and isolated cell subprocesses all fork, and under
    ``repro serve`` other threads are live when they do.
    """
    global _LOCK
    _LOCK = threading.RLock()


os.register_at_fork(after_in_child=_reset_lock_after_fork)

DEFAULT_TIME_BUCKETS_S = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0,
)
"""Wall-clock histogram buckets (seconds): sub-ms batches to 5-min campaigns."""

DEFAULT_LATENCY_BUCKETS_NS = (
    100.0, 150.0, 200.0, 250.0, 300.0, 400.0, 500.0, 750.0, 1000.0,
    1500.0, 2000.0, 3000.0, 5000.0, 10000.0,
)
"""Simulated-latency histogram buckets (ns): idle DRAM to deep CXL tails."""

DEFAULT_QUEUE_WAIT_BUCKETS_S = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
)
"""Server admission queue-wait buckets (seconds): immediate grants to
requests parked behind a saturated worker pool (``repro serve``)."""


def _label_items(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_name(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (requests served, cells run)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(f"counter increment must be >= 0: {amount}")
        with _LOCK:
            self.value += amount


class Gauge:
    """A point-in-time value (cache hit rate, worker utilization)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with _LOCK:
            self.value = float(value)


class Histogram:
    """A fixed-bucket histogram (batch wall times, request latencies).

    ``bounds`` are inclusive upper bucket bounds; one implicit ``+Inf``
    bucket catches everything above the last bound, so ``counts`` has
    ``len(bounds) + 1`` entries and always sums to ``count``.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram bounds must be strictly increasing: {bounds}"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        else:
            index = len(self.counts) - 1
        with _LOCK:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def observe_many(self, values) -> None:
        """Record a vector of observations (one vectorized pass)."""
        import numpy as np

        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        idx = np.searchsorted(np.asarray(self.bounds), arr, side="left")
        with _LOCK:
            for i, n in zip(*np.unique(idx, return_counts=True)):
                self.counts[int(i)] += int(n)
            self.sum += float(arr.sum())
            self.count += int(arr.size)

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (a consistent snapshot)."""
        with _LOCK:
            return {
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
            }


class _NullCounter:
    """Shared no-op counter handed out by the disabled registry."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""


class _NullGauge:
    """Shared no-op gauge handed out by the disabled registry."""

    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the value."""


class _NullHistogram:
    """Shared no-op histogram handed out by the disabled registry."""

    __slots__ = ()
    bounds: Tuple[float, ...] = ()
    counts: Tuple[int, ...] = ()
    sum = 0.0
    count = 0
    mean = 0.0

    def observe(self, value: float) -> None:
        """Discard the observation."""

    def observe_many(self, values) -> None:
        """Discard the observations."""


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()

Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A live registry memoizing instruments by ``(kind, name, labels)``."""

    enabled = True
    """Lets hot paths skip label-dict construction when metrics are off."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, str, LabelItems], Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, kind: str, name: str, labels: Dict[str, str], build):
        key = (kind, name, _label_items(labels))
        # First lookup outside the lock: dict reads are atomic, and the
        # common case (instrument already exists) must stay cheap.
        instrument = self._instruments.get(key)
        if instrument is None:
            with _LOCK:
                instrument = self._instruments.get(key)
                if instrument is None:
                    for other_kind, other_name, _ in self._instruments:
                        if other_name == name and other_kind != kind:
                            raise ConfigurationError(
                                f"metric {name!r} already registered "
                                f"as a {other_kind}"
                            )
                    instrument = build()
                    self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter ``name`` with these labels (created on first use)."""
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge ``name`` with these labels (created on first use)."""
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        """The histogram ``name`` with these labels (created on first use)."""
        bounds = buckets if buckets is not None else DEFAULT_TIME_BUCKETS_S
        return self._get("histogram", name, labels, lambda: Histogram(bounds))

    # -- export ----------------------------------------------------------

    def _by_kind(self, kind: str) -> List[Tuple[str, LabelItems, Instrument]]:
        with _LOCK:
            return sorted(
                (name, labels, inst)
                for (k, name, labels), inst in self._instruments.items()
                if k == kind
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot: the schema ``repro stats`` consumes."""
        with _LOCK:
            return {
                "counters": {
                    _render_name(n, l): inst.value
                    for n, l, inst in self._by_kind("counter")
                },
                "gauges": {
                    _render_name(n, l): inst.value
                    for n, l, inst in self._by_kind("gauge")
                },
                "histograms": {
                    _render_name(n, l): inst.to_dict()
                    for n, l, inst in self._by_kind("histogram")
                },
            }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the snapshot (sorted keys, so diffs are stable)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (metric names get ``repro_``).

        ``# TYPE`` is declared once per metric family, before its first
        sample, as the exposition format requires.  The whole render runs
        under the shared lock, so a scrape that races concurrent updates
        still sees every histogram's buckets sum to its count.
        """
        with _LOCK:
            return self._render_prometheus()

    def _render_prometheus(self) -> str:
        lines: List[str] = []
        typed = set()

        def declare(prom: str, kind: str) -> None:
            if prom not in typed:
                typed.add(prom)
                lines.append(f"# TYPE {prom} {kind}")

        for name, labels, inst in self._by_kind("counter"):
            prom = _prom_name(name)
            declare(prom, "counter")
            lines.append(f"{_prom_sample(prom, labels)} {_prom_num(inst.value)}")
        for name, labels, inst in self._by_kind("gauge"):
            prom = _prom_name(name)
            declare(prom, "gauge")
            lines.append(f"{_prom_sample(prom, labels)} {_prom_num(inst.value)}")
        for name, labels, inst in self._by_kind("histogram"):
            prom = _prom_name(name)
            declare(prom, "histogram")
            cumulative = 0
            for bound, count in zip(inst.bounds, inst.counts):
                cumulative += count
                lines.append(
                    f"{_prom_sample(prom + '_bucket', labels, le=_prom_num(bound))}"
                    f" {cumulative}"
                )
            lines.append(
                f"{_prom_sample(prom + '_bucket', labels, le='+Inf')}"
                f" {inst.count}"
            )
            lines.append(f"{_prom_sample(prom + '_sum', labels)} {_prom_num(inst.sum)}")
            lines.append(f"{_prom_sample(prom + '_count', labels)} {inst.count}")
        return "\n".join(lines) + "\n"


class NullRegistry:
    """The zero-overhead disabled registry: every instrument is a no-op."""

    enabled = False
    """Lets hot paths skip label-dict construction when metrics are off."""

    def __len__(self) -> int:
        return 0

    def counter(self, name: str, **labels: str) -> _NullCounter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> _NullGauge:
        """The shared no-op gauge."""
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> _NullHistogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM

    def to_dict(self) -> Dict[str, object]:
        """An empty snapshot (keeps the export schema stable)."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent: int = 2) -> str:
        """Serialize the (empty) snapshot."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """An empty exposition document."""
        return "\n"


_NULL_REGISTRY = NullRegistry()
_active: Union[MetricsRegistry, NullRegistry] = _NULL_REGISTRY


def metrics() -> Union[MetricsRegistry, NullRegistry]:
    """The active registry (the no-op one unless somebody enabled metrics)."""
    return _active


def enable_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Install a live registry (a fresh one by default) and return it."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable_metrics() -> None:
    """Restore the zero-overhead no-op registry."""
    global _active
    _active = _NULL_REGISTRY


@contextmanager
def use_registry(
    registry: Union[MetricsRegistry, NullRegistry],
) -> Iterator[Union[MetricsRegistry, NullRegistry]]:
    """Temporarily install ``registry`` (tests and the diag suite)."""
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous


# -- Prometheus rendering helpers ----------------------------------------

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_BAD.sub("_", name)
    return sanitized if sanitized.startswith("repro_") else f"repro_{sanitized}"


def _prom_sample(name: str, labels: LabelItems, **extra: str) -> str:
    pairs = list(labels) + sorted(extra.items())
    if not pairs:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return f"{name}{{{inner}}}"


def _prom_num(value: float) -> str:
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))
