"""Rolling-window SLO tracking: latency quantiles and error budgets.

``repro serve`` promises latency and availability targets per endpoint;
this module measures how the service is doing against them over a
**rolling window** rather than since process start, so a burst of slow
requests an hour ago does not mask a regression happening now.

Mechanics: the window is a ring of time slices, each one an ordinary
:class:`~repro.obs.metrics.Histogram` plus ok/error counters.  An
observation lands in the slice covering "now"; a snapshot merges the
slices still inside the window and interpolates p50/p95/p99 from the
merged bucket counts (linear within a bucket, which is the standard
Prometheus ``histogram_quantile`` estimate).  Expired slices are lazily
reset on rotation -- there is no background thread.

The **error budget** follows SRE convention: with a target availability
of ``target`` (say 0.999), the window's budget is the fraction of
allowed errors actually unspent::

    budget_remaining = 1 - error_rate / (1 - target)

clamped to [-inf, 1]; a negative number means the budget is blown.

Thread safety matches the metrics registry: serve worker threads observe
while the event loop snapshots, so one lock guards slice rotation,
observation, and snapshot assembly.

Like every ``repro.obs`` facility, the tracker only *reads* the
latencies and statuses it is handed -- it cannot perturb results.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import DEFAULT_TIME_BUCKETS_S, Histogram

DEFAULT_QUANTILES = (0.5, 0.95, 0.99)
"""The quantiles every snapshot reports (p50/p95/p99)."""


def quantile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Estimate quantile ``q`` from cumulative-style histogram buckets.

    ``counts`` has one entry per bound plus the +Inf overflow bucket
    (the :class:`Histogram` layout).  Interpolation is linear within the
    winning bucket; the overflow bucket reports its lower bound (there
    is nothing to interpolate toward).  Returns 0.0 for an empty window.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1]: {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and count > 0:
            if i >= len(bounds):  # the +Inf overflow bucket
                return float(bounds[-1])
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            fraction = (rank - (cumulative - count)) / count
            return lower + (upper - lower) * fraction
    return float(bounds[-1])


class _Slice:
    """One time slice of the rolling window."""

    __slots__ = ("epoch", "hist", "ok", "errors")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.epoch = -1  # which window slot this slice currently holds
        self.hist = Histogram(bounds)
        self.ok = 0
        self.errors = 0

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.hist = Histogram(self.hist.bounds)
        self.ok = 0
        self.errors = 0


class SloTracker:
    """Rolling-window latency quantiles + error budget, per labeled key.

    One tracker serves many keys (endpoint, tenant, or both); each key
    gets its own ring of ``slices`` time slices spanning ``window_s``
    seconds in total.
    """

    def __init__(
        self,
        window_s: float = 300.0,
        slices: int = 10,
        target_availability: float = 0.999,
        latency_target_s: Optional[float] = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_S,
        clock=time.monotonic,
    ):
        if window_s <= 0:
            raise ConfigurationError(f"window_s must be > 0: {window_s}")
        if slices < 1:
            raise ConfigurationError(f"slices must be >= 1: {slices}")
        if not 0.0 < target_availability < 1.0:
            raise ConfigurationError(
                "target_availability must be in (0, 1): "
                f"{target_availability}"
            )
        self.window_s = float(window_s)
        self.slices = slices
        self.slice_s = self.window_s / slices
        self.target_availability = target_availability
        self.latency_target_s = latency_target_s
        self._bounds = tuple(float(b) for b in buckets)
        self._clock = clock
        self._lock = threading.Lock()
        self._rings: Dict[str, List[_Slice]] = {}

    def _slot(self, now: float) -> Tuple[int, int]:
        epoch = int(now / self.slice_s)
        return epoch, epoch % self.slices

    def _slice_for(self, key: str, now: float) -> _Slice:
        # Caller holds the lock.
        ring = self._rings.get(key)
        if ring is None:
            ring = [_Slice(self._bounds) for _ in range(self.slices)]
            self._rings[key] = ring
        epoch, index = self._slot(now)
        piece = ring[index]
        if piece.epoch != epoch:
            piece.reset(epoch)
        return piece

    def observe(self, key: str, latency_s: float, error: bool = False) -> None:
        """Record one request outcome for ``key``."""
        now = self._clock()
        with self._lock:
            piece = self._slice_for(key, now)
            piece.hist.observe(latency_s)
            if error:
                piece.errors += 1
            else:
                piece.ok += 1

    # -- snapshots --------------------------------------------------------

    def _live_slices(self, key: str, now: float) -> List[_Slice]:
        # Caller holds the lock.  A slice is live when its epoch falls
        # inside the last ``slices`` epochs ending now.
        ring = self._rings.get(key)
        if ring is None:
            return []
        epoch, _ = self._slot(now)
        oldest = epoch - self.slices + 1
        return [s for s in ring if oldest <= s.epoch <= epoch]

    def snapshot_key(self, key: str) -> Dict[str, object]:
        """The rolling-window view of one key."""
        now = self._clock()
        with self._lock:
            live = self._live_slices(key, now)
            merged = [0] * (len(self._bounds) + 1)
            total_sum = 0.0
            ok = errors = 0
            for piece in live:
                for i, c in enumerate(piece.hist.counts):
                    merged[i] += c
                total_sum += piece.hist.sum
                ok += piece.ok
                errors += piece.errors
        count = sum(merged)
        total = ok + errors
        error_rate = errors / total if total else 0.0
        allowed = 1.0 - self.target_availability
        budget = 1.0 - error_rate / allowed if allowed > 0 else 0.0
        quantiles = {
            f"p{int(q * 100)}": round(
                quantile_from_buckets(self._bounds, merged, q), 6
            )
            for q in DEFAULT_QUANTILES
        }
        doc: Dict[str, object] = {
            "window_s": self.window_s,
            "requests": total,
            "errors": errors,
            "error_rate": round(error_rate, 6),
            "target_availability": self.target_availability,
            "error_budget_remaining": round(budget, 6),
            "latency": {
                "count": count,
                "mean_s": round(total_sum / count, 6) if count else 0.0,
                **quantiles,
            },
        }
        if self.latency_target_s is not None:
            doc["latency_target_s"] = self.latency_target_s
            doc["latency_target_met"] = (
                quantiles["p95"] <= self.latency_target_s
            )
        return doc

    def snapshot(self) -> Dict[str, object]:
        """All keys' rolling-window views (the ``/stats`` slo section)."""
        with self._lock:
            keys = sorted(self._rings)
        return {key: self.snapshot_key(key) for key in keys}

    def export_gauges(self, registry) -> None:
        """Mirror the snapshot into ``registry`` gauges for ``/metrics``."""
        if not registry.enabled:
            return
        for key, doc in self.snapshot().items():
            latency = doc["latency"]
            registry.gauge("slo.p50_seconds", key=key).set(latency["p50"])
            registry.gauge("slo.p95_seconds", key=key).set(latency["p95"])
            registry.gauge("slo.p99_seconds", key=key).set(latency["p99"])
            registry.gauge("slo.error_rate", key=key).set(doc["error_rate"])
            registry.gauge("slo.error_budget_remaining", key=key).set(
                doc["error_budget_remaining"]
            )
