"""`repro.obs`: metrics, request-level tracing, and profiling hooks.

The paper's contribution is *measurement*; this subsystem makes the
reproduction itself measurable without ever distorting what it measures:

* a process-wide **metrics registry** (`metrics.py`) -- counters, gauges,
  fixed-bucket histograms -- with a zero-overhead no-op default and JSON /
  Prometheus-text export, fed by the hardware models, the event simulator,
  and the campaign runtime;
* **request-level trace sampling** (`trace.py`) -- the event-driven CXL
  simulator emits per-request spans (link transit, transaction-layer
  queueing, MC scheduling, bank service) for every Nth request, exported
  as Chrome ``trace_event`` JSON for Perfetto;
* **phase timers** (`timers.py`) -- wall-clock stage timing for campaigns
  and experiment drivers;
* **wide-event logging** (`events.py`) -- one canonical ndjson event per
  served request / campaign cell, through a leveled, sampled,
  thread-safe logger with a zero-overhead null default;
* **SLO tracking** (`slo.py`) -- rolling-window p50/p95/p99 latency and
  error-budget accounting per endpoint/tenant;
* a **flight recorder** (`flight.py`) -- a bounded in-memory ring of the
  last N request wide events with nested span trees, behind the serve
  ``/debug/requests`` endpoints.

Hard guarantee: instrumentation observes, never participates -- no RNG
draws, no model inputs.  Figures are byte-identical with observability on
or off, and each traced request's span durations sum exactly to its
reported latency; both properties are enforced by the ``obs`` layer of
:mod:`repro.diag`.
"""

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventLogger,
    NullEventLogger,
    build_event,
    disable_events,
    enable_events,
    events,
    render_event,
    use_events,
    validate_event,
)
from repro.obs.flight import FlightRecorder, span_tree
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    DEFAULT_QUEUE_WAIT_BUCKETS_S,
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    metrics,
    use_registry,
)
from repro.obs.slo import SloTracker, quantile_from_buckets
from repro.obs.timers import phase_timer
from repro.obs.trace import (
    CLOCK_SIM,
    CLOCK_WALL,
    Span,
    TraceBuffer,
    TraceContext,
    disable_tracing,
    enable_tracing,
    thread_tracing,
    tracing,
    use_tracing,
)

__all__ = [
    "CLOCK_SIM",
    "CLOCK_WALL",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "DEFAULT_QUEUE_WAIT_BUCKETS_S",
    "DEFAULT_TIME_BUCKETS_S",
    "EVENT_SCHEMA_VERSION",
    "EventLogger",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullEventLogger",
    "NullRegistry",
    "SloTracker",
    "Span",
    "TraceBuffer",
    "TraceContext",
    "build_event",
    "disable_events",
    "disable_metrics",
    "disable_tracing",
    "enable_events",
    "enable_metrics",
    "enable_tracing",
    "events",
    "metrics",
    "phase_timer",
    "quantile_from_buckets",
    "render_event",
    "span_tree",
    "thread_tracing",
    "tracing",
    "use_events",
    "use_registry",
    "use_tracing",
    "validate_event",
]
