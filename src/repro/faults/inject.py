"""Apply a :class:`~repro.faults.plan.FaultPlan` to prepared sim inputs.

The event-driven simulator draws *all* of its randomness up front into a
:class:`~repro.hw.cxl.kernels.SimInputs`; fault injection is a pure
transformation of those inputs plus two post-engine latency adjustments.
That placement is what keeps the subsystem's two identity contracts:

* **No-plan identity** -- with no (or an empty) plan the transformation
  is never invoked, so the simulator's RNG stream and every downstream
  float are untouched.
* **Cross-engine identity** -- injected retries are OR-ed into the shared
  ``retry_draw`` array and throttle derating rides a shared per-request
  ``service_scale`` array, both consumed identically by the scalar loop
  and the vector kernels; dropout overrides and ECC correction stalls are
  applied *after* the engine, elementwise, to whichever latency array it
  produced.  Scalar and vector runs under the same plan therefore stay
  bit-identical (the ``faults`` diag layer enforces this).

Fault randomness comes from a dedicated stream keyed by the plan's
content hash, the device, and the operating point -- never from the
simulator's own stream.  Every probabilistic episode draws a full-length
vector whether or not its window covers any request, so the draw layout
is independent of the data and two runs under one plan agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.faults.plan import FaultPlan
from repro.rng import generator_for

# NOTE: SimInputs (repro.hw.cxl.kernels) is referenced only in annotations;
# importing it here would close an import cycle through repro.hw.cxl, whose
# eventdevice module imports this package.


@dataclass(frozen=True)
class AppliedFaults:
    """What a plan actually did to one simulation's inputs.

    ``extra_ns`` (additive, e.g. ECC correction stalls) and
    ``override_ns`` (absolute, NaN where inactive, e.g. dropout
    completions) are the shared post-engine latency transforms; the
    counters feed :class:`~repro.hw.cxl.eventdevice.EventSimResult` and
    the ``sim.faults.*`` metrics.
    """

    plan_key: str
    injected_retries: int = 0
    poisoned_reads: int = 0
    ecc_corrected: int = 0
    throttled_requests: int = 0
    extra_ns: Optional[np.ndarray] = None
    override_ns: Optional[np.ndarray] = None

    def adjust_latencies(self, latencies_ns: np.ndarray) -> np.ndarray:
        """The shared post-engine transform (elementwise, engine-agnostic)."""
        out = latencies_ns
        if self.extra_ns is not None:
            out = out + self.extra_ns
        if self.override_ns is not None:
            out = np.where(np.isnan(self.override_ns), out, self.override_ns)
        return out


def apply_fault_plan(
    inp: SimInputs,
    device,
    plan: FaultPlan,
    offered_gbps: float,
) -> Tuple[SimInputs, AppliedFaults]:
    """Transform ``inp`` per ``plan``; returns the new inputs + ledger.

    ``device`` is the :class:`~repro.hw.cxl.device.CxlDevice` being
    simulated (its link supplies the storm retry probability, its
    controller the thermal derating).
    """
    n = inp.n
    arrivals = inp.arrivals
    link = device.profile.link
    controller = device.profile.controller
    rng = generator_for(
        plan.seed, "faults", plan.key(), device.name,
        f"{offered_gbps:.3f}", str(n),
    )

    retry = inp.retry_draw
    scale: Optional[np.ndarray] = None
    extra: Optional[np.ndarray] = None
    override: Optional[np.ndarray] = None
    injected = 0
    poisoned = 0
    corrected = 0

    for episode in plan.episodes:
        mask = episode.window_mask(arrivals)
        if episode.kind == "link_retry_storm":
            prob = link.storm_retry_probability(episode.retry_multiplier)
            draw = (rng.random(n) < prob) & mask
            injected += int(np.count_nonzero(draw & ~retry))
            retry = retry | draw
        elif episode.kind == "thermal_throttle":
            derate = controller.throttle_episode_derating(
                episode.temperature_c
            )
            if derate > 1.0:
                if scale is None:
                    scale = np.ones(n)
                scale = np.where(mask, scale * derate, scale)
        elif episode.kind == "device_dropout":
            poisoned += int(np.count_nonzero(mask))
            if override is None:
                override = np.full(n, np.nan)
            override = np.where(
                mask,
                episode.dropout_latency_ns + inp.host_overhead_ns,
                override,
            )
        elif episode.kind == "ecc":
            single = (rng.random(n) < episode.ecc_single_prob) & mask
            multi = (rng.random(n) < episode.ecc_multi_prob) & mask
            corrected += int(np.count_nonzero(single))
            poisoned += int(np.count_nonzero(multi))
            if episode.ecc_correction_ns > 0 and single.any():
                if extra is None:
                    extra = np.zeros(n)
                extra = extra + np.where(
                    single, episode.ecc_correction_ns, 0.0
                )

    throttled = (
        int(np.count_nonzero(scale > 1.0)) if scale is not None else 0
    )
    if retry is not inp.retry_draw or scale is not None:
        inp = replace(inp, retry_draw=retry, service_scale=scale)
    applied = AppliedFaults(
        plan_key=plan.key(),
        injected_retries=injected,
        poisoned_reads=poisoned,
        ecc_corrected=corrected,
        throttled_requests=throttled,
        extra_ns=extra,
        override_ns=override,
    )
    return inp, applied
