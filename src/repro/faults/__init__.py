"""repro.faults: deterministic CXL RAS fault injection + host chaos.

Two halves, both seeded and content-addressed:

* **Device faults** (:mod:`repro.faults.plan`, :mod:`repro.faults.inject`)
  -- scheduled :class:`FaultEpisode` windows (link CRC retry storms,
  device dropout, thermal throttle, ECC events) described by a pure-data
  :class:`FaultPlan` and applied to the event-driven simulator's prepared
  inputs, identically in both engines.
* **Host chaos** (:mod:`repro.faults.chaos`) -- worker kills, injected
  errors, and hangs against the campaign runtime, which the resilient
  executor must retry, time out, or quarantine.
* **Network chaos** (:mod:`repro.faults.netchaos`) -- seeded per-frame
  sabotage (drops, duplicates, reordering, latency spikes, partial
  writes) for the :mod:`repro.dist` coordinator/worker wire, which the
  lease protocol must absorb without ever changing campaign output.

Importing this package is free of side effects: with no plan installed
every fault-free code path is byte-identical to a build without the
subsystem (the ``faults`` diag layer enforces this).  The end-to-end
chaos harness lives in :mod:`repro.faults.harness` (imported lazily; it
pulls in the campaign stack).
"""

from repro.faults.chaos import (
    ChaosError,
    ChaosPolicy,
    active_chaos,
    chaos_injection,
    clear_chaos,
    install_chaos,
)
from repro.faults.inject import AppliedFaults, apply_fault_plan
from repro.faults.netchaos import NetChaosPolicy
from repro.faults.plan import (
    EPISODE_KINDS,
    FaultEpisode,
    FaultPlan,
    active_fault_plan,
    clear_fault_plan,
    fault_injection,
    install_fault_plan,
    load_plan,
    retry_storm_plan,
)

__all__ = [
    "AppliedFaults",
    "ChaosError",
    "ChaosPolicy",
    "EPISODE_KINDS",
    "FaultEpisode",
    "FaultPlan",
    "NetChaosPolicy",
    "active_chaos",
    "active_fault_plan",
    "apply_fault_plan",
    "chaos_injection",
    "clear_chaos",
    "clear_fault_plan",
    "fault_injection",
    "install_chaos",
    "install_fault_plan",
    "load_plan",
    "retry_storm_plan",
]
