"""Host-side chaos: sabotage campaign cell execution, deterministically.

Where :mod:`repro.faults.plan` injects *device* faults into the simulated
timeline, this module injects *host* faults into the campaign runtime:
worker processes that die mid-cell (SIGKILL-style ``os._exit``), cells
that raise, and cells that hang.  The resilient executor
(:class:`~repro.runtime.executor.CampaignEngine` with a
:class:`~repro.runtime.executor.RetryPolicy`) must survive all of them --
retrying transient failures, timing out hangs, and quarantining
deterministic failures -- and the ``faults`` diag layer proves it does on
every ``repro validate``.

Chaos draws are keyed by ``(seed, cell key, attempt)``, so a cell killed
on attempt 1 is killed again on every replay of attempt 1 (reproducible
chaos), while its attempt 2 draws fresh -- and ``max_sabotaged_attempt``
bounds how deep the sabotage reaches, guaranteeing the campaign
terminates.  Keys listed in ``doomed`` fail every attempt: they exercise
the quarantine path end to end.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import MelodyError
from repro.rng import generator_for


class ChaosError(MelodyError):
    """The injected cell failure (raised inside sabotaged workers)."""


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded sabotage schedule for campaign cell execution.

    ``kill_prob``/``hang_prob``/``error_prob`` partition a single uniform
    draw per (cell, attempt); a hang sleeps ``hang_s`` (long enough to
    trip a per-cell timeout, short enough to terminate without one).
    """

    kill_prob: float = 0.0
    hang_prob: float = 0.0
    error_prob: float = 0.0
    hang_s: float = 30.0
    max_sabotaged_attempt: int = 1
    doomed: Tuple[str, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        total = self.kill_prob + self.hang_prob + self.error_prob
        if min(self.kill_prob, self.hang_prob, self.error_prob) < 0 \
                or total > 1.0:
            raise MelodyError(
                "chaos probabilities must be >= 0 and sum to <= 1"
            )
        if self.hang_s <= 0:
            raise MelodyError("hang_s must be positive")
        if self.max_sabotaged_attempt < 0:
            raise MelodyError("max_sabotaged_attempt must be >= 0")

    def action(self, cell_key: str, attempt: int) -> str:
        """The sabotage for one (cell, attempt): kill/hang/error/none."""
        if cell_key in self.doomed:
            return "error"
        if attempt > self.max_sabotaged_attempt:
            return "none"
        r = generator_for(
            self.seed, "chaos", cell_key, str(attempt)
        ).random()
        if r < self.kill_prob:
            return "kill"
        if r < self.kill_prob + self.hang_prob:
            return "hang"
        if r < self.kill_prob + self.hang_prob + self.error_prob:
            return "error"
        return "none"

    def apply(self, cell_key: str, attempt: int) -> None:
        """Execute the sabotage inside a worker (call before the run)."""
        action = self.action(cell_key, attempt)
        if action == "kill":
            # SIGKILL semantics: no exception, no cleanup, no result.
            os._exit(17)
        if action == "hang":
            time.sleep(self.hang_s)
        elif action == "error":
            raise ChaosError(
                f"injected failure (cell {cell_key[:12]}, "
                f"attempt {attempt})"
            )


# -- installation (context-scoped; inherited by forked workers) ------------
#
# Like the fault plan, the active chaos policy is a ContextVar so that
# concurrent server jobs can sabotage their own cells (the smoke tests'
# "poisoned query") without dooming anybody else's.  Forked workers
# inherit the forking thread's context with the process image.

_ACTIVE: ContextVar[Optional[ChaosPolicy]] = ContextVar(
    "repro_chaos_policy", default=None
)


def install_chaos(policy: ChaosPolicy) -> ChaosPolicy:
    """Install ``policy`` for the current context; workers inherit it."""
    _ACTIVE.set(policy)
    return policy


def active_chaos() -> Optional[ChaosPolicy]:
    """The installed policy, or ``None`` (no sabotage)."""
    return _ACTIVE.get()


def clear_chaos() -> None:
    """Remove the installed policy."""
    _ACTIVE.set(None)


@contextmanager
def chaos_injection(policy: ChaosPolicy) -> Iterator[ChaosPolicy]:
    """Scope a chaos policy to a block, restoring the previous after."""
    token = _ACTIVE.set(policy)
    try:
        yield policy
    finally:
        _ACTIVE.reset(token)
