"""End-to-end chaos harness: a small campaign under worker sabotage.

Used by the ``faults`` diag layer (``repro validate --layer faults``), the
resilience test suite, and the CI chaos smoke job.  The harness builds a
small real campaign (a few workloads on one CXL device), installs a
seeded :class:`~repro.faults.chaos.ChaosPolicy` that kills workers and
dooms one chosen cell, runs it through a resilient
:class:`~repro.runtime.executor.CampaignEngine`, and hands back everything
a caller needs to assert the survival invariants:

* the campaign completes (no hang, no abort);
* exactly the doomed cells are quarantined, as :class:`FailedCell`
  records with their diagnosis;
* every surviving record is bit-identical to a chaos-free run (retries
  re-execute deterministic cells, so sabotage can delay but never change
  a result);
* the cache holds no entry for a quarantined cell.

This module imports the campaign stack, so it is *not* pulled in by
``repro.faults`` itself -- import it explicitly (the executor must stay
importable from inside pool workers without dragging Melody along).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.melody import Campaign, CampaignResult, Melody
from repro.faults.chaos import ChaosPolicy, chaos_injection
from repro.hw.cxl import cxl_a
from repro.hw.platform import EMR2S
from repro.runtime.cache import RunCache
from repro.runtime.executor import CampaignEngine, Cell, RetryPolicy
from repro.workloads import all_workloads


@dataclass(frozen=True)
class ChaosOutcome:
    """Everything the survival invariants inspect after a chaos run."""

    result: CampaignResult
    engine: CampaignEngine
    campaign: Campaign
    doomed_keys: Tuple[str, ...]
    expected_records: int
    """Records a fault-free run would produce (grid minus capacity skips)."""


def chaos_campaign(n_workloads: int = 4) -> Campaign:
    """A small, real campaign: ``n_workloads`` on CXL-A with EMR baseline."""
    target = cxl_a()
    fitting = tuple(
        w for w in all_workloads()
        if w.working_set_gb <= target.capacity_gb
    )[:n_workloads]
    return Campaign(
        name="chaos-smoke",
        platform=EMR2S,
        targets=(target,),
        workloads=fitting,
    )


def run_chaos_campaign(
    seed: int = 7,
    kill_prob: float = 0.35,
    error_prob: float = 0.15,
    n_workloads: int = 4,
    doom_index: int = 1,
    jobs: int = 1,
    max_attempts: int = 3,
    timeout_s: Optional[float] = None,
    backoff_base_s: float = 0.0,
    cache_dir: Optional[str] = None,
) -> ChaosOutcome:
    """Run the chaos campaign; sabotage is seeded and terminates.

    ``max_sabotaged_attempt = max_attempts - 1`` guarantees every
    non-doomed cell a clean final attempt, so the campaign always
    completes; the ``doom_index``-th workload's device cell fails every
    attempt and must come back quarantined.  ``backoff_base_s`` defaults
    to 0 so harness runs never sleep.
    """
    campaign = chaos_campaign(n_workloads)
    workloads = campaign.workloads
    target = campaign.targets[0]
    doomed: Tuple[str, ...] = ()
    if workloads and 0 <= doom_index < len(workloads):
        doomed = (
            Cell(
                workloads[doom_index], campaign.platform, target,
                campaign.config,
            ).key(),
        )
    policy = RetryPolicy(
        max_attempts=max_attempts,
        timeout_s=timeout_s,
        backoff_base_s=backoff_base_s,
        seed=seed,
    )
    chaos = ChaosPolicy(
        kill_prob=kill_prob,
        error_prob=error_prob,
        max_sabotaged_attempt=max_attempts - 1,
        doomed=doomed,
        seed=seed,
    )
    engine = CampaignEngine(
        cache=RunCache(cache_dir), jobs=jobs, policy=policy
    )
    melody = Melody(engine=engine)
    with chaos_injection(chaos):
        result = melody.run(campaign)
    expected = sum(
        1 for w in workloads if w.working_set_gb <= target.capacity_gb
    )
    return ChaosOutcome(
        result=result,
        engine=engine,
        campaign=campaign,
        doomed_keys=doomed,
        expected_records=expected,
    )


def fault_free_reference(campaign: Campaign) -> CampaignResult:
    """The same campaign, fail-fast, fresh cache, no sabotage."""
    engine = CampaignEngine(cache=RunCache())
    return Melody(engine=engine).run(campaign)
