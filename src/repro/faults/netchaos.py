"""Seeded network chaos for the distributed campaign protocol.

Where :mod:`repro.faults.chaos` sabotages campaign *cells* (worker
kills, hangs, injected errors), this module sabotages the *wire* between
a dist worker and its coordinator: connections that drop mid-send,
frames that arrive twice or swapped, latency spikes, and writes that
stall halfway through a frame (then either complete or take the
connection down with them).

Decisions are a pure function of ``(seed, stream, frame index)`` --
``stream`` names one connection attempt (worker name + reconnect
count), so a replayed campaign sabotages byte-for-byte the same sends.
At most one action applies per frame; the probabilities partition a
single uniform draw exactly like :class:`~repro.faults.chaos
.ChaosPolicy` partitions its cell draw.

The crucial design constraint: chaos must never *silently* lose a frame.
``drop`` and the dropping half of ``partial`` kill the whole connection
(the peer sees EOF or a truncated frame; leases release; the worker
reconnects), while ``dup``/``reorder``/``delay`` keep every frame
alive.  The protocol's sequence numbers and at-most-once commit absorb
everything that remains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MelodyError
from repro.rng import generator_for

ACTIONS = ("drop", "dup", "reorder", "delay", "partial", "none")
"""Everything :meth:`NetChaosPolicy.action` can decide for one frame."""


@dataclass(frozen=True)
class NetChaosPolicy:
    """Seeded per-frame sabotage schedule for one worker's connections."""

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    delay_prob: float = 0.0
    partial_prob: float = 0.0
    delay_s: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        probs = (
            self.drop_prob, self.dup_prob, self.reorder_prob,
            self.delay_prob, self.partial_prob,
        )
        if min(probs) < 0 or sum(probs) > 1.0:
            raise MelodyError(
                "net chaos probabilities must be >= 0 and sum to <= 1"
            )
        if self.delay_s < 0:
            raise MelodyError("delay_s must be >= 0")

    @classmethod
    def from_seed(cls, seed: int) -> "NetChaosPolicy":
        """The standard drill mix (the CLI's ``--net-chaos SEED``).

        Mostly-benign sabotage (dup/reorder/delay) with a real but
        modest rate of connection loss, so a drilled campaign exercises
        reconnection and lease recovery without spending most of its
        wall time reconnecting.
        """
        return cls(
            drop_prob=0.04,
            dup_prob=0.10,
            reorder_prob=0.12,
            delay_prob=0.08,
            partial_prob=0.06,
            seed=seed,
        )

    def action(self, stream: str, index: int) -> str:
        """The sabotage for frame ``index`` of connection ``stream``."""
        r = generator_for(
            self.seed, "netchaos", stream, str(index)
        ).random()
        threshold = 0.0
        for name, prob in (
            ("drop", self.drop_prob),
            ("dup", self.dup_prob),
            ("reorder", self.reorder_prob),
            ("delay", self.delay_prob),
            ("partial", self.partial_prob),
        ):
            threshold += prob
            if r < threshold:
                return name
        return "none"

    def partial_completes(self, stream: str, index: int) -> bool:
        """Whether a partial write finishes (vs dropping the link).

        A separate keyed draw so the completion choice does not perturb
        the action sequence of later frames.
        """
        return generator_for(
            self.seed, "netchaos-partial", stream, str(index)
        ).random() < 0.5
