"""Deterministic, content-addressable CXL RAS fault plans.

The paper's scale argument cuts both ways: hundreds of devices mean the
campaign *will* observe RAS events -- link CRC retry storms, transient
device dropouts (hot-remove returning poisoned reads), memory-controller
thermal-throttle windows, and ECC single/multi-bit events.  This module
describes those events as **pure data**: a :class:`FaultPlan` is a named,
seeded set of :class:`FaultEpisode` windows on the simulated timeline.

Design rules (enforced across the subsystem):

* A plan is *content-addressable*: :meth:`FaultPlan.key` hashes the
  canonical JSON of its behaviour-determining fields (episodes + seed,
  not the display name), so the run cache can key on it and two runs
  under the same plan collapse onto one cache entry.
* A plan with **no episodes is disabled** and must be indistinguishable
  from no plan at all -- same RNG draws, same cache keys, byte-identical
  results (the ``faults`` diag layer enforces this).
* All fault randomness comes from a *separate* RNG stream keyed by the
  plan, never from the simulator's own stream, so installing a plan can
  never perturb the fault-free draws.

Plans install process-wide (mirroring :mod:`repro.obs`): the event-driven
simulator consults :func:`active_fault_plan` on every run, and the
:func:`fault_injection` context manager scopes a plan to a block.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import DEFAULT_SEED

EPISODE_KINDS = (
    "link_retry_storm",
    "device_dropout",
    "thermal_throttle",
    "ecc",
)
"""Fault mechanisms a :class:`FaultEpisode` can schedule."""


@dataclass(frozen=True)
class FaultEpisode:
    """One scheduled fault window on the simulated timeline.

    ``start_ns``/``duration_ns`` bound the window in *arrival* time;
    requests arriving inside it are exposed to the episode's mechanism.
    Kind-specific knobs (only the ones matching ``kind`` matter):

    * ``link_retry_storm`` -- ``retry_multiplier`` scales the link's
      per-flit CRC-failure probability (a burst of marginal-signal CRC
      errors); retries flow through the existing retry accounting, so
      both engines and all counters see them identically.
    * ``thermal_throttle`` -- ``temperature_c`` drives the MC's thermal
      model; bank service inside the window is derated by the same
      multiplier the analytic queue model uses.
    * ``device_dropout`` -- the device stops answering; reads in the
      window complete at ``dropout_latency_ns`` (the host's poisoned-
      completion path) instead of their simulated latency.
    * ``ecc`` -- per-request single-bit corrections (adding
      ``ecc_correction_ns``) and multi-bit events (counted as poisoned
      reads) at the given probabilities.
    """

    kind: str
    start_ns: float = 0.0
    duration_ns: float = 1e6
    retry_multiplier: float = 200.0
    temperature_c: float = 95.0
    dropout_latency_ns: float = 350.0
    ecc_single_prob: float = 1e-4
    ecc_multi_prob: float = 0.0
    ecc_correction_ns: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in EPISODE_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {EPISODE_KINDS}"
            )
        if self.start_ns < 0:
            raise ConfigurationError("episode start must be >= 0")
        if self.duration_ns <= 0:
            raise ConfigurationError("episode duration must be positive")
        if self.retry_multiplier <= 0:
            raise ConfigurationError("retry multiplier must be positive")
        if self.dropout_latency_ns <= 0:
            raise ConfigurationError("dropout latency must be positive")
        if not 0.0 <= self.ecc_single_prob <= 1.0:
            raise ConfigurationError("ecc_single_prob must be in [0, 1]")
        if not 0.0 <= self.ecc_multi_prob <= 1.0:
            raise ConfigurationError("ecc_multi_prob must be in [0, 1]")
        if self.ecc_correction_ns < 0:
            raise ConfigurationError("ecc_correction_ns must be >= 0")

    @property
    def end_ns(self) -> float:
        """Exclusive end of the window."""
        return self.start_ns + self.duration_ns

    def window_mask(self, arrivals_ns: np.ndarray) -> np.ndarray:
        """Boolean mask of requests arriving inside the window."""
        return (arrivals_ns >= self.start_ns) & (arrivals_ns < self.end_ns)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "kind": self.kind,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "retry_multiplier": self.retry_multiplier,
            "temperature_c": self.temperature_c,
            "dropout_latency_ns": self.dropout_latency_ns,
            "ecc_single_prob": self.ecc_single_prob,
            "ecc_multi_prob": self.ecc_multi_prob,
            "ecc_correction_ns": self.ecc_correction_ns,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEpisode":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        known = {
            "kind", "start_ns", "duration_ns", "retry_multiplier",
            "temperature_c", "dropout_latency_ns", "ecc_single_prob",
            "ecc_multi_prob", "ecc_correction_ns",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault episode field(s): {sorted(unknown)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of fault episodes (pure data).

    The display ``name`` is excluded from :meth:`key`: two plans with the
    same episodes and seed inject byte-identical faults, so they share
    cache entries regardless of what a campaign calls them.
    """

    name: str
    episodes: Tuple[FaultEpisode, ...] = ()
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fault plan needs a name")
        object.__setattr__(self, "episodes", tuple(self.episodes))
        for episode in self.episodes:
            if not isinstance(episode, FaultEpisode):
                raise ConfigurationError(
                    f"plan episodes must be FaultEpisode, got {episode!r}"
                )

    @property
    def enabled(self) -> bool:
        """A plan without episodes injects nothing and keys nothing."""
        return bool(self.episodes)

    def key(self) -> str:
        """Content hash of the behaviour-determining fields."""
        payload = {
            "seed": self.seed,
            "episodes": [e.to_dict() for e in self.episodes],
        }
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]

    def episodes_of(self, kind: str) -> Tuple[FaultEpisode, ...]:
        """The plan's episodes of one kind, in schedule order."""
        return tuple(e for e in self.episodes if e.kind == kind)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (round-trips through ``from_dict``)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "episodes": [e.to_dict() for e in self.episodes],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(data, dict):
            raise ConfigurationError("fault plan document must be an object")
        episodes = data.get("episodes", [])
        if not isinstance(episodes, list):
            raise ConfigurationError("plan 'episodes' must be a list")
        return cls(
            name=str(data.get("name", "")),
            seed=int(data.get("seed", DEFAULT_SEED)),
            episodes=tuple(FaultEpisode.from_dict(e) for e in episodes),
        )


def load_plan(path: str) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file."""
    try:
        with open(path, "r") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read fault plan {path!r}: {exc}")
    except ValueError as exc:
        raise ConfigurationError(f"fault plan {path!r} is not JSON: {exc}")
    return FaultPlan.from_dict(data)


def retry_storm_plan(
    start_ns: float,
    duration_ns: float,
    multiplier: float = 200.0,
    name: str = "retry-storm",
    seed: int = DEFAULT_SEED,
) -> FaultPlan:
    """A one-episode CRC retry-storm plan (the common case)."""
    return FaultPlan(
        name=name,
        seed=seed,
        episodes=(
            FaultEpisode(
                kind="link_retry_storm",
                start_ns=start_ns,
                duration_ns=duration_ns,
                retry_multiplier=multiplier,
            ),
        ),
    )


# -- installation (context-scoped; mirrors repro.obs) ----------------------
#
# The active plan lives in a ContextVar, not a module global: each thread
# (and asyncio task) sees its own installation, so concurrent ``repro
# serve`` jobs can run different fault plans without racing -- a race
# here would silently mis-key cache entries.  Single-threaded CLI flows
# are unchanged (install and execution share one context), and forked
# pool workers inherit the forking thread's context with the process
# image, exactly as they inherited the old global.

_ACTIVE: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro_fault_plan", default=None
)


def install_fault_plan(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` for the current context; returns it for chaining."""
    if not isinstance(plan, FaultPlan):
        raise ConfigurationError(f"expected a FaultPlan, got {plan!r}")
    _ACTIVE.set(plan)
    return plan


def active_fault_plan() -> Optional[FaultPlan]:
    """The installed plan, or ``None`` (faults disabled)."""
    return _ACTIVE.get()


def clear_fault_plan() -> None:
    """Remove the installed plan (back to fault-free)."""
    _ACTIVE.set(None)


@contextmanager
def fault_injection(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope a fault plan to a block, restoring the previous one after."""
    if not isinstance(plan, FaultPlan):
        raise ConfigurationError(f"expected a FaultPlan, got {plan!r}")
    token = _ACTIVE.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE.reset(token)
