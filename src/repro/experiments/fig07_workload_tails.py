"""Figure 7: CXL tail latencies observed by real workloads.

(a/b) 508.namd_r -- bandwidth mostly under 500 MB/s with rare spikes, yet
CXL-C's sampled latency spikes toward 1 us, showing the MC cannot hold
latency even under near-idle load.
(c) Redis YCSB-C (read-only, latency-critical) -- device-level tails
propagate to application-level request latency: high percentiles blow up
on CXL-C while local/NUMA/CXL-B stay far lower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.analysis.report import Table
from repro.cpu.pipeline import run_workload, sample_run_latencies
from repro.experiments.common import standard_targets
from repro.hw.platform import EMR2S
from repro.tools.sampler import TimeSampler
from repro.workloads import workload_by_name

REQUEST_CHAIN_DEPTH = 48
"""Dependent memory accesses per Redis request; device tails compound."""

REQUEST_BASE_US = 20.0
"""Fixed request cost: network stack, parsing, response serialization."""

EPISODE_PROB_FACTOR = 2.0
EPISODE_SCALE_FACTOR = 3.0
"""Congestion episodes are time-correlated: when one hits, the *whole*
request's device accesses slow together, which is how device-level tails
blow up application p99s (Figure 7c's CXL-C explosion)."""


@dataclass(frozen=True)
class WorkloadTailResult:
    """Panels a-c of Figure 7."""

    namd_series: Dict[str, Tuple[np.ndarray, np.ndarray]]  # (latency, bw) per target
    redis_percentiles: Dict[str, Dict[str, float]]  # target -> percentile -> us


def run(fast: bool = True) -> WorkloadTailResult:
    """Sample 508.namd over time and Redis YCSB-C request latencies."""
    targets = standard_targets()
    namd = workload_by_name("508.namd_r")
    sampler = TimeSampler(window_ms=1.0)
    namd_series = {}
    for name in ("Local", "NUMA", "CXL-C"):
        target = targets[name]
        result = run_workload(namd, EMR2S, target)
        windows = sampler.sample(result, target=target, max_windows=2000)
        namd_series[name] = (
            np.array([w.latency_ns for w in windows]),
            np.array([w.bandwidth_gbps for w in windows]),
        )

    redis = workload_by_name("redis-ycsb-c")
    n = 20_000 if fast else 100_000
    rng = np.random.default_rng(7)
    redis_percentiles = {}
    for name in ("Local", "NUMA", "CXL-B", "CXL-C"):
        target = targets[name]
        result = run_workload(redis, EMR2S, target)
        device = sample_run_latencies(result, target, n=n * REQUEST_CHAIN_DEPTH)
        # A request walks a dependent chain; its latency is the sum of the
        # chain's device latencies plus fixed request-processing time.
        chains = device[: n * REQUEST_CHAIN_DEPTH].reshape(n, REQUEST_CHAIN_DEPTH)
        request_us = chains.sum(axis=1) / 1000.0 + REQUEST_BASE_US
        # Correlated congestion episodes slow a whole request's accesses.
        tail = target.tail_model()
        util = result.phases[0].operating_point.utilization
        episode_prob = min(0.3, EPISODE_PROB_FACTOR * tail.tail_prob(util))
        hit = rng.random(n) < episode_prob
        inflation = 1.0 + rng.exponential(EPISODE_SCALE_FACTOR, n)
        device_part = request_us - REQUEST_BASE_US
        request_us = np.where(
            hit, REQUEST_BASE_US + device_part * inflation, request_us
        )
        redis_percentiles[name] = {
            f"p{p:g}": float(np.percentile(request_us, p))
            for p in (50, 75, 90, 95, 99, 99.9)
        }
    return WorkloadTailResult(
        namd_series=namd_series, redis_percentiles=redis_percentiles
    )


def render(result: WorkloadTailResult) -> str:
    """Spike summary for namd plus the Redis percentile table."""
    lines = ["Figure 7a/b: 508.namd_r sampled memory latency"]
    table = Table(["target", "mean BW GB/s", "mean lat ns", "max lat ns",
                   "spikes >2x median"])
    for name, (lat, bw) in result.namd_series.items():
        spikes = int(np.sum(lat > 2 * np.median(lat)))
        table.add_row(name, float(bw.mean()), float(lat.mean()),
                      float(lat.max()), spikes)
    lines.append(table.render())
    lines.append("")
    lines.append("Figure 7c: Redis YCSB-C request latency (us)")
    ps = ["p50", "p75", "p90", "p95", "p99", "p99.9"]
    table = Table(["target"] + ps)
    for name, series in result.redis_percentiles.items():
        table.add_row(name, *[series[p] for p in ps])
    lines.append(table.render())
    return "\n".join(lines)
