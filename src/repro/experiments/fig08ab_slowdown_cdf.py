"""Figure 8a/b: slowdown CDFs of the 265-workload population.

Panel (a): CDFs across NUMA and CXL-A..D on EMR; orderings to reproduce:
NUMA best, then CXL-D ~ NUMA, CXL-A, CXL-B; CXL-C limited to the
workloads fitting its 16 GB.  Panel (b) zooms on the tail: CXL-A/B carry
a 1.5-5.8x catastrophic tail (bandwidth-bound workloads) that NUMA/CXL-D
do not (their worst case is 80-90%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.report import Table, format_cdf_row
from repro.core.melody import CampaignResult, Melody
from repro.experiments.common import campaign_melody, workload_population

PAPER_FRACTIONS = {
    # target -> {threshold: fraction below}
    "NUMA": {50: 0.98},
    "CXL-D": {5: 0.43, 10: 0.60, 50: 0.94},
    "CXL-A": {5: 0.35, 10: 0.54, 50: 0.87},
    "CXL-B": {5: 0.22, 10: 0.32, 50: 0.80},
}
"""The paper's headline CDF fractions, for side-by-side reporting."""


@dataclass(frozen=True)
class SlowdownCdfResult:
    """The campaign dataset plus per-target slowdown vectors."""

    campaign: CampaignResult
    slowdowns: Dict[str, np.ndarray]

    def fraction_below(self, target: str, threshold: float) -> float:
        """Fraction of workloads under ``threshold`` percent slowdown."""
        return float(np.mean(self.slowdowns[target] < threshold))

    def tail_workloads(self, target: str, threshold: float = 150.0):
        """Workloads in the panel-(b) tail on one target."""
        return [
            r.workload
            for r in self.campaign.records
            if r.target == target and r.slowdown_pct >= threshold
        ]


def run(fast: bool = True) -> SlowdownCdfResult:
    """Run the device campaign over the population."""
    melody = campaign_melody()
    campaign = Melody.device_campaign(workloads=workload_population(fast))
    result = melody.run(campaign)
    slowdowns = {
        name.replace("EMR2S-", ""): result.slowdowns(name)
        for name in result.target_names()
    }
    return SlowdownCdfResult(campaign=result, slowdowns=slowdowns)


def render(result: SlowdownCdfResult) -> str:
    """CDF summary rows plus the paper-vs-measured fraction table."""
    lines = ["Figure 8a: slowdown CDFs (265 workloads)"]
    for name, values in result.slowdowns.items():
        lines.append("  " + format_cdf_row(name, values))
    lines.append("")
    table = Table(["target", "threshold", "measured", "paper"])
    for target, fractions in PAPER_FRACTIONS.items():
        for threshold, paper in fractions.items():
            measured = result.fraction_below(target, threshold)
            table.add_row(target, f"<{threshold}%", f"{measured * 100:.0f}%",
                          f"{paper * 100:.0f}%")
    lines.append(table.render())
    lines.append("")
    lines.append("Figure 8b: the slowdown tail (>=150%)")
    for target in ("CXL-A", "CXL-B", "CXL-D", "NUMA"):
        tail = result.tail_workloads(target)
        worst = float(result.slowdowns[target].max())
        lines.append(
            f"  {target:6s} tail={len(tail)} workloads, worst={worst:.0f}% "
            f"({', '.join(tail[:4])}{'...' if len(tail) > 4 else ''})"
        )
    return "\n".join(lines)
