"""Extension: latency under CXL RAS fault episodes (retry storms + ECC).

The paper characterizes devices in steady state; at rack scale the fleet
also sees RAS events -- link CRC retry storms from marginal signal
integrity, and ECC correction stalls.  This experiment injects a
deterministic :class:`~repro.faults.plan.FaultPlan` (a CRC retry storm
over the middle third of the run, plus background single-bit ECC
corrections) into each device's request-level simulation and compares the
latency distribution against the fault-free baseline.

The expected signature, which :func:`RasToleranceResult` asserts: the
*median* barely moves (most requests are outside the storm or unretried),
while the *tail* (p99.9) inflates -- RAS events are a tail phenomenon, so
tail-sensitive services need the tail-aware provisioning of Section 5
even when mean latency looks healthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import Table
from repro.faults.plan import FaultEpisode, FaultPlan, fault_injection
from repro.hw.cxl import device_by_name
from repro.hw.cxl.eventdevice import EventDrivenDevice
from repro.units import CACHELINE_BYTES

DEVICES = ("CXL-A", "CXL-B", "CXL-C", "CXL-D")
LOAD_GBPS = 6.0
STORM_MULTIPLIER = 400.0
ECC_SINGLE_PROB = 5e-3
PLAN_SEED = 17


@dataclass(frozen=True)
class RasRow:
    """Fault-free vs faulted latency distribution for one device."""

    device: str
    base_p50: float
    base_p99: float
    base_p999: float
    fault_p50: float
    fault_p99: float
    fault_p999: float
    injected_retries: int
    ecc_corrected: int

    @property
    def tail_amplification(self) -> float:
        """p99.9 under faults relative to fault-free p99.9."""
        return self.fault_p999 / self.base_p999

    @property
    def median_shift_pct(self) -> float:
        """Relative p50 movement under faults (percent)."""
        return (self.fault_p50 / self.base_p50 - 1.0) * 100.0


@dataclass(frozen=True)
class RasToleranceResult:
    """Per-device latency-under-faults comparison."""

    rows: List[RasRow]
    n_requests: int
    storm_window_ns: float

    def row(self, device: str) -> RasRow:
        """Look up one device."""
        for row in self.rows:
            if row.device == device:
                return row
        raise KeyError(device)

    def faults_were_injected(self) -> bool:
        """Every device saw storm retries and ECC corrections."""
        return all(
            r.injected_retries > 0 and r.ecc_corrected > 0 for r in self.rows
        )

    def tails_inflate(self) -> bool:
        """p99.9 rises under faults on every device."""
        return all(r.fault_p999 > r.base_p999 for r in self.rows)

    def medians_stable(self) -> bool:
        """p50 moves far less than the tail: RAS is a tail phenomenon."""
        return all(r.median_shift_pct < 20.0 for r in self.rows)


def _storm_plan(span_ns: float) -> FaultPlan:
    """CRC retry storm over the middle third, ECC background everywhere."""
    return FaultPlan(
        name="ras-tolerance",
        seed=PLAN_SEED,
        episodes=(
            FaultEpisode(
                kind="link_retry_storm",
                start_ns=span_ns / 3.0,
                duration_ns=span_ns / 3.0,
                retry_multiplier=STORM_MULTIPLIER,
            ),
            FaultEpisode(
                kind="ecc",
                start_ns=0.0,
                duration_ns=2.0 * span_ns,
                ecc_single_prob=ECC_SINGLE_PROB,
            ),
        ),
    )


def run(fast: bool = True) -> RasToleranceResult:
    """Simulate each device fault-free and under the RAS plan."""
    n = 12_000 if fast else 120_000
    # Expected arrival span: n cachelines at the offered load (GB/s is
    # bytes per ns, so this quotient is already in ns).
    span_ns = n * CACHELINE_BYTES / LOAD_GBPS
    plan = _storm_plan(span_ns)
    rows = []
    for name in DEVICES:
        sim = EventDrivenDevice(device_by_name(name))
        base = sim.simulate(n, LOAD_GBPS, engine="vector")
        with fault_injection(plan):
            faulted = sim.simulate(n, LOAD_GBPS, engine="vector")
        rows.append(
            RasRow(
                device=name,
                base_p50=base.percentile(50),
                base_p99=base.percentile(99),
                base_p999=base.percentile(99.9),
                fault_p50=faulted.percentile(50),
                fault_p99=faulted.percentile(99),
                fault_p999=faulted.percentile(99.9),
                injected_retries=faulted.injected_retries,
                ecc_corrected=faulted.ecc_corrected,
            )
        )
    return RasToleranceResult(
        rows=rows, n_requests=n, storm_window_ns=span_ns / 3.0
    )


def render(result: RasToleranceResult) -> str:
    """Side-by-side latency table plus the tail-phenomenon verdict."""
    lines = [
        "Extension: latency under RAS faults "
        f"(CRC storm x{STORM_MULTIPLIER:.0f} over "
        f"{result.storm_window_ns / 1e3:.0f} us, "
        f"ECC p={ECC_SINGLE_PROB:g}; {result.n_requests} requests)"
    ]
    table = Table([
        "device", "p50 ns", "p99.9 ns", "RAS p50", "RAS p99.9",
        "retries", "ECC corr", "tail amp",
    ])
    for r in result.rows:
        table.add_row(
            r.device, r.base_p50, r.base_p999, r.fault_p50, r.fault_p999,
            float(r.injected_retries), float(r.ecc_corrected),
            r.tail_amplification,
        )
    lines.append(table.render())
    lines.append(
        "tails inflate on every device: "
        + ("yes" if result.tails_inflate() else "NO")
        + "; medians stay within 20%: "
        + ("yes" if result.medians_stable() else "NO")
        + " (RAS events are a tail phenomenon)"
    )
    return "\n".join(lines)
