"""Figure 3b: pointer-chase latency CDFs, 1-32 threads, prefetchers off.

MIO measures per-request latency under 1, 2, 4, 8, 16, 32 co-located
chase threads (never exceeding 50% device bandwidth).  Key claims: local
and NUMA show p99.9-p50 gaps of only ~45/61 ns; CXL-B and CXL-C reach
~160 ns (50% over median); CXL-D is the most stable CXL device (~75 ns);
at p99.99+ CXL-A/D exceed 700 ns and CXL-B/C approach 1 us.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import Table
from repro.experiments.common import measurement_targets
from repro.tools.mio import MioBenchmark, MioResult

THREAD_SWEEP = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class LatencyCdfResult:
    """MIO results per target per thread count."""

    results: Dict[str, Dict[int, MioResult]]

    def tail_gap(self, target: str, threads: int = 1) -> float:
        """p99.9 - p50 for one configuration."""
        return self.results[target][threads].tail_gap_ns()


def run(fast: bool = True) -> LatencyCdfResult:
    """Measure all targets across the thread sweep."""
    samples = 30_000 if fast else 200_000
    threads = (1, 8, 32) if fast else THREAD_SWEEP
    results: Dict[str, Dict[int, MioResult]] = {}
    for target in measurement_targets():
        mio = MioBenchmark(target, samples=samples)
        results[target.name] = {n: mio.measure(n_threads=n) for n in threads}
    return LatencyCdfResult(results=results)


def render(result: LatencyCdfResult) -> str:
    """Percentile table per target (single-thread) plus tail-gap sweep."""
    table = Table(["target", "p50", "p99", "p99.9", "p99.99", "p99.9-p50"])
    for name, by_threads in result.results.items():
        r = by_threads[min(by_threads)]
        table.add_row(
            name,
            r.percentile(50),
            r.percentile(99),
            r.percentile(99.9),
            r.percentile(99.99),
            r.tail_gap_ns(),
        )
    lines = ["Figure 3b: pointer-chase latency CDFs (prefetchers off)",
             table.render(), "", "tail gap (p99.9-p50) vs thread count:"]
    for name, by_threads in result.results.items():
        gaps = "  ".join(
            f"{n}t:{r.tail_gap_ns():.0f}ns" for n, r in sorted(by_threads.items())
        )
        lines.append(f"  {name:12s} {gaps}")
    return "\n".join(lines)
