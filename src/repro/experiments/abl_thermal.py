"""Ablation: thermal stress testing (§3.2's 70C experiment + beyond).

The paper stress-tested its devices at 70C and saw no tail inflation, but
flagged thermal throttling as a plausible tail source for future
higher-power devices (PCIe 6.0).  The model lets us run the experiment the
authors could not risk: sweep the operating temperature past the throttle
threshold and watch latency, bandwidth, and tails degrade together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import Table
from repro.hw.cxl import cxl_a
from repro.tools.mio import MioBenchmark

TEMPERATURES_C = (45.0, 70.0, 85.0, 95.0, 105.0)
"""Sweep: ambient, the paper's stress point, the threshold, and beyond."""


@dataclass(frozen=True)
class ThermalPoint:
    """Device behaviour at one temperature."""

    temperature_c: float
    idle_latency_ns: float
    read_bandwidth_gbps: float
    tail_gap_ns: float


@dataclass(frozen=True)
class ThermalResult:
    """The sweep for one device."""

    device: str
    points: Tuple[ThermalPoint, ...]

    def point(self, temperature_c: float) -> ThermalPoint:
        """Look up one temperature."""
        for p in self.points:
            if p.temperature_c == temperature_c:
                return p
        raise KeyError(temperature_c)

    @property
    def paper_stress_test_clean(self) -> bool:
        """No degradation at 70C (the paper's observation)."""
        ambient = self.point(TEMPERATURES_C[0])
        stressed = self.point(70.0)
        return (
            abs(stressed.idle_latency_ns - ambient.idle_latency_ns) < 1.0
            and abs(stressed.tail_gap_ns - ambient.tail_gap_ns) < 15.0
        )


def run(fast: bool = True) -> ThermalResult:
    """Sweep CXL-A's operating temperature."""
    samples = 30_000 if fast else 120_000
    base = cxl_a()
    points = []
    for temp in TEMPERATURES_C:
        device = base.at_temperature(temp)
        mio = MioBenchmark(device, samples=samples)
        result = mio.measure()
        points.append(
            ThermalPoint(
                temperature_c=temp,
                idle_latency_ns=device.idle_latency_ns(),
                read_bandwidth_gbps=device.peak_bandwidth_gbps(),
                tail_gap_ns=result.tail_gap_ns(),
            )
        )
    return ThermalResult(device=base.name, points=tuple(points))


def render(result: ThermalResult) -> str:
    """Temperature sweep table."""
    lines = [f"Ablation: thermal stress sweep ({result.device})"]
    table = Table(["temp C", "idle ns", "read GB/s", "tail gap ns"])
    for p in result.points:
        table.add_row(p.temperature_c, p.idle_latency_ns,
                      p.read_bandwidth_gbps, p.tail_gap_ns)
    lines.append(table.render())
    status = "clean" if result.paper_stress_test_clean else "DEGRADED"
    lines.append(f"70C stress test (paper's §3.2 experiment): {status}")
    return "\n".join(lines)
