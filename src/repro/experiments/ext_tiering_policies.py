"""Extension: Spa-based tiering beats LLC-miss-based tiering (§5.7).

A fleet with contrasting miss economics shares a scarce local-DRAM budget
in front of CXL-B.  The LLC-miss policy spends the budget on the workloads
with the most misses; Spa spends it where misses actually *stall* -- so
prefetch-covered streaming workloads stay on CXL (their misses are cheap)
and dependent-chain workloads get the local DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.core.tiering import (
    TieredSystem,
    TieringOutcome,
    compare_policies,
)
from repro.hw.cxl import cxl_b
from repro.hw.platform import EMR2S
from repro.workloads import workload_by_name

FLEET = (
    # many misses, but prefetch-covered / high MLP (cheap misses):
    "503.bwaves_r", "549.fotonik3d_r", "llama-7b-q8_0-tg", "streamcluster",
    # few-but-expensive misses (dependent chains, tails):
    "redis-ycsb-c", "canneal", "bfs-road", "505.mcf_r",
    # middle of the road:
    "602.gcc_s", "spark-ml-kmeans",
)
"""A fleet with deliberately contrasting miss economics."""

LOCAL_BUDGET_GB = 24.0


@dataclass(frozen=True)
class TieringComparisonResult:
    """Outcome per policy plus the headline comparison."""

    outcomes: Dict[str, TieringOutcome]

    def mean(self, policy: str) -> float:
        """Fleet-mean slowdown for one policy."""
        return self.outcomes[policy].mean_slowdown_pct

    @property
    def spa_advantage_pct(self) -> float:
        """Mean slowdown removed by Spa vs the LLC-miss policy (points)."""
        return self.mean("llc-miss") - self.mean("spa-stalls")


def run(fast: bool = True) -> TieringComparisonResult:
    """Compare the three policies on the contrasting fleet."""
    del fast  # the fleet is small by design
    workloads = tuple(workload_by_name(name) for name in FLEET)
    system = TieredSystem(
        platform=EMR2S, cxl_target=cxl_b(), local_budget_gb=LOCAL_BUDGET_GB
    )
    return TieringComparisonResult(outcomes=compare_policies(workloads, system))


def render(result: TieringComparisonResult) -> str:
    """Per-policy summary plus per-workload placement detail."""
    lines = [
        f"Extension: tiering policies ({LOCAL_BUDGET_GB:.0f} GB local budget, "
        "CXL-B capacity tier)"
    ]
    table = Table(["policy", "fleet mean S%", "worst S%"])
    for name, outcome in result.outcomes.items():
        table.add_row(name, outcome.mean_slowdown_pct,
                      outcome.worst_slowdown_pct)
    lines.append(table.render())
    lines.append(
        f"Spa vs LLC-miss: {result.spa_advantage_pct:+.2f} points of mean "
        "slowdown removed"
    )
    detail = Table(["workload", "llc-miss GB", "spa GB", "llc-miss S%",
                    "spa S%"])
    llc = result.outcomes["llc-miss"]
    spa = result.outcomes["spa-stalls"]
    for name in FLEET:
        a, b = llc.placement(name), spa.placement(name)
        detail.add_row(name, a.local_gb, b.local_gb, a.slowdown_pct,
                       b.slowdown_pct)
    lines.append(detail.render())
    return "\n".join(lines)
