"""Extension: Spa-based cross-device slowdown prediction (§5.7).

Profile every workload once on local DRAM and once on CXL-A, then predict
its slowdown on CXL-B and CXL-D without running there.  The Spa predictor
scales the differential stall components by per-source device properties;
the baseline is the fitted LLC-miss heuristic the paper critiques.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.core.prediction import PredictionValidation, validate_predictions
from repro.cpu.pipeline import run_workload
from repro.experiments.common import workload_population
from repro.hw.cxl import cxl_a, cxl_b, cxl_d
from repro.hw.platform import EMR2S


@dataclass(frozen=True)
class PredictionResult:
    """Validation per prediction target."""

    validations: Dict[str, PredictionValidation]

    def median_error(self, target: str) -> float:
        """Median |predicted - actual| for one target (points)."""
        return self.validations[target].median_error


def run(fast: bool = True) -> PredictionResult:
    """Profile on CXL-A, predict and validate on CXL-B and CXL-D."""
    workloads = workload_population(fast)
    if fast:
        workloads = workloads[::2]
    local = EMR2S.local_target()
    reference = cxl_a()
    targets = {"CXL-B": cxl_b(), "CXL-D": cxl_d()}

    triples = {name: [] for name in targets}
    for w in workloads:
        base = run_workload(w, EMR2S, local)
        ref = run_workload(w, EMR2S, reference)
        for name, target in targets.items():
            actual = run_workload(w, EMR2S, target)
            triples[name].append((base, ref, actual))
    validations = {
        name: validate_predictions(triples[name], reference, targets[name])
        for name in targets
    }
    return PredictionResult(validations=validations)


def render(result: PredictionResult) -> str:
    """Accuracy table: Spa predictor vs the LLC heuristic."""
    lines = ["Extension: cross-device slowdown prediction "
             "(profiled on CXL-A only)"]
    table = Table(["predict", "spa median err", "llc-heuristic err",
                   "spa <=5pp", "spa <=10pp"])
    for name, v in result.validations.items():
        table.add_row(
            name,
            v.median_error,
            v.naive_median_error,
            f"{v.fraction_within(5) * 100:.0f}%",
            f"{v.fraction_within(10) * 100:.0f}%",
        )
    lines.append(table.render())
    return "\n".join(lines)
