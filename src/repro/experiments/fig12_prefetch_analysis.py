"""Figure 12: prefetcher inefficiency under CXL.

(a) Across workloads, the increase in ``L1PF-L3-miss`` tracks the decrease
in ``L2PF-L3-miss`` almost exactly (y = x, Pearson ~0.99) with no change in
``L2PF-L3-hit`` -- the Figure 13 mechanism's counter signature.
(b) Per-workload L2/LLC cache slowdown correlates with the L2 prefetcher's
coverage drop (paper reports 2-38% coverage reductions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import Table
from repro.analysis.stats import pearson
from repro.core.melody import Melody
from repro.core.prefetch import PrefetchShift, shift_scatter
from repro.experiments.common import campaign_melody, workload_population

MIN_SHIFT_EVENTS = 1e5
"""Scatter points need a measurable shift (the paper's axes start at 1e6)."""

FIG12B_WORKLOADS = (
    "503.bwaves_r", "549.fotonik3d_r", "554.roms_r", "602.gcc_s",
    "603.bwaves_s", "607.cactuBSSN_s", "619.lbm_s", "649.fotonik3d_s",
    "654.roms_s",
    "bc-web", "bfs-twitter", "bfs-urand", "bfs-web", "cc-twitter",
    "cc-web", "pr-web", "sssp-web", "tc-kron", "tc-twitter",
)
"""The workloads Figure 12b names."""


@dataclass(frozen=True)
class PrefetchAnalysisResult:
    """Scatter points and the named-workload coverage table."""

    shifts: List[PrefetchShift]
    scatter: List[Tuple[float, float]]  # (l2pf decrease, l1pf increase)
    pearson_r: float
    named: List[PrefetchShift]


def run(fast: bool = True) -> PrefetchAnalysisResult:
    """Compute the shift for every workload pair on CXL-B."""
    melody = campaign_melody()
    campaign = Melody.device_campaign(
        workloads=workload_population(fast), devices=("CXL-B",),
        include_numa=False,
    )
    result = melody.run(campaign)
    shifts = shift_scatter(result.pairs("CXL-B"))
    scatter = [
        (s.l2pf_l3_miss_decrease, s.l1pf_l3_miss_increase)
        for s in shifts
        if s.l2pf_l3_miss_decrease > MIN_SHIFT_EVENTS
    ]
    xs = [p[0] for p in scatter]
    ys = [p[1] for p in scatter]
    r = pearson(xs, ys) if len(scatter) >= 2 else float("nan")
    named = [s for s in shifts if s.workload in FIG12B_WORKLOADS]
    return PrefetchAnalysisResult(
        shifts=shifts, scatter=scatter, pearson_r=r, named=named
    )


def render(result: PrefetchAnalysisResult) -> str:
    """Scatter stats plus the Figure 12b table."""
    lines = [
        "Figure 12a: L1PF-L3-miss increase vs L2PF-L3-miss decrease",
        f"  points: {len(result.scatter)}, Pearson r = {result.pearson_r:.4f} "
        "(paper: 0.99, y=x)",
    ]
    table = Table(["workload", "cov drop pp", "cache slowdown %",
                   "shift ratio"])
    for s in sorted(result.named, key=lambda s: s.workload):
        table.add_row(s.workload, s.coverage_drop_pct, s.l2_slowdown_pct,
                      s.shift_ratio)
    lines.append("Figure 12b: cache slowdown vs L2PF coverage drop")
    lines.append(table.render())
    return "\n".join(lines)
