"""Ablation: the paper's DIMM-fairness control experiment (§3.2).

A possible objection to the tail finding: CXL devices have only 1-2 DDR
channels while the servers have 8 -- maybe the tails are just channel
starvation.  The paper's control: *"by reducing the number of server DIMMs
per-socket from 8 to 2 to match that of CXL devices ... we consistently
observe CXL tail latencies while not in local/NUMA."*

We rebuild the local target with 2 channels (bandwidth scaled accordingly)
and repeat the MIO tail measurement under matched utilization: the
channel-starved local DRAM keeps its small, stable tails; the CXL tails
remain.  Channel count is not the explanation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.hw.dram import DDR5, DramBackend
from repro.hw.imc import LocalDram
from repro.hw.cxl import cxl_b
from repro.hw.platform import EMR2S
from repro.tools.mio import MioBenchmark
from repro.tools.trafficgen import TrafficLoad

MATCHED_UTILIZATION = 0.5
"""Background utilization applied identically to every target."""


def _two_dimm_local() -> LocalDram:
    """EMR local DRAM reduced to 2 channels (bandwidth scaled 8 -> 2)."""
    return LocalDram(
        name="EMR2S-Local-2DIMM",
        capacity_gb=32,
        idle_latency_ns=EMR2S.local_latency_ns,
        read_bandwidth_gbps=EMR2S.local_bandwidth_gbps * 2 / 8,
        dram=DramBackend(timings=DDR5, channels=2),
    )


@dataclass(frozen=True)
class DimmFairnessResult:
    """Tail gaps at idle and at matched utilization."""

    idle_gap_ns: Dict[str, float]
    loaded_gap_ns: Dict[str, float]

    def local_stable(self, threshold_ns: float = 120.0) -> bool:
        """2-DIMM local DRAM keeps small tails even under load."""
        return self.loaded_gap_ns["EMR2S-Local-2DIMM"] < threshold_ns

    def cxl_tails_remain(self) -> bool:
        """CXL-B's loaded tail dwarfs the channel-matched local one."""
        return (
            self.loaded_gap_ns["CXL-B"]
            > 3 * self.loaded_gap_ns["EMR2S-Local-2DIMM"]
        )


def run(fast: bool = True) -> DimmFairnessResult:
    """Measure tails on 8-DIMM local, 2-DIMM local, and CXL-B."""
    samples = 30_000 if fast else 150_000
    targets = {
        "EMR2S-Local (8ch)": EMR2S.local_target(),
        "EMR2S-Local-2DIMM": _two_dimm_local(),
        "CXL-B": cxl_b(),
    }
    idle = {}
    loaded = {}
    for label, target in targets.items():
        mio = MioBenchmark(target, samples=samples)
        idle[label] = mio.measure().tail_gap_ns()
        background = TrafficLoad(
            n_threads=8,
            read_fraction=1.0,
            bandwidth_gbps=MATCHED_UTILIZATION * target.peak_bandwidth_gbps(),
            utilization=MATCHED_UTILIZATION,
        )
        loaded[label] = mio.measure(background=background).tail_gap_ns()
    return DimmFairnessResult(idle_gap_ns=idle, loaded_gap_ns=loaded)


def render(result: DimmFairnessResult) -> str:
    """Tail-gap table for the fairness control."""
    lines = ["Ablation: DIMM-count fairness control (2 channels vs CXL)"]
    table = Table(["target", "idle gap ns", f"gap @{MATCHED_UTILIZATION:.0%}"])
    for label in result.idle_gap_ns:
        table.add_row(label, result.idle_gap_ns[label],
                      result.loaded_gap_ns[label])
    lines.append(table.render())
    lines.append(
        "channel-matched local DRAM stays stable: "
        + ("yes" if result.local_stable() else "NO")
    )
    lines.append(
        "CXL tails survive the control: "
        + ("yes" if result.cxl_tails_remain() else "NO")
    )
    return "\n".join(lines)
