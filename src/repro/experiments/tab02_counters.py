"""Table 2: the nine CPU counters Spa relies on.

Beyond listing the events, the driver validates the Figure 10 containment
semantics on a live run: P1 >= P3 >= P4 >= P5 on every phase of every
sampled workload -- the structural property Spa's differencing depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import Table
from repro.cpu.counters import COUNTER_DESCRIPTIONS, COUNTER_NAMES
from repro.cpu.pipeline import run_workload
from repro.experiments.common import standard_targets, workload_population
from repro.hw.platform import EMR2S


@dataclass(frozen=True)
class CounterTableResult:
    """The event list plus the containment check outcome."""

    events: Tuple[Tuple[str, str], ...]  # (name, description)
    containment_checked: int  # runs verified
    containment_holds: bool


def run(fast: bool = True) -> CounterTableResult:
    """List the events and check containment on a workload sample."""
    workloads = workload_population(fast=True)[:: 6 if fast else 1]
    targets = standard_targets()
    checked = 0
    holds = True
    for workload in workloads[:10]:
        for target in (targets["Local"], targets["CXL-B"]):
            counters = run_workload(workload, EMR2S, target).counters
            ok = (
                counters.bound_on_loads
                >= counters.stalls_l1d_miss
                >= counters.stalls_l2_miss
                >= counters.stalls_l3_miss
                >= 0
            )
            holds = holds and ok
            checked += 1
    events = tuple((name, COUNTER_DESCRIPTIONS[name]) for name in COUNTER_NAMES)
    return CounterTableResult(
        events=events, containment_checked=checked, containment_holds=holds
    )


def render(result: CounterTableResult) -> str:
    """The Table 2 listing."""
    table = Table(["#", "name", "description"])
    for i, (name, description) in enumerate(result.events, start=1):
        table.add_row(f"P{i}", name, description)
    status = "holds" if result.containment_holds else "VIOLATED"
    return (
        "Table 2: CPU counters for Spa\n"
        + table.render()
        + f"\nFigure 10 containment (P1>=P3>=P4>=P5): {status} "
        f"on {result.containment_checked} runs"
    )
