"""Figure 6: latency CDFs with hardware prefetchers enabled.

With prefetchers on, covered chase loads collapse toward cache-hit
latency, so medians drop dramatically everywhere -- but CXL devices keep
significant high-percentile tails: prefetching hides average latency, not
excursions (Finding #1d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.experiments.common import measurement_targets
from repro.tools.mio import MioBenchmark, MioResult

THREADS = (1, 8, 32)


@dataclass(frozen=True)
class PrefetchCdfResult:
    """Prefetchers-on MIO results per target per thread count."""

    results: Dict[str, Dict[int, MioResult]]

    def median(self, target: str, threads: int = 1) -> float:
        """p50 with prefetchers on."""
        return self.results[target][threads].percentile(50)

    def p999(self, target: str, threads: int = 1) -> float:
        """p99.9 with prefetchers on."""
        return self.results[target][threads].percentile(99.9)


def run(fast: bool = True) -> PrefetchCdfResult:
    """Measure prefetchers-on CDFs on every target."""
    samples = 30_000 if fast else 150_000
    threads = (1, 8) if fast else THREADS
    results: Dict[str, Dict[int, MioResult]] = {}
    for target in measurement_targets():
        mio = MioBenchmark(target, samples=samples)
        results[target.name] = {
            n: mio.measure(n_threads=n, prefetchers_on=True) for n in threads
        }
    return PrefetchCdfResult(results=results)


def render(result: PrefetchCdfResult) -> str:
    """p50 / p99 / p99.9 with prefetchers on."""
    table = Table(["target", "threads", "p50", "p99", "p99.9"])
    for name, series in result.results.items():
        for n, r in sorted(series.items()):
            table.add_row(name, n, r.percentile(50), r.percentile(99),
                          r.percentile(99.9))
    return (
        "Figure 6: latency CDFs with prefetchers ON "
        "(medians collapse, CXL tails survive)\n" + table.render()
    )
