"""Ablation: hardware prefetchers on/off (validates Finding #4).

The paper validated its cache-slowdown attribution by disabling the L1/L2
prefetchers: cache stalls vanished (S_L1 = S_L2 = S_L3 = 0) and the
would-be-prefetched lines became LLC demand misses (slowdowns moved to
S_DRAM) -- while overall performance dropped (e.g. 603.bwaves lost 50%).
The ablation reruns that experiment across a workload sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import Table
from repro.core.spa import spa_analyze
from repro.cpu.pipeline import PipelineConfig, run_workload
from repro.experiments.common import workload_population
from repro.hw.cxl import cxl_b
from repro.hw.platform import EMR2S

HEADLINE_WORKLOAD = "603.bwaves_s"
"""The workload the paper quotes: ~50% loss with prefetchers disabled."""


@dataclass(frozen=True)
class PrefetchAblationRow:
    """One workload's on/off comparison."""

    workload: str
    cache_slowdown_on: float
    cache_slowdown_off: float
    dram_slowdown_on: float
    dram_slowdown_off: float
    perf_loss_from_disabling_pct: float


@dataclass(frozen=True)
class PrefetchAblationResult:
    """Rows per sampled workload."""

    rows: Tuple[PrefetchAblationRow, ...]

    def row(self, workload: str) -> PrefetchAblationRow:
        """Look up one workload."""
        for r in self.rows:
            if r.workload == workload:
                return r
        raise KeyError(workload)

    @property
    def max_cache_slowdown_off(self) -> float:
        """Largest cache slowdown with prefetchers off (should be ~0)."""
        return max(abs(r.cache_slowdown_off) for r in self.rows)


def run(fast: bool = True) -> PrefetchAblationResult:
    """Run the sample with prefetchers enabled and disabled."""
    workloads = [w for w in workload_population(fast)[::6]]
    names = {w.name for w in workloads}
    if HEADLINE_WORKLOAD not in names:
        from repro.workloads import workload_by_name

        workloads.append(workload_by_name(HEADLINE_WORKLOAD))
    local = EMR2S.local_target()
    device = cxl_b()
    rows = []
    for workload in workloads:
        on_cfg = PipelineConfig(prefetchers_enabled=True)
        off_cfg = PipelineConfig(prefetchers_enabled=False)
        base_on = run_workload(workload, EMR2S, local, on_cfg)
        cxl_on = run_workload(workload, EMR2S, device, on_cfg)
        base_off = run_workload(workload, EMR2S, local, off_cfg)
        cxl_off = run_workload(workload, EMR2S, device, off_cfg)
        b_on = spa_analyze(base_on, cxl_on)
        b_off = spa_analyze(base_off, cxl_off)
        # The paper's headline loss (603.bwaves ~50%) is on local DRAM,
        # where demand stalls dominate; on a bandwidth-saturated CXL device
        # the floor binds either way and prefetchers matter less.
        perf_loss = (base_off.cycles / base_on.cycles - 1.0) * 100.0
        rows.append(
            PrefetchAblationRow(
                workload=workload.name,
                cache_slowdown_on=b_on.cache,
                cache_slowdown_off=b_off.cache,
                dram_slowdown_on=b_on.components["dram"],
                dram_slowdown_off=b_off.components["dram"],
                perf_loss_from_disabling_pct=perf_loss,
            )
        )
    return PrefetchAblationResult(rows=tuple(rows))


def render(result: PrefetchAblationResult) -> str:
    """Summary: cache stalls vanish, DRAM stalls absorb them."""
    lines = ["Ablation: prefetchers on vs off (CXL-B)"]
    table = Table(["workload", "cache S% on", "cache S% off", "dram S% on",
                   "dram S% off", "perf loss off %"])
    interesting = sorted(result.rows, key=lambda r: -r.cache_slowdown_on)
    for r in interesting[:10]:
        table.add_row(r.workload, r.cache_slowdown_on, r.cache_slowdown_off,
                      r.dram_slowdown_on, r.dram_slowdown_off,
                      r.perf_loss_from_disabling_pct)
    lines.append(table.render())
    lines.append(
        f"max |cache slowdown| with prefetchers off: "
        f"{result.max_cache_slowdown_off:.2f}% (Finding #4 expects ~0)"
    )
    headline = result.row(HEADLINE_WORKLOAD)
    lines.append(
        f"{HEADLINE_WORKLOAD}: disabling prefetchers costs "
        f"{headline.perf_loss_from_disabling_pct:.0f}% performance "
        "(paper: ~50%)"
    )
    return "\n".join(lines)
