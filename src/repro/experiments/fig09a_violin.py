"""Figure 9a: violin plots of slowdowns across all 11 latency setups.

The full {SKX, SPR, EMR} x {NUMA, CXL} spectrum from 140 to 410 ns.
Headline claims at the 410 ns extreme: slowdowns far worse than every
other setup, yet 16% of workloads still under 10% and 30% under 50%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.analysis.report import Table
from repro.analysis.stats import ViolinSummary, violin_summary
from repro.experiments.common import campaign_melody, workload_population


@dataclass(frozen=True)
class ViolinResult:
    """Violin summaries per setup, in rising-latency order."""

    summaries: Tuple[ViolinSummary, ...]
    slowdowns: Dict[str, np.ndarray]

    def fraction_below(self, setup: str, threshold: float) -> float:
        """Fraction of workloads under ``threshold`` on one setup."""
        return float(np.mean(self.slowdowns[setup] < threshold))


def run(fast: bool = True) -> ViolinResult:
    """Run the full latency spectrum."""
    melody = campaign_melody()
    workloads = workload_population(fast)
    results = melody.run_latency_spectrum(workloads)
    summaries = []
    slowdowns = {}
    for label, result in results.items():
        values = result.slowdowns(result.target_names()[0])
        slowdowns[label] = values
        summaries.append(violin_summary(label, values))
    return ViolinResult(summaries=tuple(summaries), slowdowns=slowdowns)


def render(result: ViolinResult) -> str:
    """Violin quartile table plus the 410 ns headline fractions."""
    table = Table(["setup", "n", "min", "q1", "median", "q3", "max", "mean"])
    for s in result.summaries:
        table.add_row(s.label, s.count, s.minimum, s.q1, s.median, s.q3,
                      s.maximum, s.mean)
    lines = ["Figure 9a: slowdown violins across 11 setups", table.render()]
    lines.append(
        f"  SKX-410ns: <10%: {result.fraction_below('SKX-410ns', 10) * 100:.0f}% "
        f"(paper 16%), <50%: {result.fraction_below('SKX-410ns', 50) * 100:.0f}% "
        f"(paper 30%)"
    )
    return "\n".join(lines)
