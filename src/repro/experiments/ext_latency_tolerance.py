"""Extension: CPU/workload tolerance across the continuous latency axis.

Finding #2's first bullet: *"Workload performance deteriorates
super-linearly with increasing CXL latency; more importantly, the relative
slowdowns exceed the rate of the latency increases."*  The paper samples 7
discrete latency configurations; the model lets us sweep the axis
continuously: NUMA-emulated targets from 140 to 500 ns at fixed bandwidth,
one slowdown curve per sensitivity class.

The super-linearity check: for each workload, compare the slowdown growth
ratio against the latency-delta growth ratio between the 205 ns and 410 ns
points -- a ratio above 1 means the workload loses performance faster than
the latency grows (ROB-occupancy MLP collapse in the model's terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import Table
from repro.cpu.pipeline import run_workload
from repro.hw.platform import EMR2S
from repro.hw.numa import NumaHop, NumaMemory
from repro.workloads import workload_by_name

LATENCIES_NS = (140.0, 170.0, 205.0, 240.0, 280.0, 330.0, 410.0, 500.0)
PROBE_WORKLOADS = (
    "redis-ycsb-c",     # latency-critical cloud
    "605.mcf_s",        # LLC-miss heavy
    "bfs-twitter",      # graph demand reads
    "gpt2-large",       # ML gathers
    "compress-zstd",    # compute-bound control
)


def _emulated_target(latency_ns: float):
    """A NUMA-emulated latency point at fixed (ample) bandwidth."""
    return NumaMemory(
        local=EMR2S.local_target(),
        hop=NumaHop(latency_ns=latency_ns - EMR2S.local_latency_ns),
        name=f"emulated-{latency_ns:.0f}ns",
        idle_latency_ns=latency_ns,
        read_bandwidth_gbps=EMR2S.remote_bandwidth_gbps,
    )


@dataclass(frozen=True)
class ToleranceResult:
    """Slowdown curves per workload across the latency axis."""

    curves: Dict[str, Dict[float, float]]  # workload -> latency -> S%

    def superlinearity(self, workload: str) -> float:
        """Slowdown growth vs latency growth, 205 ns -> 410 ns (>1 = super)."""
        curve = self.curves[workload]
        local = EMR2S.local_latency_ns
        lat_ratio = (410.0 - local) / (205.0 - local)
        s_lo = max(curve[205.0], 0.3)
        return (curve[410.0] / s_lo) / lat_ratio

    def monotone(self, workload: str) -> bool:
        """Slowdown never decreases as latency rises."""
        values = [self.curves[workload][l] for l in LATENCIES_NS]
        return all(b >= a - 0.5 for a, b in zip(values, values[1:]))


def run(fast: bool = True) -> ToleranceResult:
    """Sweep the probe workloads across the latency axis."""
    del fast
    local = EMR2S.local_target()
    curves: Dict[str, Dict[float, float]] = {}
    for name in PROBE_WORKLOADS:
        workload = workload_by_name(name)
        base = run_workload(workload, EMR2S, local)
        curves[name] = {}
        for latency in LATENCIES_NS:
            result = run_workload(workload, EMR2S, _emulated_target(latency))
            curves[name][latency] = result.slowdown_vs(base)
    return ToleranceResult(curves=curves)


def render(result: ToleranceResult) -> str:
    """Slowdown-vs-latency table plus the super-linearity factors."""
    lines = ["Extension: slowdown vs memory latency (fixed bandwidth)"]
    table = Table(
        ["workload"] + [f"{l:.0f}ns" for l in LATENCIES_NS] + ["superlin"]
    )
    for name, curve in result.curves.items():
        table.add_row(
            name,
            *[curve[l] for l in LATENCIES_NS],
            f"{result.superlinearity(name):.2f}",
        )
    lines.append(table.render())
    lines.append(
        "superlin > 1: the slowdown outgrows the latency increase "
        "(Finding #2); the compute-bound control stays flat"
    )
    return "\n".join(lines)
