"""Figure 5: latency-bandwidth curves under read/write ratios 1:0 .. 1:1.

The defining shapes: local DRAM peaks read-only and degrades smoothly with
writes; NUMA and ASIC CXL devices peak at *mixed* ratios (full-duplex
links); the FPGA CXL-C behaves like a shared bus, peaking read-only; peak
ratio differs per device (~2-3:1 for CXL-A, 3:1-4:1 for CXL-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import Table
from repro.experiments.common import measurement_targets
from repro.tools.mlc import MemoryLatencyChecker, RW_RATIOS

FAST_DELAYS = (0, 300, 1000, 4000, 20000)


@dataclass(frozen=True)
class RwRatioResult:
    """Peak bandwidth per ratio per target, plus full curves."""

    peaks: Dict[str, Dict[str, float]]
    curves: Dict[str, Dict[str, Tuple]]

    def best_ratio(self, target: str) -> str:
        """The ratio achieving peak bandwidth for one target."""
        series = self.peaks[target]
        return max(series, key=lambda k: series[k])


def run(fast: bool = True) -> RwRatioResult:
    """Sweep all six ratios on every target."""
    mlc = MemoryLatencyChecker()
    delays = FAST_DELAYS if fast else None
    peaks: Dict[str, Dict[str, float]] = {}
    curves: Dict[str, Dict[str, Tuple]] = {}
    for target in measurement_targets():
        peaks[target.name] = mlc.peak_bandwidth_by_ratio(target)
        if delays is None:
            curves[target.name] = mlc.rw_ratio_curves(target)
        else:
            curves[target.name] = mlc.rw_ratio_curves(target, delays_cycles=delays)
    return RwRatioResult(peaks=peaks, curves=curves)


def render(result: RwRatioResult) -> str:
    """Peak-bandwidth table with best ratio per target."""
    ratios = list(RW_RATIOS)
    table = Table(["target"] + ratios + ["best"])
    for name, series in result.peaks.items():
        table.add_row(name, *[series[r] for r in ratios], result.best_ratio(name))
    return (
        "Figure 5: peak bandwidth (GB/s) by read:write ratio\n" + table.render()
    )
