"""Ablation: the tail model causes the CXL+NUMA anomaly (DESIGN.md hook).

Swap the CXL+NUMA composition's tail model for the idealised NO_TAIL
controller and re-run the Figure 8d experiment.  With tails removed the
520.omnetpp anomaly disappears -- direct evidence (inside the model, as the
paper's intensity-scaling experiment is outside it) that tail latency, not
mean latency or bandwidth, causes the 2.9x collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.cpu.pipeline import run_workload
from repro.hw.cxl import cxl_a
from repro.hw.platform import EMR2S
from repro.hw.tail import NO_TAIL
from repro.hw.topology import ComposedTarget, remote_view
from repro.workloads import workload_by_name

WORKLOADS = ("520.omnetpp_r", "620.omnetpp_s", "redis-ycsb-c", "canneal")
"""Tail-sensitive workloads the ablation probes."""


@dataclass(frozen=True)
class TailAblationResult:
    """Per-workload slowdowns with and without the tail model."""

    with_tails: Dict[str, float]
    without_tails: Dict[str, float]

    def anomaly_removed(self, workload: str) -> float:
        """Slowdown points attributable to tails alone."""
        return self.with_tails[workload] - self.without_tails[workload]


def run(fast: bool = True) -> TailAblationResult:
    """Run the probe workloads on CXL+NUMA with and without tails."""
    del fast
    local = EMR2S.local_target()
    remote = remote_view(cxl_a())
    no_tail_remote = ComposedTarget(
        remote,
        name=f"{remote.name}-no-tail",
        idle_latency_ns=remote.idle_latency_ns(),
        bandwidth=remote.bandwidth_model(),
        queue=remote.queue_model(),
        tail=NO_TAIL,
    )
    with_tails = {}
    without_tails = {}
    for name in WORKLOADS:
        workload = workload_by_name(name)
        base = run_workload(workload, EMR2S, local)
        with_tails[name] = run_workload(
            workload, EMR2S, remote
        ).slowdown_vs(base)
        without_tails[name] = run_workload(
            workload, EMR2S, no_tail_remote
        ).slowdown_vs(base)
    return TailAblationResult(with_tails=with_tails,
                              without_tails=without_tails)


def render(result: TailAblationResult) -> str:
    """Side-by-side slowdown table."""
    lines = ["Ablation: CXL+NUMA tail model on/off (same mean latency & BW)"]
    table = Table(["workload", "with tails S%", "no tails S%",
                   "tail-attributable"])
    for name in result.with_tails:
        table.add_row(name, result.with_tails[name],
                      result.without_tails[name],
                      result.anomaly_removed(name))
    lines.append(table.render())
    return "\n".join(lines)
