"""Figure 16: period-based slowdown time series.

Per-instruction-period Spa breakdowns for 602.gcc_s, 605.mcf_s, and
631.deepsjeng_s on CXL.  Claims: 602.gcc's first two thirds run well above
its ~20% whole-run average; 605.mcf and 631.deepsjeng have similar
averages but very different temporal structure (mcf bursts, deepsjeng
oscillates gently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.report import Table
from repro.core.period import PeriodBreakdown, mean_slowdown, period_analysis
from repro.cpu.pipeline import run_workload
from repro.experiments.common import standard_targets
from repro.hw.platform import EMR2S
from repro.workloads import workload_by_name

WORKLOADS = ("602.gcc_s", "605.mcf_s", "631.deepsjeng_s")


@dataclass(frozen=True)
class PeriodResult:
    """Per-workload period series on CXL-A."""

    series: Dict[str, List[PeriodBreakdown]]

    def mean(self, workload: str) -> float:
        """Whole-run average slowdown from the periods."""
        return mean_slowdown(self.series[workload])

    def burstiness(self, workload: str) -> float:
        """Std-dev of per-period slowdown (temporal variation)."""
        values = [p.actual_pct for p in self.series[workload]]
        return float(np.std(values))


def run(fast: bool = True) -> PeriodResult:
    """Run the three workloads and convert to instruction periods."""
    targets = standard_targets()
    local, cxl = targets["Local"], targets["CXL-A"]
    period = 5e7 if fast else 2.5e7
    series = {}
    for name in WORKLOADS:
        workload = workload_by_name(name)
        base = run_workload(workload, EMR2S, local)
        run_cxl = run_workload(workload, EMR2S, cxl)
        series[name] = period_analysis(
            base, run_cxl, period_instructions=period, cxl_target=cxl
        )
    return PeriodResult(series=series)


def render(result: PeriodResult) -> str:
    """Sparkline-style period series plus summary stats."""
    lines = ["Figure 16: period-based slowdown breakdown (CXL-A)"]
    for name, periods in result.series.items():
        values = [p.actual_pct for p in periods]
        peak = max(max(values), 1.0)
        blocks = " .:-=+*#%@"
        spark = "".join(
            blocks[min(len(blocks) - 1, int(v / peak * (len(blocks) - 1)))]
            if v > 0 else " "
            for v in values
        )
        lines.append(
            f"  {name:18s} mean={result.mean(name):5.1f}% "
            f"sd={result.burstiness(name):4.1f} |{spark}|"
        )
    table = Table(["workload", "periods", "mean %", "max %",
                   "dominant source (peak period)"])
    for name, periods in result.series.items():
        peak_period = max(periods, key=lambda p: p.actual_pct)
        dominant = max(
            peak_period.components, key=lambda k: peak_period.components[k]
        )
        table.add_row(name, len(periods), result.mean(name),
                      peak_period.actual_pct, dominant)
    lines.append(table.render())
    return "\n".join(lines)
