"""Figure 3c: (p99.9 - p50) latency gap versus bandwidth utilization.

Background read threads load the device while a foreground thread
pointer-chases.  Local/NUMA stay flat to 90%+ utilization; CXL-A's gap
starts growing around 30% utilization and CXL-D's around 70%; CXL-B/C
are elevated throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.experiments.common import measurement_targets
from repro.tools.mio import MioBenchmark

UTILIZATIONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
FAST_UTILIZATIONS = (0.0, 0.3, 0.5, 0.7, 0.9)


@dataclass(frozen=True)
class TailVsBandwidth:
    """Per-target tail gap across the utilization sweep."""

    gaps: Dict[str, Dict[float, float]]

    def onset_utilization(self, target: str, rise_ns: float = 40.0) -> float:
        """First utilization where the gap exceeds idle gap + ``rise_ns``."""
        series = self.gaps[target]
        idle_gap = series[min(series)]
        for util in sorted(series):
            if series[util] >= idle_gap + rise_ns:
                return util
        return 1.0


def run(fast: bool = True) -> TailVsBandwidth:
    """Sweep background utilization on every target."""
    utils = FAST_UTILIZATIONS if fast else UTILIZATIONS
    samples = 30_000 if fast else 150_000
    gaps = {}
    for target in measurement_targets():
        mio = MioBenchmark(target, samples=samples)
        gaps[target.name] = mio.tail_vs_utilization(utils)
    return TailVsBandwidth(gaps=gaps)


def render(result: TailVsBandwidth) -> str:
    """Gap table: rows = targets, columns = utilization."""
    utils = sorted(next(iter(result.gaps.values())))
    table = Table(["target"] + [f"{u * 100:.0f}%" for u in utils] + ["onset"])
    for name, series in result.gaps.items():
        onset = result.onset_utilization(name)
        table.add_row(
            name,
            *[series[u] for u in utils],
            f"{onset * 100:.0f}%" if onset < 1.0 else "stable",
        )
    return (
        "Figure 3c: (p99.9-p50) latency gap (ns) vs bandwidth utilization\n"
        + table.render()
    )
