"""Extension: CPMU white-box tail attribution (the paper's future work).

§3.2 proposes breaking down each request's latency across the CXL link,
the MC, and the DRAM chips via the CXL 3.0 CPMU.  Our CPMU model does
exactly that: at a moderate load it attributes each device's p99 tail to
its dominant physical source -- the FPGA CXL-C's to its memory controller,
local-DRAM-like devices' to DRAM chip effects (refresh/row conflicts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.hw.cxl import CXL_DEVICES
from repro.hw.cxl.cpmu import Cpmu, CpmuTrace

OPERATING_LOAD_GBPS = 10.0


@dataclass(frozen=True)
class CpmuResult:
    """Per-device traces and their tail attributions."""

    traces: Dict[str, CpmuTrace]
    attributions: Dict[str, Dict[str, float]]  # device -> component share

    def dominant(self, device: str) -> str:
        """Dominant tail source for a device."""
        shares = self.attributions[device]
        return max(shares, key=lambda k: shares[k])


def run(fast: bool = True) -> CpmuResult:
    """Sample every device through the CPMU and attribute its tail."""
    n = 40_000 if fast else 200_000
    traces = {}
    attributions = {}
    for name, factory in CXL_DEVICES.items():
        device = factory()
        cpmu = Cpmu(device)
        trace = cpmu.sample(n, load_gbps=OPERATING_LOAD_GBPS)
        traces[name] = trace
        attributions[name] = trace.tail_attribution(99.0)
    return CpmuResult(traces=traces, attributions=attributions)


def render(result: CpmuResult) -> str:
    """Mean component breakdown + tail attribution per device."""
    lines = [
        "Extension: CPMU white-box latency attribution "
        f"(@{OPERATING_LOAD_GBPS:.0f} GB/s)"
    ]
    table = Table(["device", "host", "link", "MC", "dram", "queue",
                   "tail source"])
    for name, trace in result.traces.items():
        b = trace.mean_breakdown_ns()
        table.add_row(
            name, b["host"], b["link"], b["controller"], b["dram"],
            b["queueing"], result.dominant(name),
        )
    lines.append(table.render())
    return "\n".join(lines)
