"""Figure 13: the cache-slowdown causal chain, quantified stage by stage.

The paper presents Figure 13 as a diagram:

    (1) CXL's longer latency  ->  (2) reduced L2PF timeliness & coverage
    ->  (3) more aggressive L1PF fetching from memory
    ->  (4) increasing # of delayed L1 hits  ->  cache stalls

This experiment instantiates the diagram with measurements: for one
prefetch-heavy workload on every target, each stage's quantity is read off
the model/counters -- device latency, prefetch lateness, surviving L2PF
coverage, the L1PF-L3-miss shift, and the resulting Spa cache slowdown.
Every arrow in the diagram becomes a monotone relationship in the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import Table
from repro.core.prefetch import prefetch_shift
from repro.core.spa import spa_analyze
from repro.cpu.pipeline import run_workload
from repro.experiments.common import measurement_targets
from repro.hw.platform import EMR2S
from repro.workloads import workload_by_name

WORKLOAD = "649.fotonik3d_s"
"""A prefetch-dependent streaming workload (named in Figure 12b)."""


@dataclass(frozen=True)
class MechanismStage:
    """The Figure 13 quantities on one target."""

    target: str
    latency_ns: float  # stage 1
    late_fraction: float  # stage 2 (timeliness loss)
    coverage: float  # stage 2 (surviving coverage)
    l1pf_shift_events: float  # stage 3
    cache_slowdown_pct: float  # stage 4 (the outcome)


@dataclass(frozen=True)
class MechanismResult:
    """One row per target, ordered by latency."""

    workload: str
    stages: List[MechanismStage]

    def monotone(self, attribute: str, increasing: bool = True,
                 tolerance: float = 0.0) -> bool:
        """Whether a stage quantity is monotone along the latency axis."""
        values = [getattr(s, attribute) for s in self.stages]
        pairs = zip(values, values[1:])
        if increasing:
            return all(b >= a - tolerance for a, b in pairs)
        return all(b <= a + tolerance for a, b in pairs)


def run(fast: bool = True) -> MechanismResult:
    """Measure every Figure 13 stage on every target."""
    del fast
    workload = workload_by_name(WORKLOAD)
    local = EMR2S.local_target()
    base = run_workload(workload, EMR2S, local)
    stages = []
    for target in measurement_targets():
        if target.name.endswith("Local"):
            continue
        result = run_workload(workload, EMR2S, target)
        shift = prefetch_shift(base, result)
        breakdown = spa_analyze(base, result)
        op = result.phases[0].operating_point
        stages.append(
            MechanismStage(
                target=target.name,
                latency_ns=result.mean_latency_ns,
                late_fraction=op.prefetch.late_fraction,
                coverage=op.prefetch.coverage,
                l1pf_shift_events=shift.l1pf_l3_miss_increase,
                cache_slowdown_pct=breakdown.cache,
            )
        )
    stages.sort(key=lambda s: s.latency_ns)
    return MechanismResult(workload=WORKLOAD, stages=stages)


def render(result: MechanismResult) -> str:
    """One row per target, each Figure 13 stage a column."""
    lines = [f"Figure 13: the cache-slowdown mechanism ({result.workload})"]
    table = Table(["target", "(1) lat ns", "(2) late frac", "(2) coverage",
                   "(3) L1PF shift", "(4) cache S%"])
    for s in result.stages:
        table.add_row(s.target, s.latency_ns, s.late_fraction, s.coverage,
                      s.l1pf_shift_events, s.cache_slowdown_pct)
    lines.append(table.render())
    checks = {
        "lateness grows with latency": result.monotone("late_fraction"),
        "coverage falls with latency": result.monotone(
            "coverage", increasing=False
        ),
        "L1PF shift grows with latency": result.monotone(
            "l1pf_shift_events", tolerance=1e5
        ),
    }
    for claim, holds in checks.items():
        lines.append(f"  {claim}: {'holds' if holds else 'VIOLATED'}")
    return "\n".join(lines)
