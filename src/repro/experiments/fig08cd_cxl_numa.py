"""Figure 8c/d: CXL+NUMA versus 2-hop NUMA, and the 520.omnetpp anomaly.

(c) Despite 2-hop NUMA's nominally worse latency/bandwidth (410 ns,
7 GB/s), workloads fare *worse* on CXL-A behind one NUMA hop -- the
UPI/CXL interaction produces tail-latency congestion episodes.
(d) 520.omnetpp: <5% slowdown on every local CXL device, ~2.9x under
CXL+NUMA; its sampled latency CDF grows a long tail to ~800 ns at p98,
and reducing workload intensity to 1/2 and 1/4 shrinks both the tail and
the slowdown -- the paper's direct evidence that tails cause the anomaly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.report import Table
from repro.core.melody import Campaign
from repro.cpu.pipeline import run_workload, sample_run_latencies
from repro.experiments.common import campaign_melody, workload_population
from repro.hw.cxl import cxl_a
from repro.hw.platform import EMR2S, SKX8S
from repro.hw.topology import remote_view
from repro.workloads import workload_by_name


@dataclass(frozen=True)
class CxlNumaResult:
    """Panels c and d."""

    slowdowns: Dict[str, np.ndarray]  # setup -> per-workload slowdowns
    omnetpp: Dict[str, float]  # setup -> slowdown
    omnetpp_intensity: Dict[str, float]  # intensity label -> CXL+NUMA slowdown
    omnetpp_latency_percentiles: Dict[str, Dict[str, float]]


def run(fast: bool = True) -> CxlNumaResult:
    """Run the three setups over the population and drill into omnetpp."""
    melody = campaign_melody()
    workloads = workload_population(fast)
    # The paper's panel (c) compares 121 latency-focused workloads: the
    # comparison is about latency/tail behaviour, so bandwidth-saturating
    # workloads (meaningless on SKX8S's 7 GB/s remote link) are excluded,
    # as are working sets that do not fit CXL-A.
    workloads = tuple(
        w
        for w in workloads
        if w.working_set_gb <= 128 and w.latency_class != "bandwidth"
        and w.threads == 1
    )

    setups = {
        "CXL-A": (EMR2S, cxl_a()),
        "CXL-A+NUMA": (EMR2S, remote_view(cxl_a())),
        "SKX8S-410ns": (SKX8S, SKX8S.numa_target()),
    }
    slowdowns = {}
    for label, (platform, target) in setups.items():
        result = melody.run(
            Campaign(
                name=label, platform=platform, targets=(target,),
                workloads=workloads,
            )
        )
        slowdowns[label] = result.slowdowns(target.name)

    omnetpp = workload_by_name("520.omnetpp_r")
    local = EMR2S.local_target()
    base = run_workload(omnetpp, EMR2S, local)
    omnetpp_slowdowns = {}
    for label, (platform, target) in setups.items():
        if platform is not EMR2S:
            platform_base = run_workload(omnetpp, platform, platform.local_target())
            r = run_workload(omnetpp, platform, target)
            omnetpp_slowdowns[label] = r.slowdown_vs(platform_base)
        else:
            r = run_workload(omnetpp, platform, target)
            omnetpp_slowdowns[label] = r.slowdown_vs(base)

    # Panel d: intensity scaling on CXL+NUMA + latency CDFs.
    remote = remote_view(cxl_a())
    intensity = {}
    for factor, label in ((1.0, "full"), (0.5, "1/2 load"), (0.25, "1/4 load")):
        spec = omnetpp if factor == 1.0 else omnetpp.scaled_intensity(factor)
        spec_base = run_workload(spec, EMR2S, local)
        r = run_workload(spec, EMR2S, remote)
        intensity[label] = r.slowdown_vs(spec_base)

    n = 20_000 if fast else 100_000
    percentiles = {}
    for label, target in (("Local", local), ("CXL-A", cxl_a()),
                          ("CXL-A+NUMA", remote)):
        r = run_workload(omnetpp, EMR2S, target)
        lat = sample_run_latencies(r, target, n=n)
        percentiles[label] = {
            f"p{p:g}": float(np.percentile(lat, p)) for p in (50, 90, 98, 99.9)
        }
    return CxlNumaResult(
        slowdowns=slowdowns,
        omnetpp=omnetpp_slowdowns,
        omnetpp_intensity=intensity,
        omnetpp_latency_percentiles=percentiles,
    )


def render(result: CxlNumaResult) -> str:
    """Setup comparison plus the omnetpp drill-down."""
    lines = ["Figure 8c: CXL+NUMA vs 2-hop NUMA (population medians)"]
    table = Table(["setup", "median S%", "p90 S%", "max S%"])
    for label, values in result.slowdowns.items():
        table.add_row(label, float(np.median(values)),
                      float(np.percentile(values, 90)), float(values.max()))
    lines.append(table.render())
    lines.append("")
    lines.append("Figure 8d: 520.omnetpp")
    table = Table(["setup", "slowdown %"])
    for label, value in result.omnetpp.items():
        table.add_row(label, value)
    for label, value in result.omnetpp_intensity.items():
        table.add_row(f"CXL-A+NUMA @{label}", value)
    lines.append(table.render())
    table = Table(["setup", "p50", "p90", "p98", "p99.9"])
    for label, ps in result.omnetpp_latency_percentiles.items():
        table.add_row(label, ps["p50"], ps["p90"], ps["p98"], ps["p99.9"])
    lines.append("sampled memory latency (ns):")
    lines.append(table.render())
    return "\n".join(lines)
