"""Figure 15: CDFs of slowdown contribution per component.

Across the population on CXL: at least 15% of workloads see >=5% cache
slowdown (prefetcher inefficiency) and at least 40% see >=5% slowdown from
DRAM demand reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.report import Table
from repro.core.breakdown import breakdown_cdfs, fraction_with_component_above
from repro.core.melody import Melody
from repro.core.spa import SpaBreakdown, spa_analyze
from repro.experiments.common import campaign_melody, workload_population


@dataclass(frozen=True)
class BreakdownCdfResult:
    """Component CDFs and headline fractions (CXL-A)."""

    breakdowns: List[SpaBreakdown]
    cdfs: Dict[str, np.ndarray]
    cache_ge5: float
    dram_ge5: float


def run(fast: bool = True) -> BreakdownCdfResult:
    """Aggregate component contributions across the population."""
    melody = campaign_melody()
    campaign = Melody.device_campaign(
        workloads=workload_population(fast), devices=("CXL-A",),
        include_numa=False,
    )
    result = melody.run(campaign)
    breakdowns = [spa_analyze(l, c) for l, c in result.pairs("CXL-A")]
    return BreakdownCdfResult(
        breakdowns=breakdowns,
        cdfs=breakdown_cdfs(breakdowns),
        cache_ge5=fraction_with_component_above(breakdowns, "cache", 5.0),
        dram_ge5=fraction_with_component_above(breakdowns, "dram", 5.0),
    )


def render(result: BreakdownCdfResult) -> str:
    """Percentiles of each component plus headline fractions."""
    table = Table(["component", "p50", "p75", "p90", "p99", "max"])
    for source, values in result.cdfs.items():
        table.add_row(
            source,
            float(np.percentile(values, 50)),
            float(np.percentile(values, 75)),
            float(np.percentile(values, 90)),
            float(np.percentile(values, 99)),
            float(values.max()),
        )
    return (
        "Figure 15: slowdown breakdown CDFs (CXL-A)\n"
        + table.render()
        + f"\n  workloads with >=5% cache slowdown: {result.cache_ge5 * 100:.0f}% "
        "(paper: >=15%)"
        + f"\n  workloads with >=5% DRAM slowdown:  {result.dram_ge5 * 100:.0f}% "
        "(paper: >=40%)"
    )
