"""Extension: phase-aware co-location scheduling (Finding #5 realized).

A latency-critical tenant with bursty phases (605.mcf) shares CXL-B with a
bandwidth-hungry batch job.  Running the batch naively pressures the
tenant's hot phases exactly when its slowdown is already bursting; gating
the batch to the tenant's cool periods (identified by the period-based Spa
analysis) recovers most of the tenant's performance for a bounded batch
makespan stretch -- the paper's Finding #5 recommendation as a working
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.core.colocation import (
    PhaseAwareOutcome,
    colocated_slowdowns,
    phase_aware_colocation,
)
from repro.hw.cxl import cxl_b
from repro.hw.platform import EMR2S
from repro.workloads import workload_by_name

LC_WORKLOAD = "605.mcf_s"
BATCH_WORKLOAD = "spark-micro-sort"


@dataclass(frozen=True)
class ColocationResult:
    """Joint interference figures plus the scheduling comparison."""

    interference_lc_pct: float  # LC slowdown added by naive sharing
    interference_batch_pct: float
    schedule: PhaseAwareOutcome


def run(fast: bool = True) -> ColocationResult:
    """Measure interference and compare scheduling strategies."""
    del fast
    lc = workload_by_name(LC_WORKLOAD)
    batch = workload_by_name(BATCH_WORKLOAD)
    joint = colocated_slowdowns((lc, batch), EMR2S, cxl_b)
    schedule = phase_aware_colocation(lc, batch, EMR2S, cxl_b)
    return ColocationResult(
        interference_lc_pct=joint.interference(LC_WORKLOAD),
        interference_batch_pct=joint.interference(BATCH_WORKLOAD),
        schedule=schedule,
    )


def render(result: ColocationResult) -> str:
    """Interference + scheduling table."""
    s = result.schedule
    lines = [
        f"Extension: co-location of {s.lc_workload} (latency-critical) and "
        f"{s.batch_workload} (batch) on CXL-B",
        f"  naive sharing adds {result.interference_lc_pct:.1f} points of "
        f"slowdown to the LC tenant "
        f"({result.interference_batch_pct:.1f} to the batch)",
    ]
    table = Table(["strategy", "LC slowdown %", "batch makespan s"])
    table.add_row("naive (always co-run)", s.lc_slowdown_naive_pct,
                  s.batch_makespan_naive_s)
    table.add_row("phase-aware (gate hot phases)",
                  s.lc_slowdown_phase_aware_pct,
                  s.batch_makespan_phase_aware_s)
    lines.append(table.render())
    lines.append(
        f"  phase-aware gating recovers {s.lc_recovered_pct:.1f} points of "
        f"LC slowdown for a {s.batch_cost_ratio:.2f}x batch makespan"
    )
    return "\n".join(lines)
