"""Table 1: testbed idle latency and bandwidth, local and remote.

Regenerates the Lat/BW columns by *measuring* every platform and device
with the MLC work-alike (latency/bandwidth matrices), rather than printing
the calibrated constants -- so the table doubles as a calibration check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import Table
from repro.hw.cxl import CXL_DEVICES
from repro.hw.platform import PLATFORMS
from repro.hw.topology import remote_view
from repro.tools.mlc import MemoryLatencyChecker

PAPER_VALUES = {
    # name -> (local lat ns, local BW GB/s, remote lat ns, remote BW GB/s)
    "SPR2S": (114, 218, 191, 97),
    "EMR2S": (111, 246, 193, 120),
    "EMR2S'": (117, 236, 212, 119),
    "SKX2S": (90, 52, 140, 32),
    "SKX8S": (81, 109, 410, 7),
    "CXL-A": (214, 24, 375, 14),
    "CXL-B": (271, 22, 473, 13),
    "CXL-C": (394, 18, 621, 14),
    "CXL-D": (239, 52, 333, 14),
}
"""The paper's Table 1 numbers, for side-by-side comparison."""


@dataclass(frozen=True)
class TestbedRow:
    """One measured Table 1 row."""

    name: str
    local_latency_ns: float
    local_bandwidth_gbps: float
    remote_latency_ns: float
    remote_bandwidth_gbps: float


def run(fast: bool = True) -> Dict[str, TestbedRow]:
    """Measure every platform and CXL device."""
    del fast  # the table is cheap either way
    mlc = MemoryLatencyChecker()
    rows: Dict[str, TestbedRow] = {}
    for name, platform in PLATFORMS.items():
        local = platform.local_target()
        remote = platform.numa_target()
        rows[name] = TestbedRow(
            name=name,
            local_latency_ns=local.idle_latency_ns(),
            local_bandwidth_gbps=mlc.peak_bandwidth(local),
            remote_latency_ns=remote.idle_latency_ns(),
            remote_bandwidth_gbps=mlc.peak_bandwidth(remote),
        )
    for name, factory in CXL_DEVICES.items():
        device = factory()
        remote = remote_view(device)
        rows[name] = TestbedRow(
            name=name,
            local_latency_ns=device.idle_latency_ns(),
            local_bandwidth_gbps=mlc.peak_bandwidth(device),
            remote_latency_ns=remote.idle_latency_ns(),
            remote_bandwidth_gbps=mlc.peak_bandwidth(remote),
        )
    return rows


def render(rows: Dict[str, TestbedRow]) -> str:
    """Side-by-side measured vs paper table."""
    table = Table(
        ["name", "lat ns", "(paper)", "BW GB/s", "(paper)",
         "rem lat", "(paper)", "rem BW", "(paper)"]
    )
    order = list(PAPER_VALUES)
    for name in order:
        row = rows[name]
        paper = PAPER_VALUES[name]
        table.add_row(
            name,
            row.local_latency_ns, paper[0],
            row.local_bandwidth_gbps, paper[1],
            row.remote_latency_ns, paper[2],
            row.remote_bandwidth_gbps, paper[3],
        )
    return "Table 1: testbed characteristics (measured vs paper)\n" + table.render()
