"""Figure 1: the sub-microsecond CXL latency/bandwidth spectrum.

One point per memory configuration class: socket-local DRAM, NUMA, locally
attached CXL, CXL behind a NUMA hop, CXL behind a switch, and a multi-hop
composition -- average latency versus aggregate bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import Table
from repro.hw.cxl import cxl_a, cxl_d
from repro.hw.cxl.fabric import cmm_b_class_box
from repro.hw.platform import EMR2S
from repro.hw.topology import CxlSwitchTopology, remote_view
from repro.tools.mlc import MemoryLatencyChecker


@dataclass(frozen=True)
class SpectrumPoint:
    """One configuration class on the Figure 1 plane."""

    label: str
    latency_ns: float
    bandwidth_gbps: float


def run(fast: bool = True) -> Tuple[SpectrumPoint, ...]:
    """Measure each configuration class with the MLC work-alike."""
    del fast
    mlc = MemoryLatencyChecker()
    switch = CxlSwitchTopology(cxl_d())
    multihop = CxlSwitchTopology(cxl_a(), levels=2)
    configs = (
        ("Socket-local DRAM", EMR2S.local_target()),
        ("NUMA", EMR2S.numa_target()),
        ("CXL", cxl_a()),
        ("CXL (high-BW)", cxl_d()),
        ("CXL+NUMA", remote_view(cxl_a())),
        ("CXL+Switch", switch),
        # The paper's [15] citation: a CMM-B-class pooled memory box.
        ("CXL+Switch (memory box)", cmm_b_class_box()),
        ("CXL+multi-hops", multihop),
    )
    return tuple(
        SpectrumPoint(
            label=label,
            latency_ns=target.idle_latency_ns(),
            bandwidth_gbps=mlc.peak_bandwidth(target),
        )
        for label, target in configs
    )


def render(points: Tuple[SpectrumPoint, ...]) -> str:
    """The spectrum as a table (latency ascending)."""
    table = Table(["configuration", "avg latency ns", "bandwidth GB/s"])
    for p in sorted(points, key=lambda p: p.latency_ns):
        table.add_row(p.label, p.latency_ns, p.bandwidth_gbps)
    return "Figure 1: sub-us CXL latency/bandwidth spectrum\n" + table.render()
