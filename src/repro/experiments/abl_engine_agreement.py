"""Ablation: analytic backend vs trace-driven engine agreement.

The analytical backend (`cpu/backend.py`) and the trace-driven engine
(`cpu/tracepipeline.py`) share no code between workload description and
cycle count: one solves closed forms over aggregate parameters, the other
replays an address stream through a cache simulator and charges sampled
latencies.  For each canonical pattern we (a) derive a spec from the trace
and run it analytically, (b) run the same trace mechanistically, and
compare the predicted *CXL slowdown* -- the quantity every figure is
built from.

Agreement on ordering and rough magnitude validates the analytic model's
structure against an independent mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import Table
from repro.cpu.pipeline import run_workload
from repro.cpu.tracepipeline import TracePipeline
from repro.hw.cxl import cxl_b
from repro.hw.platform import EMR2S
from repro.workloads.calibration import derive_parameters
from repro.workloads.traces import (
    pointer_chase,
    random_uniform,
    sequential_stream,
    zipf_accesses,
)

WORKING_SET = 64 * 1024 * 1024


@dataclass(frozen=True)
class EnginePair:
    """Both engines' slowdown for one pattern."""

    pattern: str
    analytic_pct: float
    trace_driven_pct: float


@dataclass(frozen=True)
class EngineAgreementResult:
    """Pairwise comparison across the canonical patterns."""

    pairs: List[EnginePair]

    def ordering_agrees(self) -> bool:
        """Both engines rank the latency-dominated patterns identically.

        The streaming pattern is excluded: it is bandwidth-dominated on
        CXL-B, and the two engines treat the saturated regime differently
        (closed-form floor vs per-request queueing at the knee), so its
        *magnitude* is engine-specific even though both call it slow.
        """
        latency_bound = [p for p in self.pairs if p.pattern != "sequential"]
        by_analytic = sorted(latency_bound, key=lambda p: p.analytic_pct)
        by_trace = sorted(latency_bound, key=lambda p: p.trace_driven_pct)
        return [p.pattern for p in by_analytic] == [
            p.pattern for p in by_trace
        ]

    def max_latency_bound_gap(self) -> float:
        """Largest |analytic - trace| over the latency-dominated patterns."""
        return max(
            abs(p.analytic_pct - p.trace_driven_pct)
            for p in self.pairs
            if p.pattern != "sequential"
        )

    def stream_bandwidth_bound_in_both(self) -> bool:
        """Both engines see the stream substantially slowed on CXL-B."""
        stream = self.pair("sequential")
        return stream.analytic_pct > 20.0 and stream.trace_driven_pct > 20.0

    def pair(self, pattern: str) -> EnginePair:
        """Look up one pattern."""
        for p in self.pairs:
            if p.pattern == pattern:
                return p
        raise KeyError(pattern)


def run(fast: bool = True) -> EngineAgreementResult:
    """Compare both engines on the canonical patterns, local vs CXL-B."""
    n = 100_000 if fast else 300_000
    traces = {
        "sequential": sequential_stream(n, WORKING_SET),
        "random": random_uniform(n, WORKING_SET),
        "zipf": zipf_accesses(n, WORKING_SET),
        "pointer-chase": pointer_chase(min(n, 60_000), WORKING_SET),
    }
    local = EMR2S.local_target()
    device = cxl_b()
    pairs = []
    for pattern, trace in traces.items():
        # Engine A: analytic pipeline on the trace-derived spec.
        spec = derive_parameters(trace).to_spec(
            name=pattern, working_set_gb=WORKING_SET / 2**30
        )
        base = run_workload(spec, EMR2S, local)
        cxl = run_workload(spec, EMR2S, device)
        analytic = cxl.slowdown_vs(base)
        # Engine B: trace-driven timing on the raw trace.
        trace_base = TracePipeline(EMR2S, local).run(trace)
        trace_cxl = TracePipeline(EMR2S, device).run(trace)
        trace_driven = trace_cxl.slowdown_vs(trace_base)
        pairs.append(
            EnginePair(
                pattern=pattern,
                analytic_pct=analytic,
                trace_driven_pct=trace_driven,
            )
        )
    return EngineAgreementResult(pairs=pairs)


def render(result: EngineAgreementResult) -> str:
    """Side-by-side engine table."""
    lines = ["Ablation: analytic vs trace-driven engine (CXL-B slowdowns)"]
    table = Table(["pattern", "analytic S%", "trace-driven S%"])
    for p in result.pairs:
        table.add_row(p.pattern, p.analytic_pct, p.trace_driven_pct)
    lines.append(table.render())
    verdict = "agrees" if result.ordering_agrees() else "DISAGREES"
    lines.append(
        f"latency-bound pattern ordering across engines: {verdict} "
        f"(max gap {result.max_latency_bound_gap():.1f} points)"
    )
    stream_ok = result.stream_bandwidth_bound_in_both()
    lines.append(
        "stream classified bandwidth-constrained by both engines: "
        + ("yes" if stream_ok else "NO")
        + " (magnitudes differ by design: closed-form floor vs "
        "per-request queueing at the knee)"
    )
    return "\n".join(lines)
