"""Figure 8e: SPR versus EMR slowdown CDFs under CXL-A and CXL-B.

EMR's LLC is 2.7x larger than SPR's (160 vs 60 MB), yet the slowdown
patterns are nearly identical: a larger cache does not absorb CXL's
latency/bandwidth penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.report import format_cdf_row
from repro.core.melody import Campaign
from repro.experiments.common import campaign_melody, workload_population
from repro.hw.cxl import cxl_a, cxl_b
from repro.hw.platform import EMR2S, SPR2S


@dataclass(frozen=True)
class SprEmrResult:
    """Slowdown vectors per (platform, device)."""

    slowdowns: Dict[str, np.ndarray]

    def median_gap(self, device: str) -> float:
        """|median(SPR) - median(EMR)| for one device (should be small)."""
        spr = np.median(self.slowdowns[f"SPR:{device}"])
        emr = np.median(self.slowdowns[f"EMR:{device}"])
        return float(abs(spr - emr))


def run(fast: bool = True) -> SprEmrResult:
    """Run both devices on both platforms."""
    melody = campaign_melody()
    workloads = workload_population(fast)
    slowdowns = {}
    for platform, tag in ((SPR2S, "SPR"), (EMR2S, "EMR")):
        for device_factory, device in ((cxl_a, "CXL-A"), (cxl_b, "CXL-B")):
            result = melody.run(
                Campaign(
                    name=f"{tag}:{device}",
                    platform=platform,
                    targets=(device_factory(),),
                    workloads=workloads,
                )
            )
            slowdowns[f"{tag}:{device}"] = result.slowdowns(device)
    return SprEmrResult(slowdowns=slowdowns)


def render(result: SprEmrResult) -> str:
    """CDF rows per setup plus the SPR/EMR median gap."""
    lines = ["Figure 8e: SPR vs EMR slowdown CDFs"]
    for label, values in result.slowdowns.items():
        lines.append("  " + format_cdf_row(label, values))
    for device in ("CXL-A", "CXL-B"):
        lines.append(
            f"  median gap SPR vs EMR on {device}: "
            f"{result.median_gap(device):.1f} points"
        )
    return "\n".join(lines)
