"""§5.7 use case: Spa-guided memory placement for 605.mcf.

The period-based analysis flags 605.mcf's bursty periods (>10% slowdown);
Pin/addr2line-style attribution (our explicit object map) identifies two
2 GB objects behind them; relocating both to local DRAM cuts the overall
slowdown from ~13% to ~2-4%.
"""

from __future__ import annotations

from repro.core.tuning import HotObject, TuningResult, tune_placement
from repro.experiments.common import standard_targets
from repro.hw.platform import EMR2S
from repro.workloads import workload_by_name

MCF_OBJECTS = (
    HotObject(
        name="arc_array",
        size_gb=2.0,
        miss_share_by_phase={
            "hot-1": 0.70, "hot-2": 0.65, "hot-3": 0.60,
            "cool-1": 0.45, "cool-2": 0.40, "cool-3": 0.40,
        },
    ),
    HotObject(
        name="node_array",
        size_gb=2.0,
        miss_share_by_phase={
            "hot-1": 0.25, "hot-2": 0.28, "hot-3": 0.30,
            "cool-1": 0.25, "cool-2": 0.30, "cool-3": 0.30,
        },
    ),
    HotObject(
        name="cold_buffers",
        size_gb=1.5,
        miss_share_by_phase={},  # never hot: must NOT be relocated
    ),
)
"""605.mcf's object map, as Pin + addr2line would recover it."""


def run(fast: bool = True) -> TuningResult:
    """Run the tuning loop for 605.mcf on CXL-A."""
    del fast
    workload = workload_by_name("605.mcf_s")
    return tune_placement(
        workload,
        EMR2S,
        standard_targets()["CXL-A"],
        MCF_OBJECTS,
        threshold_pct=10.0,
    )


def render(result: TuningResult) -> str:
    """Before/after summary."""
    moved = ", ".join(o.name for o in result.relocated) or "none"
    return (
        "Use case (5.7): Spa-guided placement for 605.mcf\n"
        f"  slowdown before: {result.slowdown_before_pct:.1f}% (paper: 13%)\n"
        f"  slowdown after:  {result.slowdown_after_pct:.1f}% (paper: 2%)\n"
        f"  relocated: {moved} ({result.moved_gb:.1f} GB)\n"
        f"  hot periods: {len(result.hot_period_indices)}"
    )
