"""Figure 8f: NUMA vs one CXL-D vs two hardware-interleaved CXL-Ds.

On SPEC CPU 2017 (hosted on EMR2S', CXL-D's platform): interleaving two
CXL-D devices doubles bandwidth to ~104 GB/s and sharply reduces the
slowdowns of bandwidth-hungry workloads, closing most of the gap to NUMA
-- when CXL bandwidth matches NUMA, remaining slowdowns are latency-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.report import format_cdf_row
from repro.core.melody import Campaign
from repro.experiments.common import campaign_melody
from repro.hw.cxl import cxl_d
from repro.hw.platform import EMR2S_PRIME
from repro.hw.topology import InterleavedTarget
from repro.workloads import workloads_by_suite


@dataclass(frozen=True)
class InterleaveResult:
    """Slowdown vectors for NUMA*, CXL-D x1, CXL-D x2 on SPEC."""

    slowdowns: Dict[str, np.ndarray]

    def improvement_from_interleave(self) -> float:
        """Mean slowdown reduction x1 -> x2 (percentage points)."""
        return float(
            np.mean(self.slowdowns["CXL-D x1"] - self.slowdowns["CXL-D x2"])
        )


def run(fast: bool = True) -> InterleaveResult:
    """Run SPEC across the three targets."""
    melody = campaign_melody()
    spec = workloads_by_suite("SPEC CPU 2017")
    if fast:
        spec = spec[::2]
    targets = {
        "NUMA*": EMR2S_PRIME.numa_target(),
        "CXL-D x1": cxl_d(),
        "CXL-D x2": InterleavedTarget([cxl_d(), cxl_d()], name="CXL-Dx2"),
    }
    slowdowns = {}
    for label, target in targets.items():
        result = melody.run(
            Campaign(
                name=label,
                platform=EMR2S_PRIME,
                targets=(target,),
                workloads=tuple(spec),
            )
        )
        slowdowns[label] = result.slowdowns(target.name)
    return InterleaveResult(slowdowns=slowdowns)


def render(result: InterleaveResult) -> str:
    """CDF rows and the interleave improvement."""
    lines = ["Figure 8f: NUMA vs CXL-D x1 vs CXL-D x2 (SPEC CPU 2017)"]
    for label, values in result.slowdowns.items():
        lines.append(
            "  " + format_cdf_row(label, values, thresholds=(5, 10, 25, 50, 80))
        )
    lines.append(
        f"  mean slowdown reduction from interleaving: "
        f"{result.improvement_from_interleave():.1f} points"
    )
    return "\n".join(lines)
