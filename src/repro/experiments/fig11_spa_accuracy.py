"""Figure 11: Spa accuracy validation.

For every workload, compare the actually measured slowdown against the
three counter-based estimators (Delta s, Delta s_Backend, Delta s_Memory)
on NUMA, CXL-A, and CXL-B.  Paper's claims: Delta s within 5 points for
~100% of workloads (98% within 2), Delta s_Backend for >=96%, and
Delta s_Memory for >=95%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.report import Table
from repro.core.melody import Melody
from repro.core.spa import validate_accuracy
from repro.experiments.common import campaign_melody, workload_population


@dataclass(frozen=True)
class SpaAccuracyResult:
    """Per-target estimator error vectors (percentage points)."""

    errors: Dict[str, Dict[str, np.ndarray]]

    def fraction_within(self, target: str, estimator: str,
                        points: float = 5.0) -> float:
        """Fraction of workloads with |error| <= ``points``."""
        return float(np.mean(self.errors[target][estimator] <= points))


def run(fast: bool = True) -> SpaAccuracyResult:
    """Validate the three estimators on NUMA / CXL-A / CXL-B."""
    melody = campaign_melody()
    campaign = Melody.device_campaign(
        workloads=workload_population(fast), devices=("CXL-A", "CXL-B")
    )
    result = melody.run(campaign)
    errors = {}
    for target in result.target_names():
        label = target.replace("EMR2S-", "")
        errors[label] = validate_accuracy(result.pairs(target))
    return SpaAccuracyResult(errors=errors)


def render(result: SpaAccuracyResult) -> str:
    """Within-5-points (and within-2) fractions per estimator per target."""
    table = Table(["target", "estimator", "<=2pp", "<=5pp", "paper <=5pp"])
    paper = {"stalls": "100%", "backend": "96%", "memory": "95%"}
    for target, errors in result.errors.items():
        for estimator in ("stalls", "backend", "memory"):
            table.add_row(
                target,
                estimator,
                f"{result.fraction_within(target, estimator, 2.0) * 100:.0f}%",
                f"{result.fraction_within(target, estimator, 5.0) * 100:.0f}%",
                paper[estimator],
            )
    return "Figure 11: Spa estimator accuracy\n" + table.render()
