"""Figure 14: per-workload Spa slowdown breakdowns, grouped by suite.

Stacked DRAM/L3/L2/L1/Store/Core/Other contributions for every workload
under NUMA, CXL-A, and CXL-B.  Structural claims: 519.lbm/619.lbm are
store-dominated; GAPBS is DRAM-demand dominated (except pr-kron and
pr-twitter's cache share); Llama leans on LLC; Redis/VoltDB and
GPT-2/DLRM are DRAM-dominated (ML ~90%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import Table
from repro.core.breakdown import breakdown_by_suite, dominant_source
from repro.core.melody import Melody
from repro.core.spa import SpaBreakdown, spa_analyze
from repro.experiments.common import campaign_melody, workload_population
from repro.workloads import workload_by_name

TARGETS = ("NUMA", "CXL-A", "CXL-B")


@dataclass(frozen=True)
class BreakdownResult:
    """Per-target, per-suite breakdowns."""

    by_target: Dict[str, Dict[str, List[SpaBreakdown]]]

    def breakdown(self, target: str, workload: str) -> SpaBreakdown:
        """One workload's breakdown on one target."""
        suite = workload_by_name(workload).suite
        for b in self.by_target[target][suite]:
            if b.workload == workload:
                return b
        raise KeyError(workload)

    def dram_share(self, target: str, workload: str) -> float:
        """DRAM fraction of the explained slowdown."""
        b = self.breakdown(target, workload)
        return b.components["dram"] / max(b.explained, 1e-9)


def run(fast: bool = True) -> BreakdownResult:
    """Compute breakdowns for the population on the three targets."""
    melody = campaign_melody()
    campaign = Melody.device_campaign(
        workloads=workload_population(fast), devices=("CXL-A", "CXL-B")
    )
    result = melody.run(campaign)
    suites = {w.name: w.suite for w in campaign.workloads}
    by_target = {}
    for target in result.target_names():
        label = target.replace("EMR2S-", "")
        breakdowns = [spa_analyze(l, c) for l, c in result.pairs(target)]
        by_target[label] = breakdown_by_suite(breakdowns, suites)
    return BreakdownResult(by_target=by_target)


def render(result: BreakdownResult) -> str:
    """Per-suite stacked breakdown tables for CXL-A."""
    lines = ["Figure 14: Spa slowdown breakdown (CXL-A shown)"]
    target = "CXL-A"
    for suite, breakdowns in sorted(result.by_target[target].items()):
        lines.append(f"\n  [{suite}]")
        table = Table(["workload", "total", "dram", "l3", "l2", "l1",
                       "store", "core", "other", "dominant"])
        for b in breakdowns[:12]:
            table.add_row(
                b.workload, b.estimates.actual,
                b.components["dram"], b.components["l3"], b.components["l2"],
                b.components["l1"], b.components["store"], b.core, b.other,
                dominant_source(b),
            )
        lines.append("  " + table.render().replace("\n", "\n  "))
        if len(breakdowns) > 12:
            lines.append(f"  ... {len(breakdowns) - 12} more")
    return "\n".join(lines)
