"""Figure 3a: loaded-latency curves (average latency vs bandwidth).

31 delay-injected traffic threads sweep the load from idle to saturation
on every target; the paper's observations to reproduce: latency is flat at
low utilization everywhere, CXL devices start climbing at 50-86% while
local/NUMA hold to 90-95%, and every curve ends in a vertical queueing
wall (CXL-A/B spike past 1 us, CXL-C approaches 3 us).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import Table
from repro.experiments.common import measurement_targets
from repro.tools.mlc import LoadedLatencyPoint, MemoryLatencyChecker

FAST_DELAYS = (0, 200, 500, 1000, 2500, 7000, 20000)


@dataclass(frozen=True)
class LoadedLatencyCurves:
    """Per-target loaded-latency curves."""

    curves: Dict[str, Tuple[LoadedLatencyPoint, ...]]

    def knee_utilization(self, name: str, rise_ns: float = 60.0) -> float:
        """Utilization where latency has risen ``rise_ns`` over idle."""
        curve = self.curves[name]
        idle = min(p.latency_ns for p in curve)
        peak = max(p.bandwidth_gbps for p in curve)
        for p in sorted(curve, key=lambda p: p.bandwidth_gbps):
            if p.latency_ns >= idle + rise_ns:
                return p.bandwidth_gbps / peak
        return 1.0


def run(fast: bool = True) -> LoadedLatencyCurves:
    """Sweep every target."""
    mlc = MemoryLatencyChecker()
    delays = FAST_DELAYS if fast else None
    curves = {}
    for target in measurement_targets():
        if delays is None:
            curves[target.name] = mlc.loaded_latency_curve(target)
        else:
            curves[target.name] = mlc.loaded_latency_curve(target, delays)
    return LoadedLatencyCurves(curves=curves)


def render(result: LoadedLatencyCurves) -> str:
    """Each curve as (bandwidth, latency) pairs plus the knee summary."""
    lines = ["Figure 3a: average latency vs bandwidth (31 threads)"]
    for name, curve in result.curves.items():
        pts = "  ".join(
            f"({p.bandwidth_gbps:.1f}GB/s,{p.latency_ns:.0f}ns)"
            for p in sorted(curve, key=lambda p: p.bandwidth_gbps)
        )
        lines.append(f"  {name:12s} {pts}")
    table = Table(["target", "util at +60ns latency rise"])
    for name in result.curves:
        table.add_row(name, f"{result.knee_utilization(name) * 100:.0f}%")
    lines.append(table.render())
    return "\n".join(lines)
