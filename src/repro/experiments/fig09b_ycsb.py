"""Figure 9b: YCSB A-F slowdowns on Redis and VoltDB.

Cloud stores are latency-sensitive: slowdown grows super-linearly as the
memory target's latency rises NUMA -> CXL-A -> CXL-B (the slowdown ratio
exceeds the latency ratio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.core.melody import Campaign
from repro.experiments.common import campaign_melody, standard_targets
from repro.hw.platform import EMR2S
from repro.workloads import workload_by_name
from repro.workloads.suites.cloud import YCSB_WORKLOADS

STORES = ("redis", "voltdb")
TARGET_ORDER = ("NUMA", "CXL-A", "CXL-B")


@dataclass(frozen=True)
class YcsbResult:
    """slowdowns[(store, letter)][target] in percent."""

    slowdowns: Dict[tuple, Dict[str, float]]

    def superlinearity(self, store: str, letter: str) -> float:
        """Slowdown growth ratio vs latency growth ratio, NUMA -> CXL-B.

        >1 means super-linear (the paper's claim).
        """
        series = self.slowdowns[(store, letter)]
        latency = {"NUMA": 193.0, "CXL-A": 214.0, "CXL-B": 271.0}
        local = 111.0
        slow_ratio = series["CXL-B"] / max(series["NUMA"], 1e-9)
        lat_ratio = (latency["CXL-B"] - local) / (latency["NUMA"] - local)
        return slow_ratio / lat_ratio


def run(fast: bool = True) -> YcsbResult:
    """Run the 12 YCSB workloads across NUMA/CXL-A/CXL-B."""
    del fast  # 12 workloads x 3 targets is always cheap
    melody = campaign_melody()
    targets = standard_targets()
    workloads = tuple(
        workload_by_name(f"{store}-ycsb-{letter.lower()}")
        for store in STORES
        for letter in YCSB_WORKLOADS
    )
    campaign = Campaign(
        name="ycsb",
        platform=EMR2S,
        targets=tuple(targets[t] for t in TARGET_ORDER),
        workloads=workloads,
    )
    result = melody.run(campaign)
    slowdowns: Dict[tuple, Dict[str, float]] = {}
    for store in STORES:
        for letter in YCSB_WORKLOADS:
            name = f"{store}-ycsb-{letter.lower()}"
            per_target = {}
            for target_label in TARGET_ORDER:
                target_name = targets[target_label].name
                per_target[target_label] = result.record(name, target_name).slowdown_pct
            slowdowns[(store, letter)] = per_target
    return YcsbResult(slowdowns=slowdowns)


def render(result: YcsbResult) -> str:
    """Per-workload slowdown table plus super-linearity factors."""
    table = Table(["store", "ycsb"] + list(TARGET_ORDER) + ["superlin"])
    for (store, letter), series in result.slowdowns.items():
        table.add_row(
            store, letter,
            *[series[t] for t in TARGET_ORDER],
            result.superlinearity(store, letter),
        )
    return (
        "Figure 9b: YCSB slowdowns (%), super-linear growth with latency\n"
        + table.render()
    )
