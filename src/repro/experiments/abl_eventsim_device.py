"""Ablation: clean-room MC simulation vs the calibrated tail model.

The request-level event simulator implements a *well-behaved* CXL memory
controller from public specifications alone: Poisson arrivals, link
serialization, a deep dispatch pipeline, banked DRAM with row-buffer state
and fine-grained refresh, link-layer retries.  Comparing it against the
calibrated analytic devices answers the paper's attribution question from
the inside:

* **means agree** -- the analytic loaded-latency model is consistent with
  an independent queueing mechanism across devices and loads;
* **tails do NOT agree for CXL-B/C** -- the clean-room controller produces
  only modest, physics-level tails (refresh, bank conflicts, retries);
  the large measured tails need the calibrated vendor-misbehaviour model.
  This is in-model evidence for the paper's reasoning in §3.2: high CXL
  tail latencies stem from suboptimal vendor MC implementations, not from
  DRAM physics or honest queueing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import Table
from repro.hw.cxl import CXL_DEVICES
from repro.hw.cxl.eventdevice import compare_result_with_analytic
from repro.runtime import SimCell, get_engine

LOADS_FRACTION = (0.1, 0.5, 0.8)
"""Loads as fractions of each device's read bandwidth."""


@dataclass(frozen=True)
class EventSimComparison:
    """Per-device, per-load comparison rows."""

    rows: List[dict]

    def mean_agreement(self, max_rel_error: float = 0.6) -> bool:
        """Every mean within the tolerance of the analytic model."""
        return all(
            abs(r["sim_mean_ns"] - r["analytic_mean_ns"])
            <= max_rel_error * r["analytic_mean_ns"]
            for r in self.rows
        )

    def vendor_tail_unexplained(self, device: str) -> float:
        """High-load analytic tail gap minus the clean-room sim's (ns).

        Positive and large for devices whose tails the paper attributes to
        vendor controller behaviour.
        """
        candidates = [
            r for r in self.rows if r["device"] == device
        ]
        worst = max(candidates, key=lambda r: r["load_gbps"])
        return worst["analytic_tail_gap_ns"] - worst["sim_tail_gap_ns"]


def run(fast: bool = True, engine: str = "auto") -> EventSimComparison:
    """Compare every device at three load points.

    ``engine`` selects the event-simulation implementation (``auto`` lets
    the runtime planner fuse all twelve operating points into batched
    kernel calls; ``scalar``/``vector`` pin each cell to a solo engine).
    Every engine is bit-identical, so the rendered table does not depend
    on the choice -- only the wall-clock does.
    """
    n = 25_000 if fast else 120_000
    cells = []
    devices = []
    for name, factory in CXL_DEVICES.items():
        device = factory()
        peak = device.peak_bandwidth_gbps()
        for fraction in LOADS_FRACTION:
            cells.append(
                SimCell(
                    device=name,
                    n_requests=n,
                    offered_gbps=fraction * peak,
                    engine=engine,
                )
            )
            devices.append((name, device))
    results = get_engine().run_cells(cells)
    rows = []
    for (name, device), sim in zip(devices, results):
        row = compare_result_with_analytic(device, sim)
        row["device"] = name
        rows.append(row)
    return EventSimComparison(rows=rows)


def render(result: EventSimComparison) -> str:
    """Comparison table plus the attribution summary."""
    lines = ["Ablation: event-driven clean-room MC vs calibrated model"]
    table = Table(["device", "load GB/s", "sim mean", "model mean",
                   "sim gap", "model gap"])
    for r in result.rows:
        table.add_row(r["device"], r["load_gbps"], r["sim_mean_ns"],
                      r["analytic_mean_ns"], r["sim_tail_gap_ns"],
                      r["analytic_tail_gap_ns"])
    lines.append(table.render())
    lines.append("tail latency a clean-room controller cannot explain:")
    for name in CXL_DEVICES:
        unexplained = result.vendor_tail_unexplained(name)
        lines.append(f"  {name}: {unexplained:+.0f} ns at high load")
    lines.append(
        "(large positive values = the measured tails require vendor-specific"
        " controller misbehaviour, per the paper's §3.2 reasoning)"
    )
    return "\n".join(lines)
