"""Figure 4: latency CDFs under mixed read/write background noise.

0-7 unthrottled AVX read/write traffic threads co-run with the
pointer-chase measurement, below device saturation.  Local and NUMA stay
stable; three of four CXL devices (A, B, C) show worsening high-percentile
latencies as the noise thread count grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.experiments.common import measurement_targets
from repro.tools.mio import MioBenchmark, MioResult
from repro.tools.trafficgen import TrafficGenerator

NOISE_THREADS = (0, 1, 3, 5, 7)
NOISE_READ_FRACTION = 0.5  # mixed read/write noise


@dataclass(frozen=True)
class RwNoiseResult:
    """MIO results per target per noise-thread count."""

    results: Dict[str, Dict[int, MioResult]]

    def p99_growth(self, target: str) -> float:
        """p99 latency increase from 0 to max noise threads (ns)."""
        series = self.results[target]
        return (
            series[max(series)].percentile(99)
            - series[min(series)].percentile(99)
        )


def run(fast: bool = True) -> RwNoiseResult:
    """Sweep noise threads on every target."""
    samples = 30_000 if fast else 150_000
    threads = (0, 3, 7) if fast else NOISE_THREADS
    results: Dict[str, Dict[int, MioResult]] = {}
    for target in measurement_targets():
        generator = TrafficGenerator(target, read_fraction=NOISE_READ_FRACTION)
        mio = MioBenchmark(target, samples=samples)
        per_thread = {}
        for n in threads:
            # Keep noise below saturation, as the paper does.
            load = generator.offered_load(n, intensity=0.6) if n else None
            per_thread[n] = mio.measure(
                n_threads=1,
                background=load,
                read_fraction=(
                    NOISE_READ_FRACTION if n else 1.0
                ),
            )
        results[target.name] = per_thread
    return RwNoiseResult(results=results)


def render(result: RwNoiseResult) -> str:
    """p99/p99.9 per noise level, plus the growth summary."""
    lines = ["Figure 4: latency under read/write noise"]
    table = Table(["target", "noise", "p50", "p99", "p99.9"])
    for name, series in result.results.items():
        for n, r in sorted(series.items()):
            table.add_row(name, f"{n}thr", r.percentile(50),
                          r.percentile(99), r.percentile(99.9))
    lines.append(table.render())
    growth = Table(["target", "p99 growth 0->max noise (ns)"])
    for name in result.results:
        growth.add_row(name, result.p99_growth(name))
    lines.append(growth.render())
    return "\n".join(lines)
