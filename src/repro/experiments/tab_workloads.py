"""Population table: the 265-workload evaluation set at a glance.

The paper's §3.1 characterizes its population qualitatively ("some are
latency-sensitive, approximately one quarter are bandwidth-sensitive...").
This table quantifies our reproduction of that population: per suite, the
count, sensitivity-class mix, miss-rate spread, and working-set spread --
and validates the §3.1 proportions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.report import Table
from repro.workloads import all_workloads
from repro.workloads.base import BANDWIDTH_CLASS, COMPUTE_CLASS


@dataclass(frozen=True)
class SuiteSummary:
    """Aggregate statistics for one suite."""

    suite: str
    count: int
    classes: Dict[str, int]
    l3_mpki_median: float
    l3_mpki_max: float
    working_set_median_gb: float
    multithreaded: int


@dataclass(frozen=True)
class PopulationResult:
    """Per-suite summaries plus population-level fractions."""

    summaries: List[SuiteSummary]
    total: int
    bandwidth_fraction: float
    compute_fraction: float
    fits_cxl_c: int  # workloads runnable on the 16 GB device


def run(fast: bool = True) -> PopulationResult:
    """Summarize the registry."""
    del fast
    workloads = all_workloads()
    summaries = []
    for suite in sorted({w.suite for w in workloads}):
        members = [w for w in workloads if w.suite == suite]
        summaries.append(
            SuiteSummary(
                suite=suite,
                count=len(members),
                classes=dict(Counter(w.latency_class for w in members)),
                l3_mpki_median=float(
                    np.median([w.l3_mpki for w in members])
                ),
                l3_mpki_max=float(max(w.l3_mpki for w in members)),
                working_set_median_gb=float(
                    np.median([w.working_set_gb for w in members])
                ),
                multithreaded=sum(1 for w in members if w.threads > 1),
            )
        )
    classes = Counter(w.latency_class for w in workloads)
    return PopulationResult(
        summaries=summaries,
        total=len(workloads),
        bandwidth_fraction=classes[BANDWIDTH_CLASS] / len(workloads),
        compute_fraction=classes[COMPUTE_CLASS] / len(workloads),
        fits_cxl_c=sum(1 for w in workloads if w.working_set_gb <= 16.0),
    )


def render(result: PopulationResult) -> str:
    """The population table."""
    lines = [f"Workload population: {result.total} workloads"]
    table = Table(["suite", "n", "lat/mix/bw/cpu", "l3 mpki p50/max",
                   "ws p50 GB", "multi-thr"])
    for s in result.summaries:
        mix = "/".join(
            str(s.classes.get(k, 0))
            for k in ("latency", "mixed", "bandwidth", "compute")
        )
        table.add_row(
            s.suite, s.count, mix,
            f"{s.l3_mpki_median:.1f}/{s.l3_mpki_max:.0f}",
            s.working_set_median_gb, s.multithreaded,
        )
    lines.append(table.render())
    lines.append(
        f"bandwidth-sensitive: {result.bandwidth_fraction * 100:.0f}% "
        "(paper: ~25%); "
        f"compute-leaning: {result.compute_fraction * 100:.0f}%; "
        f"fit CXL-C's 16 GB: {result.fits_cxl_c} (paper ran 60)"
    )
    return "\n".join(lines)
