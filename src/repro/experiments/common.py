"""Shared infrastructure for experiment drivers."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.melody import Campaign, CampaignResult, Melody
from repro.cpu.pipeline import PipelineConfig
from repro.errors import DiagnosticError
from repro.hw.cxl import cxl_a, cxl_b, cxl_c, cxl_d
from repro.hw.platform import EMR2S
from repro.hw.target import MemoryTarget
from repro.obs.timers import phase_timer
from repro.workloads import all_workloads
from repro.workloads.base import WorkloadSpec

FAST_SUBSAMPLE = 5
"""In fast mode, run every Nth workload of the population."""

_STRICT = False


def set_strict(enabled: bool) -> None:
    """Toggle strict mode: campaign results are diag-validated on return.

    Flipped by the CLI's ``--strict`` flag; affects every Melody built via
    :func:`campaign_melody` from then on (i.e. all experiment drivers).
    """
    global _STRICT
    _STRICT = bool(enabled)


def strict_enabled() -> bool:
    """Whether strict (invariant-enforcing) mode is on."""
    return _STRICT


class ValidatingMelody(Melody):
    """A Melody that refuses to return an invariant-violating dataset.

    In strict mode every campaign result passes through
    :func:`repro.diag.runcheck.validate_campaign_result` before being
    handed to the caller; any violation raises
    :class:`~repro.errors.DiagnosticError` carrying the full report, so a
    model regression aborts the experiment instead of flowing into a
    rendered figure.
    """

    def run(self, campaign: Campaign, shard=None) -> CampaignResult:
        """Execute the campaign; in strict mode, validate before returning."""
        result = super().run(campaign, shard)
        if _STRICT:
            from repro.diag.runcheck import validate_campaign_result

            with phase_timer("validate", campaign=campaign.name):
                report = validate_campaign_result(result)
            if not report.ok:
                raise DiagnosticError(report, context=f"campaign {campaign.name}")
        return result


def campaign_melody(config: Optional[PipelineConfig] = None) -> Melody:
    """A Melody on the process-wide shared runtime engine.

    Every experiment driver builds its Melody here, so their campaigns
    memoize against each other: the Figure 8a device sweep populates the
    run cache that the Spa / prefetch / breakdown figures then reuse, and
    CLI-level ``--jobs`` / ``--cache-dir`` settings apply to all of them.
    Under ``--strict`` the returned Melody validates every campaign result
    against the diag invariants before handing it back.
    """
    return (
        ValidatingMelody(config) if config is not None else ValidatingMelody()
    )


def experiment_timer(experiment: str, stage: str):
    """A phase timer for one stage (``run``/``render``) of one experiment.

    The CLI's ``figures`` command wraps every driver in these, so a
    ``--metrics`` export carries per-experiment wall-time histograms
    (``phase_seconds{experiment=...,phase=...}``) and a ``--trace`` file
    shows experiments as wall-clock spans alongside the simulator tracks.
    """
    return phase_timer(stage, experiment=experiment)


def workload_population(fast: bool) -> Tuple[WorkloadSpec, ...]:
    """The evaluation population: subsampled in fast mode, full otherwise.

    Fast mode keeps every anchored SPEC workload (the figures call them out
    by name) and every Nth of the rest, preserving suite diversity.
    """
    workloads = all_workloads()
    if not fast:
        return workloads
    anchored = {
        "603.bwaves_s", "619.lbm_s", "649.fotonik3d_s", "654.roms_s",
        "520.omnetpp_r", "605.mcf_s", "602.gcc_s", "631.deepsjeng_s",
        "508.namd_r", "503.bwaves_r", "519.lbm_r",
    }
    picked = [w for w in workloads if w.name in anchored]
    rest = [w for w in workloads if w.name not in anchored]
    picked.extend(rest[::FAST_SUBSAMPLE])
    picked.sort(key=lambda w: (w.suite, w.name))
    return tuple(picked)


def standard_targets() -> dict:
    """Local/NUMA/CXL-A..D on the EMR reference platform."""
    return {
        "Local": EMR2S.local_target(),
        "NUMA": EMR2S.numa_target(),
        "CXL-A": cxl_a(),
        "CXL-B": cxl_b(),
        "CXL-C": cxl_c(),
        "CXL-D": cxl_d(),
    }


def measurement_targets() -> Sequence[MemoryTarget]:
    """The six targets of every device-level figure, in paper order."""
    targets = standard_targets()
    return [targets[k] for k in ("Local", "NUMA", "CXL-A", "CXL-B", "CXL-C", "CXL-D")]
