"""Ablation: trace-level validation of the analytical model's assumptions.

The analytical backend takes miss rates, prefetch coverage, and MLP as
workload parameters.  This experiment derives those same quantities from
first principles -- address traces replayed through the set-associative
cache simulator -- for the canonical patterns, and checks the structural
assumptions the backend builds on:

1. streaming patterns prefetch near-perfectly; pointer chases not at all;
2. dependent chains have MLP 1, independent streams are wide;
3. Zipf reuse is cache-friendlier than uniform random;
4. prefetch timeliness degrades monotonically as memory latency grows
   (the Figure 13 mechanism), with coverage loss in the paper's 2-38%
   band over the CXL latency range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.workloads.calibration import (
    DerivedParameters,
    derive_parameters,
    timeliness_vs_latency,
)
from repro.workloads.traces import (
    pointer_chase,
    random_uniform,
    sequential_stream,
    zipf_accesses,
)

WORKING_SET = 64 * 1024 * 1024
LATENCY_SWEEP_NS = (110.0, 214.0, 271.0, 394.0)
"""Local DRAM plus the three x8 CXL devices' idle latencies."""


@dataclass(frozen=True)
class TraceValidationResult:
    """Derived parameters per pattern + the timeliness sweep."""

    derived: Dict[str, DerivedParameters]
    timeliness: Dict[float, float]  # latency -> timely fraction (stream)

    @property
    def coverage_drop_over_cxl_range(self) -> float:
        """Effective coverage lost from local to CXL-C latency (fraction)."""
        base = self.timeliness[LATENCY_SWEEP_NS[0]]
        worst = self.timeliness[LATENCY_SWEEP_NS[-1]]
        if base <= 0:
            return 0.0
        return (base - worst) / base


def run(fast: bool = True) -> TraceValidationResult:
    """Derive parameters for the canonical patterns."""
    n = 120_000 if fast else 400_000
    traces = {
        "sequential": sequential_stream(n, WORKING_SET),
        "random": random_uniform(n, WORKING_SET),
        "zipf": zipf_accesses(n, WORKING_SET),
        "pointer-chase": pointer_chase(min(n, 80_000), WORKING_SET),
    }
    derived = {
        name: derive_parameters(trace) for name, trace in traces.items()
    }
    timeliness = timeliness_vs_latency(
        traces["sequential"], LATENCY_SWEEP_NS
    )
    return TraceValidationResult(derived=derived, timeliness=timeliness)


def render(result: TraceValidationResult) -> str:
    """Derived-parameter table plus the timeliness sweep."""
    lines = ["Ablation: trace-simulation validation of model assumptions"]
    table = Table(["pattern", "l1 mpki", "l2 mpki", "l3 mpki",
                   "pf coverage", "mlp"])
    for name, d in result.derived.items():
        table.add_row(name, d.l1_mpki, d.l2_mpki, d.l3_mpki,
                      d.prefetch_friendliness, d.mlp)
    lines.append(table.render())
    sweep = "  ".join(
        f"{lat:.0f}ns:{frac * 100:.0f}%"
        for lat, frac in sorted(result.timeliness.items())
    )
    lines.append(f"stream prefetch timeliness vs latency: {sweep}")
    lines.append(
        f"coverage lost over the CXL latency range: "
        f"{result.coverage_drop_over_cxl_range * 100:.0f}%"
    )
    return "\n".join(lines)
