"""Extension: noisy-neighbour QoS in CXL memory pooling.

The pooling scenario the paper motivates (and Recommendation #1 warns
about): several hosts share one expander, and a latency-critical tenant's
tail latency is at the mercy of its neighbours' bandwidth appetite.  We
sweep neighbour load on two devices -- tail-stable CXL-D and tail-fragile
CXL-B -- and measure a Redis tenant's slowdown and its request-level p99.9.

The QoS story follows directly from Figure 3c's onset curves: CXL-D
isolates tenants until its high onset utilization; CXL-B's tails blow up
long before its bandwidth is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.cpu.pipeline import run_workload, sample_run_latencies
from repro.hw.cxl import cxl_b, cxl_d
from repro.hw.platform import EMR2S
from repro.hw.pooling import SharedDeviceView
from repro.workloads import workload_by_name

import numpy as np

NEIGHBOUR_FRACTIONS = (0.0, 0.25, 0.5, 0.7)
"""Neighbour load as a fraction of each device's read bandwidth."""

TENANT = "redis-ycsb-c"


@dataclass(frozen=True)
class PoolingQosResult:
    """Per-device sweep of the tenant's slowdown and tail latency."""

    slowdowns: Dict[str, Dict[float, float]]  # device -> fraction -> S%
    tail_p999_ns: Dict[str, Dict[float, float]]

    def qos_collapse_fraction(self, device: str,
                              slowdown_limit: float = 25.0) -> float:
        """First neighbour fraction where the tenant's SLO breaks."""
        for fraction in sorted(self.slowdowns[device]):
            if self.slowdowns[device][fraction] > slowdown_limit:
                return fraction
        return 1.0


def run(fast: bool = True) -> PoolingQosResult:
    """Sweep neighbour load for the Redis tenant on CXL-B and CXL-D."""
    n = 20_000 if fast else 80_000
    tenant = workload_by_name(TENANT)
    local = EMR2S.local_target()
    base = run_workload(tenant, EMR2S, local)
    slowdowns: Dict[str, Dict[float, float]] = {}
    tails: Dict[str, Dict[float, float]] = {}
    for factory in (cxl_b, cxl_d):
        device = factory()
        name = device.name
        # Neighbour budget is a fraction of what the device can serve at
        # the neighbours' own read/write mix.
        peak = device.peak_bandwidth_gbps(0.7)
        slowdowns[name] = {}
        tails[name] = {}
        for fraction in NEIGHBOUR_FRACTIONS:
            if fraction == 0.0:
                view = device
            else:
                view = SharedDeviceView(
                    factory(), neighbour_gbps=fraction * peak
                )
            result = run_workload(tenant, EMR2S, view)
            slowdowns[name][fraction] = result.slowdown_vs(base)
            latencies = sample_run_latencies(result, view, n=n)
            tails[name][fraction] = float(np.percentile(latencies, 99.9))
    return PoolingQosResult(slowdowns=slowdowns, tail_p999_ns=tails)


def render(result: PoolingQosResult) -> str:
    """Sweep table plus the QoS verdict."""
    lines = [f"Extension: pooling QoS -- {TENANT} vs neighbour load"]
    table = Table(["device", "neighbours", "slowdown %", "p99.9 ns"])
    for device, series in result.slowdowns.items():
        for fraction in sorted(series):
            table.add_row(
                device, f"{fraction * 100:.0f}% of BW",
                series[fraction],
                result.tail_p999_ns[device][fraction],
            )
    lines.append(table.render())
    for device in result.slowdowns:
        collapse = result.qos_collapse_fraction(device)
        verdict = (
            f"SLO (25% slowdown) breaks at {collapse * 100:.0f}% neighbour load"
            if collapse < 1.0
            else "SLO holds across the sweep"
        )
        lines.append(f"  {device}: {verdict}")
    return "\n".join(lines)
