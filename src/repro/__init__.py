"""Melody: systematic CXL memory characterization and performance analysis.

A full reproduction of "Systematic CXL Memory Characterization and
Performance Analysis at Scale" (ASPLOS 2025) with a simulated hardware
substrate in place of the paper's physical testbed (see DESIGN.md for the
substitution inventory).

Top-level layout:

* :mod:`repro.hw` -- DRAM, iMC, NUMA, CXL devices, and composed topologies
* :mod:`repro.cpu` -- CPU backend stall model and PMU counter emulation
* :mod:`repro.workloads` -- the 265-workload registry and suite generators
* :mod:`repro.tools` -- MLC-style loaded-latency tool, MIO tail sampler,
  traffic generators, time-based counter sampling
* :mod:`repro.core` -- Melody campaign orchestration and the Spa analysis
* :mod:`repro.analysis` -- statistics and report rendering
* :mod:`repro.experiments` -- drivers regenerating each paper table/figure
"""

__version__ = "1.0.0"
