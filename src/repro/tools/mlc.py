"""An Intel Memory Latency Checker (MLC) work-alike.

Reproduces the measurement modes the paper uses:

* ``--latency_matrix`` / ``--bandwidth_matrix``: idle latency and peak
  read bandwidth per target (the Table 1 columns).
* loaded-latency sweeps: one latency-measuring thread co-located with
  traffic-generator threads, each injecting a configurable compute delay
  (0-40K cycles) between accesses -- producing the latency-vs-bandwidth
  curves of Figures 3a and 5.
* read/write ratio sweeps (1:0, 4:1, 3:1, 2:1, 3:2, 1:1), exposing each
  device's duplexing behaviour (Figure 5).

Traffic threads are closed-loop, so the tool traces out the whole curve up
to (but never beyond) saturation, exactly like the real MLC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import MeasurementError
from repro.hw.queueing import solve_closed_loop
from repro.hw.target import MemoryTarget

RW_RATIOS = {
    "1:0": 1.0,
    "4:1": 0.8,
    "3:1": 0.75,
    "2:1": 2.0 / 3.0,
    "3:2": 0.6,
    "1:1": 0.5,
}
"""The paper's read:write ratio sweep, as read fractions."""

DEFAULT_DELAYS_CYCLES = (
    0, 50, 100, 150, 200, 300, 400, 500, 700, 1000,
    1500, 2500, 4000, 7000, 12000, 20000, 40000,
)
"""Injected compute delays between accesses, in CPU cycles (MLC style)."""


@dataclass(frozen=True)
class LoadedLatencyPoint:
    """One point on a loaded-latency curve."""

    inject_delay_cycles: int
    latency_ns: float
    bandwidth_gbps: float
    read_fraction: float


class MemoryLatencyChecker:
    """Drives MLC-style measurements against one or more targets."""

    def __init__(self, freq_ghz: float = 2.1, n_threads: int = 31):
        if freq_ghz <= 0 or n_threads <= 0:
            raise MeasurementError("frequency and thread count must be positive")
        self.freq_ghz = freq_ghz
        self.n_threads = n_threads

    # -- matrices -----------------------------------------------------------

    def latency_matrix(self, targets: Sequence[MemoryTarget]) -> dict:
        """Idle latency per target (--latency_matrix)."""
        return {t.name: t.idle_latency_ns() for t in targets}

    def bandwidth_matrix(self, targets: Sequence[MemoryTarget]) -> dict:
        """Peak read bandwidth per target (--bandwidth_matrix)."""
        return {t.name: self.peak_bandwidth(t) for t in targets}

    def peak_bandwidth(self, target: MemoryTarget, read_fraction: float = 1.0) -> float:
        """Peak achieved bandwidth with all threads at zero injected delay."""
        point = self.loaded_latency_point(target, 0, read_fraction)
        return point.bandwidth_gbps

    # -- loaded latency -------------------------------------------------------

    STREAM_MLP = 16.0
    """Concurrent lines each traffic thread keeps in flight (AVX streams)."""

    def loaded_latency_point(
        self,
        target: MemoryTarget,
        inject_delay_cycles: int,
        read_fraction: float = 1.0,
    ) -> LoadedLatencyPoint:
        """Solve one closed-loop operating point.

        Traffic threads stream (many lines in flight, so their per-access
        service is latency / STREAM_MLP); the reported latency is what the
        dependent-load measurement thread observes -- the full distribution
        mean at the achieved load.
        """
        if inject_delay_cycles < 0:
            raise MeasurementError("inject delay cannot be negative")
        delay_ns = inject_delay_cycles / self.freq_ghz

        def latency_at(load: float) -> float:
            return target.distribution(load, read_fraction).mean_ns

        def stream_service(load: float) -> float:
            return latency_at(load) / self.STREAM_MLP

        _, bandwidth = solve_closed_loop(
            stream_service,
            n_threads=self.n_threads,
            inject_delay_ns=delay_ns,
            peak_gbps=target.peak_bandwidth_gbps(read_fraction),
        )
        return LoadedLatencyPoint(
            inject_delay_cycles=inject_delay_cycles,
            latency_ns=latency_at(bandwidth),
            bandwidth_gbps=bandwidth,
            read_fraction=read_fraction,
        )

    def loaded_latency_curve(
        self,
        target: MemoryTarget,
        delays_cycles: Sequence[int] = DEFAULT_DELAYS_CYCLES,
        read_fraction: float = 1.0,
    ) -> Tuple[LoadedLatencyPoint, ...]:
        """The full latency-vs-bandwidth curve (Figure 3a), high load first."""
        points = [
            self.loaded_latency_point(target, d, read_fraction)
            for d in sorted(delays_cycles)
        ]
        return tuple(points)

    def rw_ratio_curves(
        self,
        target: MemoryTarget,
        ratios: dict = None,
        delays_cycles: Sequence[int] = DEFAULT_DELAYS_CYCLES,
    ) -> dict:
        """Loaded-latency curves per read:write ratio (Figure 5)."""
        ratios = ratios or RW_RATIOS
        return {
            label: self.loaded_latency_curve(target, delays_cycles, fraction)
            for label, fraction in ratios.items()
        }

    def peak_bandwidth_by_ratio(self, target: MemoryTarget, ratios: dict = None) -> dict:
        """Peak achieved bandwidth per read:write ratio."""
        ratios = ratios or RW_RATIOS
        return {
            label: self.peak_bandwidth(target, fraction)
            for label, fraction in ratios.items()
        }
