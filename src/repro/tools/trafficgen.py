"""Background traffic generators (the "noise" co-runners of Figure 4).

The paper co-locates its latency-measuring thread with bandwidth-intensive
read/write threads built on AVX streaming loops.  Each generator thread is
closed-loop: it issues back-to-back wide accesses, so its achieved
bandwidth self-limits as the device loads up.  The generator solves that
fixed point and reports the background load it contributes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.hw.queueing import solve_closed_loop
from repro.hw.target import MemoryTarget

AVX_BYTES_PER_ACCESS = 256
"""Bytes one unrolled AVX streaming iteration moves (4 x 64B lines)."""


@dataclass(frozen=True)
class TrafficLoad:
    """Achieved background traffic of a generator gang."""

    n_threads: int
    read_fraction: float
    bandwidth_gbps: float
    utilization: float


class TrafficGenerator:
    """A gang of background read/write traffic threads on one target."""

    def __init__(self, target: MemoryTarget, read_fraction: float = 0.5):
        if not 0.0 <= read_fraction <= 1.0:
            raise MeasurementError(f"read_fraction out of range: {read_fraction}")
        self.target = target
        self.read_fraction = read_fraction

    def offered_load(self, n_threads: int, intensity: float = 1.0) -> TrafficLoad:
        """Solve the gang's achieved bandwidth.

        ``intensity`` in (0, 1] throttles each thread (1.0 = back-to-back
        AVX streaming); the paper's Figure 4 sweeps 0-7 unthrottled threads
        without saturating the device.
        """
        if n_threads < 0:
            raise MeasurementError("thread count cannot be negative")
        if not 0.0 < intensity <= 1.0:
            raise MeasurementError(f"intensity out of (0, 1]: {intensity}")
        if n_threads == 0:
            return TrafficLoad(0, self.read_fraction, 0.0, 0.0)

        # Streaming threads overlap many lines per access; model the
        # per-access service as the line latency divided by the stream MLP.
        stream_mlp = 8.0

        def latency_at(load: float) -> float:
            return (
                self.target.distribution(load, self.read_fraction).mean_ns
                / stream_mlp
            )

        idle_between = (1.0 / intensity - 1.0) * 50.0  # throttle knob (ns)
        bandwidth = solve_closed_loop(
            latency_at,
            n_threads=n_threads,
            inject_delay_ns=idle_between,
            peak_gbps=self.target.peak_bandwidth_gbps(self.read_fraction),
            bytes_per_access=AVX_BYTES_PER_ACCESS,
        )[1]
        util = self.target.utilization(bandwidth, self.read_fraction)
        return TrafficLoad(
            n_threads=n_threads,
            read_fraction=self.read_fraction,
            bandwidth_gbps=bandwidth,
            utilization=min(util, 0.999),
        )
