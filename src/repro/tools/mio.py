"""MIO: the paper's cacheline-level latency microbenchmark.

Existing tools (MLC) report only averages; MIO performs dependent
pointer-chase loads over a working set larger than the LLC and logs the
average latency of every N consecutive operations (N configurable, to
amortize ``rdtsc`` overhead), storing logs on an idle NUMA node to avoid
perturbing the measurement.  From those logs come the latency CDFs and
(p99.9 - p50) tail metrics of Figures 3b, 3c, 4, and 6.

The simulated version samples per-request latencies from the target's
distribution at the operating point set by the co-located threads and/or
background traffic, then averages in groups of N exactly as the real tool
does (group-averaging thins extreme single-request tails, which is why the
paper keeps N small).

With CPU prefetchers enabled (Figure 6) a fraction of chase loads hit a
prefetched line: the pattern MIO chases is partially predictable, so
latencies collapse toward cache-hit time for covered loads while the
*tails* -- excursions on the uncovered ones -- survive, demonstrating the
paper's "prefetching does not fully mitigate CXL tail latency" finding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError
from repro.hw.queueing import solve_closed_loop
from repro.hw.target import MemoryTarget
from repro.rng import DEFAULT_SEED, generator_for
from repro.tools.trafficgen import TrafficLoad

CACHE_HIT_LATENCY_NS = 18.0
"""Latency of a chase load that hits a prefetched line in L2."""

PREFETCH_HIT_FRACTION = 0.85
"""Fraction of chase loads covered when prefetchers are on (Figure 6)."""


@dataclass(frozen=True)
class MioResult:
    """One MIO measurement: per-record latencies at one operating point."""

    target_name: str
    n_threads: int
    group_size: int
    background_gbps: float
    achieved_gbps: float
    latencies_ns: np.ndarray

    def percentile(self, p) -> float:
        """Latency percentile over the recorded samples."""
        return float(np.percentile(self.latencies_ns, p))

    def tail_gap_ns(self, hi: float = 99.9, lo: float = 50.0) -> float:
        """The paper's stability metric (p99.9 - p50 by default)."""
        return self.percentile(hi) - self.percentile(lo)

    def cdf(self, grid_ns: np.ndarray = None):
        """Empirical CDF: returns (grid_ns, fraction <= grid)."""
        if grid_ns is None:
            grid_ns = np.linspace(0.0, float(self.latencies_ns.max()), 512)
        fractions = np.searchsorted(
            np.sort(self.latencies_ns), grid_ns, side="right"
        ) / len(self.latencies_ns)
        return grid_ns, fractions


class MioBenchmark:
    """Pointer-chase latency sampler against one memory target."""

    def __init__(
        self,
        target: MemoryTarget,
        group_size: int = 1,
        samples: int = 100_000,
        seed: int = DEFAULT_SEED,
    ):
        if group_size < 1:
            raise MeasurementError(f"group_size must be >= 1: {group_size}")
        if samples < 1:
            raise MeasurementError(f"samples must be >= 1: {samples}")
        self.target = target
        self.group_size = group_size
        self.samples = samples
        self.seed = seed

    def _chase_load(self, n_threads: int, background_gbps: float) -> float:
        """Self-consistent total load of n pointer-chase threads + noise."""

        def latency_at(load: float) -> float:
            return self.target.distribution(load).mean_ns

        _, chase_bw = solve_closed_loop(
            lambda load: latency_at(load + background_gbps),
            n_threads=n_threads,
            inject_delay_ns=0.0,
            peak_gbps=max(
                1e-3, self.target.peak_bandwidth_gbps() - background_gbps
            ),
        )
        return chase_bw

    def measure(
        self,
        n_threads: int = 1,
        background: TrafficLoad = None,
        prefetchers_on: bool = False,
        read_fraction: float = 1.0,
    ) -> MioResult:
        """Run one measurement.

        Parameters
        ----------
        n_threads:
            Co-located pointer-chase threads (Figure 3b sweeps 1-32).
        background:
            Optional co-located traffic-generator load (Figures 3c and 4).
        prefetchers_on:
            Emulate hardware prefetchers covering part of the chase
            (Figure 6).
        read_fraction:
            Read share of the *combined* traffic at the device.
        """
        if n_threads < 1:
            raise MeasurementError(f"n_threads must be >= 1: {n_threads}")
        rng = generator_for(
            self.seed,
            "mio",
            self.target.name,
            f"t{n_threads}",
            f"bg{background.bandwidth_gbps if background else 0.0:.2f}",
            f"pf{prefetchers_on}",
        )
        bg_gbps = background.bandwidth_gbps if background else 0.0
        chase_gbps = self._chase_load(n_threads, bg_gbps)
        total = chase_gbps + bg_gbps

        raw_count = self.samples * self.group_size
        raw = self.target.sample_latencies(
            raw_count, rng, load_gbps=total, read_fraction=read_fraction
        )
        if prefetchers_on:
            covered = rng.random(raw_count) < PREFETCH_HIT_FRACTION
            # Covered loads hit a prefetched line; excursions survive on the
            # uncovered remainder (and on prefetches that themselves took an
            # excursion, visible as a delayed hit at ~1/3 exposure).
            hit_latency = CACHE_HIT_LATENCY_NS + rng.gamma(2.0, 4.0, raw_count)
            dist = self.target.distribution(total, read_fraction)
            delayed = np.maximum(0.0, raw - dist.mean_ns) / 3.0
            raw = np.where(covered, hit_latency + delayed, raw)
        grouped = raw.reshape(self.samples, self.group_size).mean(axis=1)
        return MioResult(
            target_name=self.target.name,
            n_threads=n_threads,
            group_size=self.group_size,
            background_gbps=bg_gbps,
            achieved_gbps=total,
            latencies_ns=grouped,
        )

    def tail_vs_utilization(
        self,
        utilizations,
        read_fraction: float = 1.0,
    ) -> dict:
        """(p99.9 - p50) at a sweep of background utilizations (Figure 3c)."""
        results = {}
        peak = self.target.peak_bandwidth_gbps(read_fraction)
        for util in utilizations:
            if not 0.0 <= util < 1.0:
                raise MeasurementError(f"utilization out of [0, 1): {util}")
            background = TrafficLoad(
                n_threads=max(1, int(util * 16)),
                read_fraction=read_fraction,
                bandwidth_gbps=util * peak,
                utilization=util,
            )
            result = self.measure(
                n_threads=1, background=background, read_fraction=read_fraction
            )
            results[util] = result.tail_gap_ns()
        return results
