"""Measurement tooling: the instruments Melody drives against the testbed.

* :mod:`repro.tools.mlc` -- an Intel MLC work-alike: idle latency /
  bandwidth matrices, delay-injected loaded-latency curves, read/write
  ratio sweeps.
* :mod:`repro.tools.mio` -- the paper's custom MIO microbenchmark:
  cacheline-granular pointer-chase latency sampling for tail analysis.
* :mod:`repro.tools.trafficgen` -- background read/write traffic threads
  (the "AVX noise" co-runners of Figure 4).
* :mod:`repro.tools.sampler` -- 1 ms time-based performance-counter
  sampling of pipeline runs, feeding the period-based analysis.
"""

from repro.tools.mlc import (
    LoadedLatencyPoint,
    MemoryLatencyChecker,
    RW_RATIOS,
)
from repro.tools.mio import MioBenchmark, MioResult
from repro.tools.trafficgen import TrafficGenerator, TrafficLoad
from repro.tools.sampler import TimeSampler, TimeWindowSample

__all__ = [
    "LoadedLatencyPoint",
    "MemoryLatencyChecker",
    "RW_RATIOS",
    "MioBenchmark",
    "MioResult",
    "TrafficGenerator",
    "TrafficLoad",
    "TimeSampler",
    "TimeWindowSample",
]
