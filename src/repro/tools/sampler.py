"""Time-based performance-counter sampling of pipeline runs.

Real profilers read counters on a wall-clock cadence (the paper samples
every 1 ms).  This module turns a :class:`~repro.cpu.pipeline.RunResult`
into that stream: each phase's totals are spread over its duration and
sliced into fixed windows, with per-window measurement noise -- including
windows that straddle phase boundaries, which is exactly the raggedness the
period-based converter (§5.6) has to deal with.

The sampler can also attach a memory-latency reading per window (the
Figure 7a time series of spiky CXL latencies under low bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.cpu.counters import CounterSample
from repro.cpu.pipeline import RunResult
from repro.errors import MeasurementError
from repro.hw.target import MemoryTarget
from repro.rng import DEFAULT_SEED, generator_for
from repro.units import NS_PER_MS


@dataclass(frozen=True)
class TimeWindowSample:
    """One sampling window: counters accrued during [t_start, t_end)."""

    t_start_ms: float
    t_end_ms: float
    counters: CounterSample
    latency_ns: float  # mean device latency observed in the window
    bandwidth_gbps: float  # offered load in the window

    @property
    def duration_ms(self) -> float:
        """Window length in milliseconds."""
        return self.t_end_ms - self.t_start_ms


class TimeSampler:
    """Slices a run into fixed time windows of counter readings."""

    def __init__(self, window_ms: float = 1.0, seed: int = DEFAULT_SEED,
                 noise: float = 0.01):
        if window_ms <= 0:
            raise MeasurementError(f"window must be positive: {window_ms}")
        if noise < 0:
            raise MeasurementError(f"noise must be >= 0: {noise}")
        self.window_ms = window_ms
        self.seed = seed
        self.noise = noise

    def sample(
        self,
        run: RunResult,
        target: MemoryTarget = None,
        max_windows: int = 100_000,
    ) -> Tuple[TimeWindowSample, ...]:
        """Produce the windowed counter stream for ``run``.

        If ``target`` is given, each window additionally records a sampled
        mean memory latency at the phase's operating point, jittered by the
        target's tail model (Figure 7a's latency spikes come from here).
        """
        freq_hz = run.platform.freq_ghz * 1e9
        rng = generator_for(
            self.seed, "sampler", run.workload.name, run.target_name
        )
        # Build per-phase absolute time spans.
        spans = []
        t0_ms = 0.0
        for phase in run.phases:
            duration_ms = phase.cycles / freq_hz * 1e3
            spans.append((t0_ms, t0_ms + duration_ms, phase))
            t0_ms += duration_ms
        total_ms = t0_ms

        windows = []
        t = 0.0
        span_idx = 0
        while t < total_ms and len(windows) < max_windows:
            t_end = min(t + self.window_ms, total_ms)
            # Accumulate the proportional share of every phase this window
            # overlaps (a window may straddle a phase boundary).
            acc = None
            latency_acc = 0.0
            bandwidth_acc = 0.0
            cursor = t
            idx = span_idx
            while cursor < t_end and idx < len(spans):
                s_start, s_end, phase = spans[idx]
                overlap = min(t_end, s_end) - cursor
                if overlap <= 0:
                    idx += 1
                    continue
                share = overlap / (s_end - s_start)
                piece = phase.counters.scaled(share)
                acc = piece if acc is None else acc.plus(piece)
                weight = overlap / (t_end - t)
                op = phase.operating_point
                latency = op.latency_ns
                if target is not None:
                    # A window's reading is the mean over many accesses, so
                    # per-request excursions average out -- unless the whole
                    # window falls into a congestion *episode* (excursions
                    # are time-correlated on CXL), in which case the window
                    # mean itself spikes.  This is what produces 508.namd's
                    # spiky CXL-C latency at near-idle load (Figure 7a).
                    tail = target.tail_model()
                    dist = target.distribution(op.load_gbps, op.read_fraction)
                    latency = float(
                        target.sample_latencies(
                            8, rng,
                            load_gbps=op.load_gbps,
                            read_fraction=op.read_fraction,
                        ).mean()
                    )
                    episode_prob = min(0.3, 3.0 * tail.tail_prob(dist.util))
                    if rng.random() < episode_prob:
                        latency += float(
                            rng.exponential(2.5 * tail.tail_scale_ns(dist.util))
                        )
                latency_acc += weight * latency
                bandwidth_acc += weight * op.load_gbps
                cursor += overlap
                if cursor >= s_end:
                    idx += 1
            span_idx = max(span_idx, idx - 1) if idx > 0 else 0
            if acc is None:
                break
            if self.noise > 0:
                acc = acc.scaled(max(0.0, float(rng.normal(1.0, self.noise))))
            windows.append(
                TimeWindowSample(
                    t_start_ms=t,
                    t_end_ms=t_end,
                    counters=acc,
                    latency_ns=latency_acc,
                    bandwidth_gbps=bandwidth_acc,
                )
            )
            t = t_end
        return tuple(windows)
