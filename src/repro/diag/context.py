"""The subject pool an invariant-suite run inspects.

A :class:`DiagContext` pins down *what* gets checked: the memory targets
(local DRAM, cross-socket NUMA, the four CXL expanders), the platforms, the
workload population, and the small workload sample used by the expensive
run-based checks (pipeline containment, cache fidelity).  Checks never
instantiate models themselves -- they read them off the context -- so tests
can hand the suite a deliberately broken device or counter builder and
assert that the right invariant trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence, Tuple

from repro.hw.target import MemoryTarget
from repro.rng import DEFAULT_SEED

LOAD_GRID_POINTS = 9
"""Utilization points per device for the load-dependent checks."""

RUN_SAMPLE_SIZE = 3
"""Workloads sampled by the run-based (pipeline / cache) checks."""


def _default_targets() -> Tuple[MemoryTarget, ...]:
    from repro.hw.cxl import cxl_a, cxl_b, cxl_c, cxl_d
    from repro.hw.platform import EMR2S

    return (
        EMR2S.local_target(),
        EMR2S.numa_target(),
        cxl_a(),
        cxl_b(),
        cxl_c(),
        cxl_d(),
    )


def _default_platforms() -> Tuple[object, ...]:
    from repro.hw.platform import PLATFORMS

    return tuple(PLATFORMS.values())


def _default_workloads() -> Tuple[object, ...]:
    from repro.workloads import all_workloads

    return all_workloads()


@dataclass(frozen=True)
class DiagContext:
    """Everything an invariant check may inspect."""

    targets: Tuple[MemoryTarget, ...] = field(default_factory=_default_targets)
    platforms: Tuple[object, ...] = field(default_factory=_default_platforms)
    workloads: Tuple[object, ...] = field(default_factory=_default_workloads)
    seed: int = DEFAULT_SEED
    noise_draws: int = 1000
    load_points: int = LOAD_GRID_POINTS
    run_sample: int = RUN_SAMPLE_SIZE
    rel_tol: float = 1e-6

    @classmethod
    def default(cls) -> "DiagContext":
        """The shipped-model context ``repro validate`` uses."""
        return cls()

    def with_targets(self, targets: Sequence[MemoryTarget]) -> "DiagContext":
        """A copy inspecting ``targets`` instead (test hook)."""
        return replace(self, targets=tuple(targets))

    def cxl_devices(self) -> Tuple[MemoryTarget, ...]:
        """The subset of targets that are assembled CXL devices."""
        from repro.hw.cxl.device import CxlDevice

        return tuple(t for t in self.targets if isinstance(t, CxlDevice))

    def sampled_workloads(self) -> Tuple[object, ...]:
        """An evenly spaced workload sample for the run-based checks."""
        population = self.workloads
        if not population or self.run_sample <= 0:
            return ()
        step = max(1, len(population) // self.run_sample)
        return tuple(population[::step][: self.run_sample])

    def load_grid(self, target: MemoryTarget) -> Tuple[float, ...]:
        """Offered-load points (GB/s) spanning idle to just-below-peak."""
        peak = target.peak_bandwidth_gbps(1.0)
        if self.load_points < 2:
            return (0.0,)
        return tuple(
            peak * 0.95 * i / (self.load_points - 1)
            for i in range(self.load_points)
        )
