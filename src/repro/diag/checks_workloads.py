"""Workload-layer invariants: spec structure and calibration fidelity.

The 265-workload population drives every campaign figure, so a single spec
with inconsistent traffic accounting skews the slowdown CDFs.  The spec
constructor already rejects malformed inputs; these checks cover the
*derived* quantities the backend consumes (read fraction, traffic volume,
phase decomposition) and close the calibration loop: replaying canonical
traces through the cache simulator must reproduce the qualitative targets
the analytical model is calibrated against (streams prefetch well and
enjoy high MLP; pointer chases do neither).
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.diag.context import DiagContext
from repro.diag.registry import invariant, subjects
from repro.diag.report import Violation

_TRACE_ACCESSES = 16_384
_TRACE_WORKING_SET = 8 * 1024 * 1024

STREAM_MIN_COVERAGE = 0.5
"""A unit-stride stream must be at least this prefetch-coverable."""

STREAM_MIN_MLP = 4.0
"""Independent streaming misses must show substantial parallelism."""

CHASE_MAX_COVERAGE = 0.2
"""A dependent pointer chase must be essentially unprefetchable."""

CHASE_MAX_MLP = 1.5
"""Dependent chains serialize: MLP must stay near 1."""


@invariant(
    name="spec-sanity",
    layer="workloads",
    description="derived traffic accounting (read fraction, bytes/kilo-"
    "instruction, phase weights) is finite and well-formed for every "
    "registered workload",
)
def check_spec_sanity(ctx: DiagContext) -> Iterator[Violation]:
    """Derived traffic accounting is well-formed for every workload."""
    population = ctx.workloads
    subjects(check_spec_sanity, len(population))
    for spec in population:
        rf = spec.read_fraction()
        if not 0.0 <= rf <= 1.0 or not math.isfinite(rf):
            yield Violation(
                layer="workloads",
                check="spec-sanity",
                subject=spec.name,
                message="read fraction outside [0, 1]",
                context={"read_fraction": rf},
            )
        volume = spec.memory_bytes_per_kilo_instruction()
        if volume < 0 or not math.isfinite(volume):
            yield Violation(
                layer="workloads",
                check="spec-sanity",
                subject=spec.name,
                message="negative or non-finite memory traffic volume",
                context={"bytes_per_ki": volume},
            )
        weights = sum(p.weight for p in spec.effective_phases())
        if abs(weights - 1.0) > 1e-6:
            yield Violation(
                layer="workloads",
                check="spec-sanity",
                subject=spec.name,
                message="effective phase weights do not sum to 1",
                context={"weight_sum": weights},
            )


@invariant(
    name="calibration-targets",
    layer="workloads",
    description="trace-derived parameters hit their calibration targets: "
    "streams prefetch well with high MLP, pointer chases do neither, and "
    "derived miss rates nest L1 >= L2 >= L3",
)
def check_calibration_targets(ctx: DiagContext) -> Iterator[Violation]:
    """Trace-derived parameters hit their qualitative calibration targets."""
    from repro.workloads.calibration import derive_parameters
    from repro.workloads.traces import pointer_chase, sequential_stream

    cases = (
        (
            "sequential-stream",
            sequential_stream(
                _TRACE_ACCESSES, _TRACE_WORKING_SET, seed=ctx.seed
            ),
            (
                ("prefetch_friendliness", ">=", STREAM_MIN_COVERAGE),
                ("mlp", ">=", STREAM_MIN_MLP),
            ),
        ),
        (
            "pointer-chase",
            pointer_chase(_TRACE_ACCESSES, _TRACE_WORKING_SET, seed=ctx.seed),
            (
                ("prefetch_friendliness", "<=", CHASE_MAX_COVERAGE),
                ("mlp", "<=", CHASE_MAX_MLP),
            ),
        ),
    )
    subjects(check_calibration_targets, len(cases))
    for name, trace, targets in cases:
        derived = derive_parameters(trace)
        for parameter, op, bound in targets:
            value = getattr(derived, parameter)
            ok = value >= bound if op == ">=" else value <= bound
            if not ok:
                yield Violation(
                    layer="workloads",
                    check="calibration-targets",
                    subject=name,
                    message=f"derived {parameter} missed its calibration "
                    f"target ({op} {bound})",
                    context={parameter: value, "target": bound},
                )
        if not derived.l1_mpki >= derived.l2_mpki >= derived.l3_mpki >= 0:
            yield Violation(
                layer="workloads",
                check="calibration-targets",
                subject=name,
                message="derived miss rates violate cache-level nesting",
                context={
                    "l1_mpki": derived.l1_mpki,
                    "l2_mpki": derived.l2_mpki,
                    "l3_mpki": derived.l3_mpki,
                },
            )
