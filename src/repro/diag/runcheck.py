"""Post-hoc validation of produced results (the ``--strict`` path).

Where :mod:`repro.diag.registry` checks the shipped *models*, this module
checks concrete *outputs*: the :class:`~repro.cpu.pipeline.RunResult` and
:class:`~repro.core.melody.CampaignResult` objects an experiment just
produced.  Experiment commands run these under ``--strict`` and promote any
violation to :class:`~repro.errors.DiagnosticError`, so a model regression
can never silently flow into a rendered figure.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.diag.report import CheckResult, DiagReport, Violation


def _check_counters(result, subject: str) -> List[Violation]:
    violations: List[Violation] = []
    counters = result.counters
    if not (
        counters.bound_on_loads
        >= counters.stalls_l1d_miss
        >= counters.stalls_l2_miss
        >= counters.stalls_l3_miss
        >= 0.0
    ):
        violations.append(
            Violation(
                layer="counters",
                check="result-containment",
                subject=subject,
                message="counter reading violates Fig. 10 containment",
                context={
                    "p1": counters.bound_on_loads,
                    "p3": counters.stalls_l1d_miss,
                    "p4": counters.stalls_l2_miss,
                    "p5": counters.stalls_l3_miss,
                },
            )
        )
    for name in ("s_l1", "s_l2", "s_l3", "s_dram", "s_store"):
        value = getattr(counters, name)
        if value < 0:
            violations.append(
                Violation(
                    layer="counters",
                    check="result-containment",
                    subject=subject,
                    message=f"negative differenced stall {name}",
                    context={name: value},
                )
            )
    return violations


def _check_run(result, subject: str) -> List[Violation]:
    violations = _check_counters(result, subject)
    if not (result.cycles > 0 and math.isfinite(result.cycles)):
        violations.append(
            Violation(
                layer="runtime",
                check="result-sanity",
                subject=subject,
                message="non-positive or non-finite cycle count",
                context={"cycles": result.cycles},
            )
        )
        return violations
    phase_cycles = sum(p.cycles for p in result.phases)
    if abs(phase_cycles - result.cycles) > 1e-6 * result.cycles:
        violations.append(
            Violation(
                layer="runtime",
                check="result-sanity",
                subject=subject,
                message="phase cycles do not sum to the run's total",
                context={
                    "phase_sum": phase_cycles,
                    "total": result.cycles,
                },
            )
        )
    phase_instructions = sum(p.instructions for p in result.phases)
    if abs(phase_instructions - result.instructions) > 1e-6 * max(
        result.instructions, 1.0
    ):
        violations.append(
            Violation(
                layer="runtime",
                check="result-sanity",
                subject=subject,
                message="phase instructions do not sum to the run's total",
                context={
                    "phase_sum": phase_instructions,
                    "total": result.instructions,
                },
            )
        )
    return violations


def validate_run_results(
    results: Iterable, label: str = "runs"
) -> DiagReport:
    """Validate a batch of :class:`RunResult` objects."""
    violations: List[Violation] = []
    count = 0
    for result in results:
        count += 1
        subject = f"{result.workload.name}@{result.target_name}"
        violations.extend(_check_run(result, subject))
    return DiagReport(
        results=(
            CheckResult(
                check="result-sanity",
                layer="runtime",
                description=f"produced {label} are structurally sound "
                "(containment, conservation, finiteness)",
                subjects=count,
                violations=tuple(violations),
            ),
        )
    )


def validate_campaign_result(campaign_result) -> DiagReport:
    """Validate a :class:`CampaignResult` (records + underlying runs)."""
    violations: List[Violation] = []
    records = campaign_result.records
    checked_baselines = set()
    for record in records:
        subject = f"{record.workload}@{record.target}"
        if not math.isfinite(record.slowdown_pct):
            violations.append(
                Violation(
                    layer="runtime",
                    check="campaign-sanity",
                    subject=subject,
                    message="non-finite slowdown",
                    context={"slowdown_pct": record.slowdown_pct},
                )
            )
        else:
            recomputed = record.run.slowdown_vs(record.baseline)
            if abs(recomputed - record.slowdown_pct) > 1e-6 * max(
                abs(recomputed), 1.0
            ):
                violations.append(
                    Violation(
                        layer="runtime",
                        check="campaign-sanity",
                        subject=subject,
                        message="recorded slowdown disagrees with its own "
                        "baseline/run pair",
                        context={
                            "recorded_pct": record.slowdown_pct,
                            "recomputed_pct": recomputed,
                        },
                    )
                )
        violations.extend(_check_run(record.run, subject))
        # A baseline run is shared by every target's record; check it once.
        if id(record.baseline) not in checked_baselines:
            checked_baselines.add(id(record.baseline))
            violations.extend(
                _check_run(record.baseline, f"{record.workload}@baseline")
            )
    report = DiagReport(
        results=(
            CheckResult(
                check="campaign-sanity",
                layer="runtime",
                description="campaign records are self-consistent and their "
                "runs structurally sound",
                subjects=len(records),
                violations=tuple(violations),
            ),
        )
    )
    return report
