"""`repro.diag`: the simulation invariant-enforcement layer.

The paper's credibility rests on structural properties real hardware
guarantees for free -- counter containment (Fig. 10), load-monotone latency
curves (Fig. 3), conservation through the link and MC queues -- but our
software substitutes can silently violate them.  This subsystem turns those
latent model bugs into loud diagnostics:

* every layer of the stack registers *invariant checks* (`registry.py`)
  that inspect the shipped models -- link (`checks_link`), CXL device / MC
  (`checks_device`), CPU counters (`checks_counters`), workloads
  (`checks_workloads`), and the execution runtime (`checks_runtime`);
* violations are collected into a structured :class:`DiagReport`
  (`report.py`) with per-layer context, renderable as JSON or text;
* ``python -m repro validate`` runs the suite across all registered
  devices/platforms/workloads and exits non-zero on any violation;
* ``--strict`` on experiment commands promotes violations inside produced
  results to :class:`~repro.errors.DiagnosticError` (`runcheck.py`).
"""

from repro.diag.context import DiagContext
from repro.diag.registry import (
    InvariantCheck,
    all_invariants,
    invariant,
    run_checks,
)
from repro.diag.report import CheckResult, DiagReport, Violation
from repro.diag.runcheck import (
    validate_campaign_result,
    validate_run_results,
)

__all__ = [
    "CheckResult",
    "DiagContext",
    "DiagReport",
    "InvariantCheck",
    "Violation",
    "all_invariants",
    "invariant",
    "run_checks",
    "validate_campaign_result",
    "validate_run_results",
]
