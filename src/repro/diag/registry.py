"""The invariant registry: declare checks, run the suite, get a report.

Each layer's checks module declares functions decorated with
:func:`invariant`; the decorator records an :class:`InvariantCheck` in a
process-wide registry keyed by ``(layer, name)``.  :func:`run_checks`
imports the checks modules lazily (so ``import repro.diag`` stays cheap),
executes every registered check against a :class:`~repro.diag.context
.DiagContext`, and folds the outcomes into a
:class:`~repro.diag.report.DiagReport`.

A check function takes the context and returns an iterable of
:class:`~repro.diag.report.Violation` (empty when the invariant holds) --
it never raises to signal a violation.  An unexpected exception inside a
check is itself reported as a violation of that check: a crashing checker
must fail loudly, not silently vouch for the model.
"""

from __future__ import annotations

import importlib
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.diag.context import DiagContext
from repro.diag.report import CheckResult, DiagReport, Violation

LAYERS = (
    "link", "device", "counters", "workloads", "runtime", "store", "obs",
    "faults", "dist",
)
"""Registered layers, in stack order (wire -> device -> CPU -> sw -> obs);
``store`` follows ``runtime`` (it checks the columnar tier the runtime
cache promotes into), ``faults`` exercises every layer below it with its
chaos harness, and ``dist`` sits last: its coordinator/worker harness
drives the whole stack over real sockets under network chaos."""

_CHECK_MODULES = {
    "link": "repro.diag.checks_link",
    "device": "repro.diag.checks_device",
    "counters": "repro.diag.checks_counters",
    "workloads": "repro.diag.checks_workloads",
    "runtime": "repro.diag.checks_runtime",
    "store": "repro.diag.checks_store",
    "obs": "repro.diag.checks_obs",
    "faults": "repro.diag.checks_faults",
    "dist": "repro.diag.checks_dist",
}

CheckFn = Callable[[DiagContext], Iterable[Violation]]


@dataclass(frozen=True)
class InvariantCheck:
    """One registered invariant: identity plus the function enforcing it."""

    name: str
    layer: str
    description: str
    fn: CheckFn

    def run(self, ctx: DiagContext) -> CheckResult:
        """Execute against ``ctx``; a crash becomes a violation."""
        try:
            violations = tuple(self.fn(ctx))
            subjects = getattr(self.fn, "_diag_subjects", 0)
        except Exception as exc:  # noqa: BLE001 -- report, don't vouch
            violations = (
                Violation(
                    layer=self.layer,
                    check=self.name,
                    subject="<checker>",
                    message=f"check crashed: {exc!r}",
                    context={
                        "traceback": traceback.format_exc(limit=3),
                    },
                ),
            )
            subjects = 0
        return CheckResult(
            check=self.name,
            layer=self.layer,
            description=self.description,
            subjects=subjects,
            violations=violations,
        )


_REGISTRY: Dict[Tuple[str, str], InvariantCheck] = {}


def invariant(name: str, layer: str, description: str) -> Callable[[CheckFn], CheckFn]:
    """Register ``fn`` as the invariant ``layer.name``.

    Re-registration under the same key replaces the old entry (module
    reloads in tests), so the registry never accumulates duplicates.
    """
    if layer not in LAYERS:
        raise ValueError(f"unknown diag layer {layer!r}; expected one of {LAYERS}")

    def register(fn: CheckFn) -> CheckFn:
        _REGISTRY[(layer, name)] = InvariantCheck(
            name=name, layer=layer, description=description, fn=fn
        )
        return fn

    return register


def subjects(fn: CheckFn, count: int) -> None:
    """Record how many subjects ``fn`` examined on its last run."""
    fn._diag_subjects = count  # type: ignore[attr-defined]


def _load_layers(layers: Sequence[str]) -> None:
    for layer in layers:
        importlib.import_module(_CHECK_MODULES[layer])


def all_invariants(
    layers: Optional[Sequence[str]] = None,
) -> Tuple[InvariantCheck, ...]:
    """Every registered check, in stack order then registration order."""
    selected = _resolve_layers(layers)
    _load_layers(selected)
    ordered: List[InvariantCheck] = []
    for layer in selected:
        ordered.extend(
            check for (lay, _), check in _REGISTRY.items() if lay == layer
        )
    return tuple(ordered)


def _resolve_layers(layers: Optional[Sequence[str]]) -> Tuple[str, ...]:
    if layers is None:
        return LAYERS
    unknown = [layer for layer in layers if layer not in LAYERS]
    if unknown:
        raise ValueError(
            f"unknown diag layer(s) {unknown}; expected a subset of {LAYERS}"
        )
    return tuple(layer for layer in LAYERS if layer in layers)


def run_checks(
    ctx: Optional[DiagContext] = None,
    layers: Optional[Sequence[str]] = None,
) -> DiagReport:
    """Run the invariant suite and return the aggregate report."""
    if ctx is None:
        ctx = DiagContext.default()
    return DiagReport(
        results=tuple(check.run(ctx) for check in all_invariants(layers))
    )
