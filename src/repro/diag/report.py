"""Structured diagnostics: violations, per-check results, and the report.

A :class:`Violation` names the broken invariant, the layer it lives in, and
the *subject* (device, workload, counter sample, cache entry) it was
observed on, plus free-form numeric context so the report is actionable
without re-running the suite.  :class:`DiagReport` aggregates one
:class:`CheckResult` per registered invariant and renders as JSON (for CI
and tooling) or human-readable text (for the CLI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class Violation:
    """One observed breach of a registered invariant."""

    layer: str
    check: str
    subject: str
    message: str
    context: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "layer": self.layer,
            "check": self.check,
            "subject": self.subject,
            "message": self.message,
            "context": dict(self.context),
        }

    def render(self) -> str:
        """One human-readable line."""
        ctx = ""
        if self.context:
            pairs = ", ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(self.context.items())
            )
            ctx = f" [{pairs}]"
        return f"{self.check} ({self.subject}): {self.message}{ctx}"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of running one invariant check over its subjects."""

    check: str
    layer: str
    description: str
    subjects: int
    violations: Tuple[Violation, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the invariant held for every subject."""
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "check": self.check,
            "layer": self.layer,
            "description": self.description,
            "subjects": self.subjects,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }


@dataclass(frozen=True)
class DiagReport:
    """The aggregate outcome of an invariant-suite run."""

    results: Tuple[CheckResult, ...]

    @property
    def ok(self) -> bool:
        """Whether every check passed."""
        return all(r.ok for r in self.results)

    @property
    def violations(self) -> Tuple[Violation, ...]:
        """All violations, in check order."""
        return tuple(v for r in self.results for v in r.violations)

    def checks_by_layer(self) -> Dict[str, List[CheckResult]]:
        """Check results grouped by layer, in first-seen order."""
        grouped: Dict[str, List[CheckResult]] = {}
        for result in self.results:
            grouped.setdefault(result.layer, []).append(result)
        return grouped

    def merged(self, other: "DiagReport") -> "DiagReport":
        """A report containing both runs' results."""
        return DiagReport(results=self.results + other.results)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (stable key order)."""
        return {
            "ok": self.ok,
            "checks": len(self.results),
            "violation_count": len(self.violations),
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the report (sorted keys, so diffs are stable)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines: List[str] = []
        for layer, results in self.checks_by_layer().items():
            bad = sum(len(r.violations) for r in results)
            status = "ok" if bad == 0 else f"{bad} violation(s)"
            lines.append(f"[{layer}] {len(results)} check(s): {status}")
            for result in results:
                mark = "pass" if result.ok else "FAIL"
                lines.append(
                    f"  {mark}  {result.check} "
                    f"({result.subjects} subject(s)) -- {result.description}"
                )
                for violation in result.violations:
                    lines.append(f"        ! {violation.render()}")
        total = len(self.violations)
        verdict = (
            "all invariants hold"
            if total == 0
            else f"{total} violation(s) across {len(self.results)} check(s)"
        )
        lines.append(f"validate: {verdict}")
        return "\n".join(lines)


def collect(violations: Iterable[Violation]) -> Tuple[Violation, ...]:
    """Materialize a violation iterable (checker convenience)."""
    return tuple(violations)
