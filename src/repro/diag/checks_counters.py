"""CPU-counter invariants: Figure 10 containment survives measurement noise.

Spa's differential analysis assumes the physically nested stall events keep
their nesting in every reported sample: ``P1 >= P3 >= P4 >= P5`` and hence
non-negative differenced stalls.  Real PMUs guarantee this structurally;
our emulation injects independent multiplicative noise per counter, so the
guarantee has to be *enforced* at the emulation boundary
(:meth:`repro.cpu.counters.CounterSet.build`).  These checks hammer the
builder with randomized true-stall components -- including near-degenerate
ones where adjacent levels differ by less than the noise -- at amplified
noise, and verify the containment chain and the zero-noise differencing
identity.
"""

from __future__ import annotations

from typing import Iterator

from repro.cpu.counters import MEASUREMENT_NOISE, CounterSet
from repro.diag.context import DiagContext
from repro.diag.registry import invariant, subjects
from repro.diag.report import Violation
from repro.errors import MeasurementError
from repro.rng import generator_for

STRESS_NOISE = 10.0 * MEASUREMENT_NOISE
"""Noise level for the containment stress (10x the calibrated PMU noise)."""


def _random_components(rng) -> dict:
    """One random true-stall draw, biased toward near-degenerate nesting."""
    cycles = float(rng.uniform(1e6, 1e9))
    # Log-uniform magnitudes so some levels are tiny relative to the noise
    # -- exactly the regime where independent jitter inverts adjacent
    # counters.
    def stall() -> float:
        return float(10.0 ** rng.uniform(-2.0, 0.0)) * cycles

    return dict(
        cycles=cycles,
        instructions=float(rng.uniform(0.5, 2.0)) * cycles,
        s_l1=stall(),
        s_l2=stall(),
        s_l3=stall(),
        s_dram=stall(),
        s_store=stall(),
        s_core=stall(),
        s_other=stall(),
        frontend_stalls=stall(),
        baseline_load_stalls=stall(),
        serialization_stalls=stall(),
    )


@invariant(
    name="containment-under-noise",
    layer="counters",
    description="emulated counter readings keep the Fig. 10 containment "
    "chain (P1 >= P3 >= P4 >= P5) even at 10x PMU noise",
)
def check_containment_under_noise(ctx: DiagContext) -> Iterator[Violation]:
    """Stress the counter builder at 10x noise; containment must survive."""
    rng = generator_for(ctx.seed, "diag", "counters-containment")
    builder = CounterSet(rng, noise=STRESS_NOISE)
    draws = ctx.noise_draws
    subjects(check_containment_under_noise, draws)
    for i in range(draws):
        components = _random_components(rng)
        try:
            sample = builder.build(**components)
        except MeasurementError as exc:
            # CounterSample.__post_init__ validates containment, so a
            # constructor rejection means the emulation produced a reading
            # no real PMU could.
            yield Violation(
                layer="counters",
                check="containment-under-noise",
                subject=f"draw-{i}",
                message=f"builder produced an invalid reading: {exc}",
                context={"noise": STRESS_NOISE},
            )
            continue
        for name, value in (
            ("s_l1", sample.s_l1),
            ("s_l2", sample.s_l2),
            ("s_l3", sample.s_l3),
            ("s_dram", sample.s_dram),
            ("s_store", sample.s_store),
        ):
            if value < 0:
                yield Violation(
                    layer="counters",
                    check="containment-under-noise",
                    subject=f"draw-{i}",
                    message=f"negative differenced stall {name}",
                    context={name: value, "noise": STRESS_NOISE},
                )


@invariant(
    name="differencing-identity",
    layer="counters",
    description="at zero noise, Spa's differencing recovers the true stall "
    "components plus their fixed baseline shares",
)
def check_differencing_identity(ctx: DiagContext) -> Iterator[Violation]:
    """Zero-noise differencing recovers the true stall components."""
    rng = generator_for(ctx.seed, "diag", "counters-identity")
    builder = CounterSet(rng, noise=0.0)
    draws = min(ctx.noise_draws, 100)
    subjects(check_differencing_identity, draws)
    for i in range(draws):
        components = _random_components(rng)
        sample = builder.build(**components)
        baseline = components["baseline_load_stalls"]
        expectations = (
            ("s_l1", sample.s_l1, components["s_l1"] + 0.30 * baseline),
            ("s_l2", sample.s_l2, components["s_l2"] + 0.15 * baseline),
            ("s_l3", sample.s_l3, components["s_l3"] + 0.15 * baseline),
            ("s_dram", sample.s_dram, components["s_dram"] + 0.40 * baseline),
            ("s_store", sample.s_store, components["s_store"]),
        )
        for name, got, expected in expectations:
            scale = max(abs(expected), components["cycles"] * 1e-9)
            if abs(got - expected) > 1e-6 * scale:
                yield Violation(
                    layer="counters",
                    check="differencing-identity",
                    subject=f"draw-{i}",
                    message=f"differenced {name} does not recover the true "
                    "component at zero noise",
                    context={"got": got, "expected": expected},
                )
