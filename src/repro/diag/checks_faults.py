"""Faults-layer invariants: injection is deterministic, resilience is safe.

The fault subsystem makes two promises that these checks enforce on every
``repro validate`` run:

* **Injection is a pure, keyed transform.**  An empty plan is
  indistinguishable from no plan (byte-identical latencies, identical run
  keys); an enabled plan perturbs both engines identically and
  deterministically; and enabling a plan moves the cell to a *different*
  cache key so faulted results can never shadow fault-free ones.
* **The resilient runtime survives chaos without lying.**  A campaign run
  under seeded worker sabotage completes (no hang, no abort), quarantines
  exactly the doomed cells as :class:`~repro.runtime.executor.FailedCell`
  records, never caches a quarantined cell, and produces surviving
  records bit-identical to a chaos-free run.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.cpu.pipeline import PipelineConfig
from repro.diag.context import DiagContext
from repro.diag.registry import invariant, subjects
from repro.diag.report import Violation
from repro.faults.plan import FaultEpisode, FaultPlan, fault_injection
from repro.hw.cxl.eventdevice import EventDrivenDevice
from repro.runtime.cache import run_key
from repro.runtime.executor import RetryPolicy

_N_REQUESTS = 4000
_LOAD_GBPS = 8.0


def _kitchen_sink_plan(seed: int) -> FaultPlan:
    """Every fault mechanism at once, windows spanning the whole run."""
    return FaultPlan(
        name="diag-kitchen-sink",
        seed=seed,
        episodes=(
            FaultEpisode(kind="link_retry_storm", start_ns=0.0,
                         duration_ns=1e9, retry_multiplier=400.0),
            FaultEpisode(kind="thermal_throttle", start_ns=0.0,
                         duration_ns=1e9, temperature_c=95.0),
            FaultEpisode(kind="device_dropout", start_ns=2_000.0,
                         duration_ns=1_500.0),
            FaultEpisode(kind="ecc", start_ns=0.0, duration_ns=1e9,
                         ecc_single_prob=0.02, ecc_multi_prob=0.002),
        ),
    )


def _counters(result) -> dict:
    return {
        "link_retries": result.link_retries,
        "bank_conflicts": result.bank_conflicts,
        "refresh_collisions": result.refresh_collisions,
        "injected_retries": result.injected_retries,
        "poisoned_reads": result.poisoned_reads,
        "ecc_corrected": result.ecc_corrected,
        "throttled_requests": result.throttled_requests,
    }


@invariant(
    name="plan-neutrality",
    layer="faults",
    description="an installed but empty fault plan is indistinguishable "
    "from no plan: byte-identical latencies and unchanged run keys",
)
def check_plan_neutrality(ctx: DiagContext) -> Iterator[Violation]:
    """Empty plans inject nothing, perturb nothing, and key nothing."""
    devices = ctx.cxl_devices()
    subjects(check_plan_neutrality, len(devices))
    config = PipelineConfig(seed=ctx.seed)
    empty = FaultPlan(name="diag-empty", seed=ctx.seed)
    platform = ctx.platforms[0]
    workload = ctx.sampled_workloads()[0]
    for device in devices:
        sim = EventDrivenDevice(device, seed=ctx.seed)
        bare = sim.simulate(_N_REQUESTS, _LOAD_GBPS, engine="vector")
        with fault_injection(empty):
            covered = sim.simulate(_N_REQUESTS, _LOAD_GBPS, engine="vector")
            key_covered = run_key(workload, platform, device, config)
        key_bare = run_key(workload, platform, device, config)
        if not np.array_equal(bare.latencies_ns, covered.latencies_ns):
            yield Violation(
                layer="faults",
                check="plan-neutrality",
                subject=device.name,
                message="an empty fault plan changed simulated latencies",
                context={"mean_bare": f"{bare.mean_ns:.4f}",
                         "mean_covered": f"{covered.mean_ns:.4f}"},
            )
        if covered.fault_plan is not None or _counters(covered) != _counters(bare):
            yield Violation(
                layer="faults",
                check="plan-neutrality",
                subject=device.name,
                message="an empty fault plan left traces in the result ledger",
                context={"covered": str(_counters(covered))},
            )
        if key_covered != key_bare:
            yield Violation(
                layer="faults",
                check="plan-neutrality",
                subject=device.name,
                message="an empty fault plan perturbed the run cache key",
                context={"bare": key_bare[:16], "covered": key_covered[:16]},
            )


@invariant(
    name="engine-identity-under-faults",
    layer="faults",
    description="with every fault mechanism active, the scalar and vector "
    "engines stay bit-identical and two runs are deterministic",
)
def check_engine_identity(ctx: DiagContext) -> Iterator[Violation]:
    """Faults ride the shared inputs, so engine identity must survive them."""
    devices = ctx.cxl_devices()
    subjects(check_engine_identity, len(devices))
    plan = _kitchen_sink_plan(ctx.seed)
    for device in devices:
        sim = EventDrivenDevice(device, seed=ctx.seed)
        with fault_injection(plan):
            scalar = sim.simulate(_N_REQUESTS, _LOAD_GBPS, engine="scalar")
            vector = sim.simulate(_N_REQUESTS, _LOAD_GBPS, engine="vector")
            again = sim.simulate(_N_REQUESTS, _LOAD_GBPS, engine="vector")
        if not np.array_equal(scalar.latencies_ns, vector.latencies_ns):
            worst = float(
                np.max(np.abs(scalar.latencies_ns - vector.latencies_ns))
            )
            yield Violation(
                layer="faults",
                check="engine-identity-under-faults",
                subject=device.name,
                message="scalar and vector engines diverged under faults",
                context={"max_abs_diff_ns": f"{worst:.6g}"},
            )
        if _counters(scalar) != _counters(vector):
            yield Violation(
                layer="faults",
                check="engine-identity-under-faults",
                subject=device.name,
                message="engines disagree on fault/event counters",
                context={"scalar": str(_counters(scalar)),
                         "vector": str(_counters(vector))},
            )
        if not np.array_equal(vector.latencies_ns, again.latencies_ns):
            yield Violation(
                layer="faults",
                check="engine-identity-under-faults",
                subject=device.name,
                message="two runs under the same plan were not identical",
                context={"plan": plan.key()[:16]},
            )
        if vector.injected_retries == 0 or vector.ecc_corrected == 0:
            yield Violation(
                layer="faults",
                check="engine-identity-under-faults",
                subject=device.name,
                message="kitchen-sink plan injected no faults (dead windows?)",
                context={"counters": str(_counters(vector))},
            )


@invariant(
    name="cache-isolation",
    layer="faults",
    description="an enabled fault plan moves every cell to a distinct "
    "cache key, so faulted runs can never shadow fault-free entries",
)
def check_cache_isolation(ctx: DiagContext) -> Iterator[Violation]:
    """Fault-free and faulted runs of one cell must never share a key."""
    devices = ctx.cxl_devices()
    workloads = ctx.sampled_workloads()
    subjects(check_cache_isolation, len(devices) * len(workloads))
    config = PipelineConfig(seed=ctx.seed)
    platform = ctx.platforms[0]
    plan = _kitchen_sink_plan(ctx.seed)
    other = FaultPlan(name="renamed", episodes=plan.episodes, seed=plan.seed)
    for device in devices:
        for workload in workloads:
            bare = run_key(workload, platform, device, config)
            with fault_injection(plan):
                faulted = run_key(workload, platform, device, config)
            with fault_injection(other):
                renamed = run_key(workload, platform, device, config)
            if faulted == bare:
                yield Violation(
                    layer="faults",
                    check="cache-isolation",
                    subject=f"{workload.name}/{device.name}",
                    message="enabled fault plan did not change the run key",
                    context={"key": bare[:16]},
                )
            if renamed != faulted:
                yield Violation(
                    layer="faults",
                    check="cache-isolation",
                    subject=f"{workload.name}/{device.name}",
                    message="plan key depends on the display name "
                    "(should be content-addressed)",
                    context={"faulted": faulted[:16], "renamed": renamed[:16]},
                )


@invariant(
    name="backoff-schedule",
    layer="faults",
    description="retry backoff is seeded-deterministic, jitter-bounded, "
    "and capped at the policy maximum",
)
def check_backoff_schedule(ctx: DiagContext) -> Iterator[Violation]:
    """The backoff schedule must be reproducible and bounded."""
    policy = RetryPolicy(
        max_attempts=5, backoff_base_s=0.05, backoff_factor=2.0,
        backoff_max_s=0.4, jitter_frac=0.25, seed=ctx.seed,
    )
    attempts = range(1, 8)
    subjects(check_backoff_schedule, len(list(attempts)))
    for attempt in attempts:
        first = policy.backoff_s("diag-cell", attempt)
        second = policy.backoff_s("diag-cell", attempt)
        if first != second:
            yield Violation(
                layer="faults",
                check="backoff-schedule",
                subject=f"attempt-{attempt}",
                message="backoff is not deterministic for a fixed "
                "(seed, cell, attempt)",
                context={"first": f"{first:.6f}", "second": f"{second:.6f}"},
            )
        nominal = min(
            policy.backoff_base_s * policy.backoff_factor ** (attempt - 1),
            policy.backoff_max_s,
        )
        lo = nominal * (1.0 - policy.jitter_frac)
        hi = nominal * (1.0 + policy.jitter_frac)
        if not lo <= first <= hi:
            yield Violation(
                layer="faults",
                check="backoff-schedule",
                subject=f"attempt-{attempt}",
                message="backoff left the jitter envelope",
                context={"value": f"{first:.6f}",
                         "envelope": f"[{lo:.6f}, {hi:.6f}]"},
            )


@invariant(
    name="chaos-survival",
    layer="faults",
    description="a campaign under seeded worker sabotage completes, "
    "quarantines exactly the doomed cells, never caches them, and leaves "
    "surviving records bit-identical to a chaos-free run",
)
def check_chaos_survival(ctx: DiagContext) -> Iterator[Violation]:
    """The chaos harness is the end-to-end resilience proof."""
    from repro.faults.harness import fault_free_reference, run_chaos_campaign

    outcome = run_chaos_campaign(seed=ctx.seed + 11)
    subjects(check_chaos_survival, outcome.expected_records)
    failed_keys = {f.key for f in outcome.result.failed}
    if set(outcome.doomed_keys) - failed_keys:
        yield Violation(
            layer="faults",
            check="chaos-survival",
            subject="quarantine",
            message="a doomed cell was not quarantined",
            context={"doomed": str(outcome.doomed_keys),
                     "failed": str(sorted(failed_keys))},
        )
    for record in outcome.result.failed:
        if record.reason not in ("error", "crash", "timeout"):
            yield Violation(
                layer="faults",
                check="chaos-survival",
                subject=record.key[:16],
                message=f"FailedCell carries unknown reason {record.reason!r}",
                context={},
            )
        if outcome.engine.cache.get(record.key) is not None:
            yield Violation(
                layer="faults",
                check="chaos-survival",
                subject=record.key[:16],
                message="a quarantined cell was written to the run cache",
                context={"reason": record.reason},
            )
    expected_survivors = outcome.expected_records - len(outcome.doomed_keys)
    if len(outcome.result.records) != expected_survivors:
        yield Violation(
            layer="faults",
            check="chaos-survival",
            subject="records",
            message="chaos campaign lost records beyond the doomed cells",
            context={"got": str(len(outcome.result.records)),
                     "expected": str(expected_survivors)},
        )
    reference = fault_free_reference(outcome.campaign)
    ref_by_cell = {
        (r.workload, r.target): r.slowdown_pct for r in reference.records
    }
    for record in outcome.result.records:
        expected = ref_by_cell.get((record.workload, record.target))
        if expected is None or record.slowdown_pct != expected:
            yield Violation(
                layer="faults",
                check="chaos-survival",
                subject=f"{record.workload}/{record.target}",
                message="a surviving record differs from the chaos-free "
                "run (retries must be bit-transparent)",
                context={"chaos": f"{record.slowdown_pct!r}",
                         "reference": f"{expected!r}"},
            )
