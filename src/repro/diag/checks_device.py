"""Device / memory-controller invariants: latency floors, queue sanity,
throughput ceilings, and Table 1 calibration fidelity.

These encode what Figure 3a and Table 1 guarantee about real devices:
loaded latency never dips below the unloaded floor and grows monotonically
with injected bandwidth up to the saturation wall; a device never serves
more than its link or backend can carry; and the white-box latency
breakdown must conserve the calibrated idle latency (nothing unattributed,
nothing counted twice).
"""

from __future__ import annotations

from typing import Iterator

from repro.diag.context import DiagContext
from repro.diag.registry import invariant, subjects
from repro.diag.report import Violation

_UTIL_GRID = tuple(i / 10.0 for i in range(11))


@invariant(
    name="latency-floor",
    layer="device",
    description="loaded latency never drops below the unloaded latency "
    "(queueing and tails only ever add)",
)
def check_latency_floor(ctx: DiagContext) -> Iterator[Violation]:
    """Loaded latency stays at or above the unloaded floor."""
    targets = ctx.targets
    subjects(check_latency_floor, len(targets))
    for target in targets:
        floor = target.mean_latency_ns(0.0)
        for load in ctx.load_grid(target):
            loaded = target.mean_latency_ns(load)
            if loaded < floor * (1.0 - ctx.rel_tol):
                yield Violation(
                    layer="device",
                    check="latency-floor",
                    subject=target.name,
                    message="loaded latency below the unloaded floor",
                    context={
                        "load_gbps": load,
                        "loaded_ns": loaded,
                        "floor_ns": floor,
                    },
                )


@invariant(
    name="latency-monotone",
    layer="device",
    description="mean loaded latency is non-decreasing in injected "
    "bandwidth (Figure 3a curve shape)",
)
def check_latency_monotone(ctx: DiagContext) -> Iterator[Violation]:
    """Loaded latency never falls as injected bandwidth rises."""
    targets = ctx.targets
    subjects(check_latency_monotone, len(targets))
    for target in targets:
        grid = ctx.load_grid(target)
        latencies = [target.mean_latency_ns(load) for load in grid]
        for (lo_load, lo_ns), (hi_load, hi_ns) in zip(
            zip(grid, latencies), zip(grid[1:], latencies[1:])
        ):
            if hi_ns < lo_ns * (1.0 - ctx.rel_tol):
                yield Violation(
                    layer="device",
                    check="latency-monotone",
                    subject=target.name,
                    message="latency decreased as injected bandwidth rose",
                    context={
                        "load_lo_gbps": lo_load,
                        "load_hi_gbps": hi_load,
                        "latency_lo_ns": lo_ns,
                        "latency_hi_ns": hi_ns,
                    },
                )


@invariant(
    name="throughput-ceiling",
    layer="device",
    description="achievable throughput never exceeds the link payload "
    "ceiling or the DRAM backend",
)
def check_throughput_ceiling(ctx: DiagContext) -> Iterator[Violation]:
    """Served throughput respects link and backend capacities."""
    devices = ctx.cxl_devices()
    subjects(check_throughput_ceiling, len(devices))
    for device in devices:
        profile = device.profile
        link_ceiling = profile.link.effective_gbps_per_direction
        read_peak = device.peak_bandwidth_gbps(1.0)
        if read_peak > link_ceiling * (1.0 + ctx.rel_tol):
            yield Violation(
                layer="device",
                check="throughput-ceiling",
                subject=device.name,
                message="read throughput exceeds the link payload ceiling",
                context={
                    "read_peak_gbps": read_peak,
                    "link_ceiling_gbps": link_ceiling,
                },
            )
        _, best_total = device.bandwidth_model().best_mix()
        backend = profile.backend_gbps
        if best_total > backend * (1.0 + ctx.rel_tol):
            yield Violation(
                layer="device",
                check="throughput-ceiling",
                subject=device.name,
                message="total throughput exceeds the DRAM backend capacity",
                context={
                    "best_total_gbps": best_total,
                    "backend_gbps": backend,
                },
            )


@invariant(
    name="queue-sanity",
    layer="device",
    description="queueing delay is zero below onset, monotone in "
    "utilization, and capped by the full-queue delay",
)
def check_queue_sanity(ctx: DiagContext) -> Iterator[Violation]:
    """Queueing delay is zero at idle, monotone, and capped."""
    targets = ctx.targets
    subjects(check_queue_sanity, len(targets))
    for target in targets:
        queue = target.queue_model()
        if queue.delay_ns(0.0) != 0.0:
            yield Violation(
                layer="device",
                check="queue-sanity",
                subject=target.name,
                message="non-zero queueing delay at zero utilization",
                context={"delay_at_zero_ns": queue.delay_ns(0.0)},
            )
        previous = 0.0
        for util in _UTIL_GRID:
            delay = queue.delay_ns(util)
            if delay < previous - ctx.rel_tol * max(previous, 1.0):
                yield Violation(
                    layer="device",
                    check="queue-sanity",
                    subject=target.name,
                    message="queueing delay decreased with utilization",
                    context={
                        "util": util,
                        "delay_ns": delay,
                        "previous_ns": previous,
                    },
                )
            if delay > queue.max_delay_ns * (1.0 + ctx.rel_tol):
                yield Violation(
                    layer="device",
                    check="queue-sanity",
                    subject=target.name,
                    message="queueing delay exceeds the full-queue cap",
                    context={
                        "util": util,
                        "delay_ns": delay,
                        "max_delay_ns": queue.max_delay_ns,
                    },
                )
            previous = delay


@invariant(
    name="breakdown-conservation",
    layer="device",
    description="the white-box latency breakdown has non-negative "
    "components that sum to the calibrated idle latency",
)
def check_breakdown_conservation(ctx: DiagContext) -> Iterator[Violation]:
    """Latency breakdown components are non-negative and conserve the total."""
    devices = ctx.cxl_devices()
    subjects(check_breakdown_conservation, len(devices))
    for device in devices:
        breakdown = device.latency_breakdown_ns()
        for component, value in breakdown.items():
            if value < 0:
                yield Violation(
                    layer="device",
                    check="breakdown-conservation",
                    subject=device.name,
                    message=f"negative {component!r} latency component",
                    context={component: value},
                )
        total = sum(breakdown.values())
        calibrated = device.profile.idle_latency_ns
        if abs(total - calibrated) > ctx.rel_tol * calibrated:
            yield Violation(
                layer="device",
                check="breakdown-conservation",
                subject=device.name,
                message="breakdown components do not sum to the calibrated "
                "idle latency",
                context={"sum_ns": total, "calibrated_ns": calibrated},
            )


_ENGINE_CHECK_REQUESTS = 600
_ENGINE_CHECK_POINTS = (
    # (load as a fraction of read peak, read fraction)
    (0.35, 1.0),
    (0.7, 0.7),
)


@invariant(
    name="eventsim-engine-identity",
    layer="device",
    description="the vectorized event-simulation kernels are bit-identical "
    "to the scalar reference loop (latencies and all event counters)",
)
def check_eventsim_engine_identity(ctx: DiagContext) -> Iterator[Violation]:
    """Scalar and vector engines agree bit-for-bit on every device."""
    import numpy as np

    from repro.hw.cxl.eventdevice import EventDrivenDevice

    devices = ctx.cxl_devices()
    subjects(
        check_eventsim_engine_identity,
        len(devices) * len(_ENGINE_CHECK_POINTS),
    )
    for device in devices:
        sim = EventDrivenDevice(device, seed=ctx.seed)
        peak = device.peak_bandwidth_gbps(1.0)
        for load_fraction, read_fraction in _ENGINE_CHECK_POINTS:
            load = load_fraction * peak
            scalar = sim.simulate(
                _ENGINE_CHECK_REQUESTS, load,
                read_fraction=read_fraction, engine="scalar",
            )
            vector = sim.simulate(
                _ENGINE_CHECK_REQUESTS, load,
                read_fraction=read_fraction, engine="vector",
            )
            subject = f"{device.name}@{load_fraction:.2f}/rf{read_fraction}"
            if not np.array_equal(scalar.latencies_ns, vector.latencies_ns):
                diff = np.abs(scalar.latencies_ns - vector.latencies_ns)
                yield Violation(
                    layer="device",
                    check="eventsim-engine-identity",
                    subject=subject,
                    message="vector engine latencies diverge from the "
                    "scalar reference",
                    context={
                        "diverging_requests": int(
                            np.count_nonzero(diff > 0.0)
                        ),
                        "max_abs_diff_ns": float(diff.max()),
                    },
                )
            counters = {
                "bank_conflicts": (
                    scalar.bank_conflicts, vector.bank_conflicts
                ),
                "refresh_collisions": (
                    scalar.refresh_collisions, vector.refresh_collisions
                ),
                "link_retries": (scalar.link_retries, vector.link_retries),
            }
            mismatched = {
                name: {"scalar": s, "vector": v}
                for name, (s, v) in counters.items()
                if s != v
            }
            if mismatched:
                yield Violation(
                    layer="device",
                    check="eventsim-engine-identity",
                    subject=subject,
                    message="vector engine event counters diverge from the "
                    "scalar reference",
                    context=mismatched,
                )


@invariant(
    name="eventsim-batch-identity",
    layer="device",
    description="the fused batch kernels return byte-identical results to "
    "solo execution for every cell, including under fault plans",
)
def check_eventsim_batch_identity(ctx: DiagContext) -> Iterator[Violation]:
    """Batched execution is indistinguishable from solo, cell by cell.

    One heterogeneous batch fuses every device at every operating point;
    a second batch runs under a fault plan exercising the per-cell RNG
    streams (retry storm mutates the retry draws, a thermal window
    applies ``service_scale``).  A divergence anywhere means the
    planner's strategy choice could leak into figures.
    """
    import numpy as np

    from repro.faults.plan import FaultEpisode, FaultPlan, fault_injection
    from repro.hw.cxl.eventdevice import EventDrivenDevice, simulate_batch

    devices = ctx.cxl_devices()
    sims = [EventDrivenDevice(device, seed=ctx.seed) for device in devices]
    points = [
        (
            sim,
            _ENGINE_CHECK_REQUESTS,
            load_fraction * sim.device.peak_bandwidth_gbps(1.0),
            read_fraction,
        )
        for sim in sims
        for load_fraction, read_fraction in _ENGINE_CHECK_POINTS
    ]
    plan = FaultPlan(
        name="diag-batch-identity",
        episodes=(
            FaultEpisode(
                kind="link_retry_storm", start_ns=2_000, duration_ns=30_000
            ),
            FaultEpisode(
                kind="thermal_throttle", start_ns=10_000, duration_ns=40_000
            ),
        ),
    )
    subjects(check_eventsim_batch_identity, 2 * len(points))

    def sweep(label):
        solo = [
            sim.simulate(n, load, read_fraction=rf, engine="vector")
            for sim, n, load, rf in points
        ]
        batched = simulate_batch(points)
        for (sim, _, load, rf), s, b in zip(points, solo, batched):
            subject = f"{sim.device.name}@{load:.1f}gbps/rf{rf}{label}"
            if not np.array_equal(s.latencies_ns, b.latencies_ns):
                diff = np.abs(s.latencies_ns - b.latencies_ns)
                yield Violation(
                    layer="device",
                    check="eventsim-batch-identity",
                    subject=subject,
                    message="batched latencies diverge from solo execution",
                    context={
                        "diverging_requests": int(
                            np.count_nonzero(diff > 0.0)
                        ),
                        "max_abs_diff_ns": float(diff.max()),
                    },
                )
            mismatched = {
                name: {"solo": sv, "batch": bv}
                for name, (sv, bv) in {
                    "bank_conflicts": (s.bank_conflicts, b.bank_conflicts),
                    "refresh_collisions": (
                        s.refresh_collisions, b.refresh_collisions
                    ),
                    "link_retries": (s.link_retries, b.link_retries),
                    "injected_retries": (
                        s.injected_retries, b.injected_retries
                    ),
                    "throttled_requests": (
                        s.throttled_requests, b.throttled_requests
                    ),
                }.items()
                if sv != bv
            }
            if mismatched:
                yield Violation(
                    layer="device",
                    check="eventsim-batch-identity",
                    subject=subject,
                    message="batched event counters diverge from solo "
                    "execution",
                    context=mismatched,
                )

    yield from sweep("")
    with fault_injection(plan):
        yield from sweep("/faulted")


@invariant(
    name="table1-calibration",
    layer="device",
    description="instantiated devices reproduce their Table 1 operating "
    "point (idle latency, read bandwidth) exactly",
)
def check_table1_calibration(ctx: DiagContext) -> Iterator[Violation]:
    """Devices reproduce their Table 1 calibration exactly."""
    devices = ctx.cxl_devices()
    subjects(check_table1_calibration, len(devices))
    for device in devices:
        profile = device.profile
        idle = device.idle_latency_ns()
        if abs(idle - profile.idle_latency_ns) > ctx.rel_tol * profile.idle_latency_ns:
            yield Violation(
                layer="device",
                check="table1-calibration",
                subject=device.name,
                message="idle latency drifted from the Table 1 calibration",
                context={
                    "idle_ns": idle,
                    "table1_ns": profile.idle_latency_ns,
                },
            )
        read_peak = device.peak_bandwidth_gbps(1.0)
        expected = min(profile.read_gbps, profile.backend_gbps)
        if abs(read_peak - expected) > ctx.rel_tol * expected:
            yield Violation(
                layer="device",
                check="table1-calibration",
                subject=device.name,
                message="read bandwidth drifted from the Table 1 calibration",
                context={"read_peak_gbps": read_peak, "table1_gbps": expected},
            )
