"""Runtime-layer invariants: the memoization layer must be invisible.

The campaign engine's whole value proposition is that a cache hit is
indistinguishable from a recompute.  These checks run real pipeline cells
and verify (a) a disk round-trip through :class:`~repro.runtime.cache
.RunCache` reproduces the stored result bit-identically, (b) re-running
the same cell recomputes bit-identical observables (the determinism the
content-addressed key relies on), and (c) the key itself is stable across
object reconstruction and distinct across cells.
"""

from __future__ import annotations

import tempfile
from typing import Iterator

from repro.cpu.pipeline import PipelineConfig, run_workload
from repro.diag.context import DiagContext
from repro.diag.registry import invariant, subjects
from repro.diag.report import Violation
from repro.runtime.cache import RunCache, run_key
from repro.runtime.serialize import run_result_to_dict


def _reference_platform(ctx: DiagContext):
    for platform in ctx.platforms:
        if getattr(platform, "name", "") == "EMR2S":
            return platform
    return ctx.platforms[0]


def _reference_target(ctx: DiagContext):
    devices = ctx.cxl_devices()
    return devices[0] if devices else ctx.targets[0]


@invariant(
    name="cache-fidelity",
    layer="runtime",
    description="a disk-cache round trip and a recompute both reproduce a "
    "run's observables bit-identically",
)
def check_cache_fidelity(ctx: DiagContext) -> Iterator[Violation]:
    """Cache round trips and recomputes are bit-identical to the original run."""
    platform = _reference_platform(ctx)
    target = _reference_target(ctx)
    config = PipelineConfig(seed=ctx.seed)
    workloads = ctx.sampled_workloads()
    subjects(check_cache_fidelity, len(workloads))
    with tempfile.TemporaryDirectory(prefix="repro-diag-") as cache_dir:
        cache = RunCache(cache_dir)
        for workload in workloads:
            result = run_workload(workload, platform, target, config)
            reference = run_result_to_dict(result)
            key = run_key(workload, platform, target, config)
            cache.put(key, result)
            cache.clear_memory()
            reloaded = cache.get(key)
            if reloaded is None:
                yield Violation(
                    layer="runtime",
                    check="cache-fidelity",
                    subject=workload.name,
                    message="stored run did not survive a disk round trip",
                    context={"key": key[:16]},
                )
            elif run_result_to_dict(reloaded) != reference:
                yield Violation(
                    layer="runtime",
                    check="cache-fidelity",
                    subject=workload.name,
                    message="disk round trip altered the run's observables",
                    context={"key": key[:16]},
                )
            recomputed = run_workload(workload, platform, target, config)
            if run_result_to_dict(recomputed) != reference:
                yield Violation(
                    layer="runtime",
                    check="cache-fidelity",
                    subject=workload.name,
                    message="recomputing the same cell produced different "
                    "observables (pipeline non-determinism)",
                    context={"key": key[:16]},
                )


@invariant(
    name="run-key-stability",
    layer="runtime",
    description="the content-addressed run key is stable across object "
    "reconstruction and distinct across cells",
)
def check_run_key_stability(ctx: DiagContext) -> Iterator[Violation]:
    """Run keys are stable across reconstruction and distinct across cells."""
    from repro.hw.cxl.device import CxlDevice

    platform = _reference_platform(ctx)
    config = PipelineConfig(seed=ctx.seed)
    workloads = ctx.sampled_workloads()
    devices = ctx.cxl_devices()
    subjects(check_run_key_stability, len(workloads) * max(1, len(devices)))
    seen = {}
    for device in devices:
        rebuilt = CxlDevice(device.profile, temperature_c=device.temperature_c)
        for workload in workloads:
            key = run_key(workload, platform, device, config)
            rebuilt_key = run_key(workload, platform, rebuilt, config)
            if key != rebuilt_key:
                yield Violation(
                    layer="runtime",
                    check="run-key-stability",
                    subject=f"{workload.name}/{device.name}",
                    message="identical reconstructed cell hashed to a "
                    "different run key",
                    context={"key": key[:16], "rebuilt": rebuilt_key[:16]},
                )
            collision = seen.get(key)
            if collision is not None:
                yield Violation(
                    layer="runtime",
                    check="run-key-stability",
                    subject=f"{workload.name}/{device.name}",
                    message=f"distinct cells share a run key with {collision}",
                    context={"key": key[:16]},
                )
            seen[key] = f"{workload.name}/{device.name}"
