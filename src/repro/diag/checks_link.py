"""Link-layer invariants: flit conservation and duplex bandwidth ceilings.

The Flex Bus link is the one component every CXL access crosses twice, so a
modelling error here silently shifts every latency and bandwidth number in
the reproduction.  These checks pin the wire-level conservation laws:

* a flit cannot deliver more payload than it carries, and the payload
  bandwidth the link advertises must equal raw wire rate x encoding
  efficiency x payload fraction (no overhead may be dropped or counted
  twice -- the bug the PCIE_EFFICIENCY recalibration fixed);
* a device cannot advertise more per-direction bandwidth than its link's
  payload ceiling (Table 1's 52 GB/s CXL-D reads must fit through an x16
  gen5 link);
* the link's round-trip latency must charge serialization and expected
  retry cost once per flit crossing (two per access), never less.
"""

from __future__ import annotations

from typing import Iterator

from repro.diag.context import DiagContext
from repro.diag.registry import invariant, subjects
from repro.diag.report import Violation
from repro.hw.bandwidth import SHARED_BUS
from repro.hw.cxl.link import FLITS_PER_ACCESS, PCIE_EFFICIENCY, PCIE_GTPS


@invariant(
    name="flit-conservation",
    layer="link",
    description="payload fits in the flit; effective bandwidth = raw x "
    "encoding x payload fraction (overhead charged exactly once)",
)
def check_flit_conservation(ctx: DiagContext) -> Iterator[Violation]:
    """Flit bookkeeping conserves wire bytes and never exceeds raw rate."""
    devices = ctx.cxl_devices()
    subjects(check_flit_conservation, len(devices))
    for device in devices:
        link = device.profile.link
        flit = link.flit
        if not 0 < flit.payload_bytes <= flit.total_bytes:
            yield Violation(
                layer="link",
                check="flit-conservation",
                subject=device.name,
                message="flit payload exceeds flit size",
                context={
                    "payload_bytes": flit.payload_bytes,
                    "total_bytes": flit.total_bytes,
                },
            )
            continue
        raw = PCIE_GTPS[link.pcie_gen] * link.lanes / 8.0
        expected = (
            raw
            * PCIE_EFFICIENCY[link.pcie_gen]
            * (flit.payload_bytes / flit.total_bytes)
        )
        effective = link.effective_gbps_per_direction
        if abs(effective - expected) > ctx.rel_tol * expected:
            yield Violation(
                layer="link",
                check="flit-conservation",
                subject=device.name,
                message="effective bandwidth does not conserve wire bytes "
                "(overhead dropped or double-counted)",
                context={
                    "effective_gbps": effective,
                    "expected_gbps": expected,
                    "raw_gbps": raw,
                },
            )
        if effective > raw * (1.0 + ctx.rel_tol):
            yield Violation(
                layer="link",
                check="flit-conservation",
                subject=device.name,
                message="payload bandwidth exceeds raw wire bandwidth",
                context={"effective_gbps": effective, "raw_gbps": raw},
            )


@invariant(
    name="duplex-ceiling",
    layer="link",
    description="advertised per-direction device bandwidth fits through "
    "the link's payload ceiling",
)
def check_duplex_ceiling(ctx: DiagContext) -> Iterator[Violation]:
    """Device bandwidth figures fit through the link payload ceiling."""
    devices = ctx.cxl_devices()
    subjects(check_duplex_ceiling, len(devices))
    for device in devices:
        profile = device.profile
        ceiling = profile.link.effective_gbps_per_direction
        bound = ceiling * (1.0 + ctx.rel_tol)
        for direction, gbps in (
            ("read", profile.read_gbps),
            ("write", profile.write_gbps),
        ):
            if gbps > bound:
                yield Violation(
                    layer="link",
                    check="duplex-ceiling",
                    subject=device.name,
                    message=f"{direction} bandwidth exceeds the link's "
                    "per-direction payload ceiling",
                    context={
                        "direction": direction,
                        "device_gbps": gbps,
                        "link_ceiling_gbps": ceiling,
                        "lanes": profile.link.lanes,
                    },
                )
        if profile.duplex_mode == SHARED_BUS:
            # A shared-bus device drives one direction at a time, so even
            # the best mixed-traffic total must fit one direction's wire.
            _, best_total = device.bandwidth_model().best_mix()
            if best_total > bound:
                yield Violation(
                    layer="link",
                    check="duplex-ceiling",
                    subject=device.name,
                    message="shared-bus total bandwidth exceeds one "
                    "direction's payload ceiling",
                    context={
                        "best_total_gbps": best_total,
                        "link_ceiling_gbps": ceiling,
                    },
                )


@invariant(
    name="retry-accounting",
    layer="link",
    description="round-trip overhead charges serialization + expected "
    "retry cost per flit crossing (two per access)",
)
def check_retry_accounting(ctx: DiagContext) -> Iterator[Violation]:
    """Round-trip latency charges retry + serialization per flit crossing."""
    devices = ctx.cxl_devices()
    subjects(check_retry_accounting, len(devices))
    for device in devices:
        link = device.profile.link
        per_flit = link.serialization_ns() + link.expected_retry_ns_per_flit()
        expected = FLITS_PER_ACCESS * per_flit + 2.0 * link.stack_latency_ns
        actual = link.round_trip_overhead_ns()
        if abs(actual - expected) > ctx.rel_tol * expected:
            yield Violation(
                layer="link",
                check="retry-accounting",
                subject=device.name,
                message="round-trip overhead disagrees with per-flit "
                "accounting (retry cost charged per access, not per flit?)",
                context={
                    "round_trip_ns": actual,
                    "expected_ns": expected,
                    "retry_ns_per_flit": link.expected_retry_ns_per_flit(),
                },
            )
        floor = FLITS_PER_ACCESS * link.serialization_ns()
        if actual < floor - ctx.rel_tol * floor:
            yield Violation(
                layer="link",
                check="retry-accounting",
                subject=device.name,
                message="round-trip overhead below the two-flit "
                "serialization floor",
                context={"round_trip_ns": actual, "floor_ns": floor},
            )
