"""Dist-layer invariants: the coordinator fabric never changes results.

The distributed campaign fabric (:mod:`repro.dist`) makes three promises
that these checks enforce on every ``repro validate`` run:

* **The lease state machine is sound.**  Attempts are charged at grant,
  a lease is dead exactly at its deadline, stale failure reports are
  dropped, exhausted budgets quarantine, and the at-most-once commit
  distinguishes duplicates from conflicts -- all checked against the
  pure :class:`~repro.dist.lease.LeaseTable` with a fake clock.
* **Chaos cannot change the answer.**  A campaign run through a real
  coordinator and real socket workers -- one speaking through the
  seeded chaos transport, one abandoning its socket mid-lease --
  completes and leaves the shared cache assembling records
  bit-identical to a solo run.
* **Degradation is graceful and honest.**  A cell that fails every
  attempt quarantines as a ``FailedCell`` record, is never cached, and
  the rest of the campaign completes around it.
"""

from __future__ import annotations

import json
import tempfile
from typing import Iterator, List

from repro.diag.context import DiagContext
from repro.diag.registry import invariant, subjects
from repro.diag.report import Violation
from repro.dist.lease import LeaseTable, WorkUnit
from repro.runtime.executor import RetryPolicy


class _FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def _units(n: int) -> List[WorkUnit]:
    return [
        WorkUnit(
            unit_id=f"u{i}", kind="grid", workload=f"w{i}",
            target="CXL-A", key=f"k{i}", platform="EMR2S",
        )
        for i in range(n)
    ]


@invariant(
    name="lease-state-machine",
    layer="dist",
    description="leases charge attempts at grant, expire exactly at the "
    "deadline, drop stale reports, quarantine exhausted units, and "
    "commit at most once",
)
def check_lease_state_machine(ctx: DiagContext) -> Iterator[Violation]:
    """Drive the pure lease table through every transition."""
    subjects(check_lease_state_machine, 3)

    def bad(subject: str, message: str, **context: str):
        return Violation(
            layer="dist", check="lease-state-machine", subject=subject,
            message=message, context=context,
        )

    clock = _FakeClock()
    policy = RetryPolicy(
        max_attempts=2, backoff_base_s=0.0, jitter_frac=0.0
    )
    table = LeaseTable(
        _units(2), policy=policy, lease_s=10.0, clock=clock
    )
    lease = table.acquire("w1")
    if lease is None or lease.attempt != 1 or lease.deadline != 110.0:
        yield bad("grant", "first grant must charge attempt 1 with "
                  "deadline now+lease_s", lease=repr(lease))
        return
    clock.now = 109.999
    if table.expire():
        yield bad("expiry", "a lease expired before its deadline")
    clock.now = 110.0
    reaped = table.expire()
    if len(reaped) != 1:
        yield bad("expiry", "a lease at exactly its deadline must "
                  "expire", reaped=str(len(reaped)))
    # The original holder answers late: the expiry already charged the
    # attempt, so the stale report must be dropped on the floor.
    if table.fail(lease.unit_id, lease.lease_id, "w1", "error", "late"):
        yield bad("stale-report", "a failure report against an expired "
                  "lease was accepted")
    # Second grant exhausts the 2-attempt budget on the next failure.
    second = table.acquire("w2")
    if second is None or second.unit_id != lease.unit_id \
            or second.attempt != 2:
        yield bad("reassign", "the expired unit must be regrantable at "
                  "attempt 2", lease=repr(second))
        return
    if not table.fail(second.unit_id, second.lease_id, "w2", "error",
                      "boom"):
        yield bad("fail", "the current holder's failure report was "
                  "dropped")
    quarantined = table.quarantined()
    if len(quarantined) != 1 or quarantined[0].key != "k0" \
            or quarantined[0].attempts != 2:
        yield bad("quarantine", "exhausting the budget must quarantine "
                  "with the full attempt count",
                  records=repr(quarantined))
    # At-most-once commit on the surviving unit.
    third = table.acquire("w1")
    verdict = table.commit(third.unit_id, third.lease_id, "w1", "d1")
    if verdict != "committed":
        yield bad("commit", "first delivery must commit",
                  verdict=verdict)
    if table.commit(third.unit_id, third.lease_id, "w1", "d1") \
            != "duplicate":
        yield bad("commit", "identical redelivery must read as a "
                  "duplicate")
    if table.commit(third.unit_id, "L999", "w2", "d2") != "conflict":
        yield bad("commit", "divergent redelivery must read as a "
                  "conflict")
    if table.conflicts[-1]["digest"] != "d2":
        yield bad("commit", "the conflict record must carry the "
                  "divergent digest")
    # A late success resurrects the quarantined unit.
    if table.commit("u0", "L1", "w1", "d0") != "resurrected":
        yield bad("resurrect", "a late success must revoke quarantine")
    if not table.done or table.quarantined():
        yield bad("terminal", "all units committed must mean done with "
                  "an empty quarantine",
                  progress=str(table.progress()))


@invariant(
    name="dist-campaign-identity",
    layer="dist",
    description="a campaign through the coordinator -- chaos transport "
    "active, one worker dying mid-lease -- completes and assembles "
    "records bit-identical to a solo run",
)
def check_dist_campaign_identity(ctx: DiagContext) -> Iterator[Violation]:
    """The end-to-end proof: sockets + chaos + death change nothing."""
    from repro.dist.harness import (
        SMOKE_SPEC,
        WorkerPlan,
        run_dist_campaign,
        solo_records,
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        outcome = run_dist_campaign(
            cache_dir,
            workers=(
                WorkerPlan(name="chaotic", net_chaos_seed=ctx.seed),
                WorkerPlan(name="mortal", die_after=1),
            ),
            lease_s=10.0,
            deadline_s=300.0,
        )
        subjects(check_dist_campaign_identity, outcome.summary.units)
        if not outcome.summary.complete:
            yield Violation(
                layer="dist", check="dist-campaign-identity",
                subject="completion",
                message="the campaign wedged under chaos",
                context={"progress": str(outcome.summary.committed)},
            )
            return
        if outcome.summary.conflicts:
            yield Violation(
                layer="dist", check="dist-campaign-identity",
                subject="commit",
                message="workers delivered divergent results for one "
                "unit (determinism broke)",
                context={"conflicts": str(outcome.summary.conflicts)},
            )
        if outcome.summary.quarantined:
            yield Violation(
                layer="dist", check="dist-campaign-identity",
                subject="quarantine",
                message="healthy cells were quarantined (recovery must "
                "absorb chaos, not give up)",
                context={
                    "records": str([
                        f.key[:16] for f in outcome.summary.quarantined
                    ]),
                },
            )
        if outcome.worker_codes[1] != 9:
            yield Violation(
                layer="dist", check="dist-campaign-identity",
                subject="harness",
                message="the mortal worker did not die mid-lease "
                "(the scenario under test never happened)",
                context={"codes": str(outcome.worker_codes)},
            )
        assembled = solo_records(SMOKE_SPEC, cache_dir)
    reference = solo_records(SMOKE_SPEC, None)
    if json.dumps(assembled, sort_keys=True) \
            != json.dumps(reference, sort_keys=True):
        yield Violation(
            layer="dist", check="dist-campaign-identity",
            subject="bit-identity",
            message="records assembled from the dist cache differ from "
            "a solo run",
            context={"assembled": str(len(assembled)),
                     "reference": str(len(reference))},
        )


@invariant(
    name="dist-quarantine",
    layer="dist",
    description="a cell failing every attempt quarantines as a "
    "FailedCell, stays out of the cache, and the campaign completes "
    "around it",
)
def check_dist_quarantine(ctx: DiagContext) -> Iterator[Violation]:
    """Graceful degradation end to end: doomed cell, finished campaign."""
    from repro.dist.harness import (
        SMOKE_SPEC,
        WorkerPlan,
        doomed_key,
        run_dist_campaign,
    )
    from repro.faults.chaos import ChaosPolicy
    from repro.runtime.cache import RunCache

    doomed = doomed_key(SMOKE_SPEC, index=0)
    chaos = ChaosPolicy(doomed=(doomed,), seed=ctx.seed)
    with tempfile.TemporaryDirectory() as cache_dir:
        outcome = run_dist_campaign(
            cache_dir,
            workers=(WorkerPlan(name="saboteur", cell_chaos=chaos),),
            policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
            deadline_s=300.0,
        )
        subjects(check_dist_quarantine, outcome.summary.units)
        if not outcome.summary.complete:
            yield Violation(
                layer="dist", check="dist-quarantine",
                subject="completion",
                message="a doomed cell wedged the campaign (it must "
                "quarantine and move on)",
                context={"committed": str(outcome.summary.committed)},
            )
            return
        records = outcome.summary.quarantined
        if len(records) != 1 or records[0].key != doomed:
            yield Violation(
                layer="dist", check="dist-quarantine",
                subject="quarantine",
                message="exactly the doomed cell must be quarantined",
                context={"got": str([r.key[:16] for r in records]),
                         "expected": doomed[:16]},
            )
            return
        record = records[0]
        if record.attempts != 2 or record.reason != "error":
            yield Violation(
                layer="dist", check="dist-quarantine",
                subject="record",
                message="the quarantine record must carry the spent "
                "budget and diagnosis",
                context={"attempts": str(record.attempts),
                         "reason": record.reason},
            )
        if RunCache(cache_dir).get(doomed) is not None:
            yield Violation(
                layer="dist", check="dist-quarantine",
                subject="cache",
                message="a quarantined cell was committed to the "
                "shared cache",
                context={"key": doomed[:16]},
            )
        if outcome.summary.committed != outcome.summary.units - 1:
            yield Violation(
                layer="dist", check="dist-quarantine",
                subject="completion",
                message="cells beyond the doomed one went missing",
                context={"committed": str(outcome.summary.committed),
                         "units": str(outcome.summary.units)},
            )
