"""Store-layer invariants: the columnar tier must be invisible.

The columnar store's contract is byte-identity -- a result promoted
into segments + manifest and read back must be indistinguishable from
the JSON-tier document it came from, scans must agree with brute-force
filtering, and merging two shards' manifests must either produce the
exact union or refuse loudly.  These checks build real event-sim and
analytic results, push them through a temporary store, and compare
canonical documents (ndarray-normalized, so float bit patterns count).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import Iterator

from repro.cpu.pipeline import PipelineConfig, run_workload
from repro.diag.context import DiagContext
from repro.diag.registry import invariant, subjects
from repro.diag.report import Violation
from repro.runtime.cache import RunCache, run_key
from repro.store import ResultStore, StoreConflict, canonical_document


def _sim_result(ctx: DiagContext, offered_gbps: float = 4.0):
    from repro.hw.cxl.eventdevice import EventDrivenDevice

    devices = ctx.cxl_devices()
    device = devices[0] if devices else None
    if device is None:
        return None
    return EventDrivenDevice(device, seed=ctx.seed).simulate(
        2_000, offered_gbps, read_fraction=0.75
    )


def _canonical_json(doc) -> str:
    return json.dumps(canonical_document(doc), sort_keys=True)


@invariant(
    name="store-roundtrip",
    layer="store",
    description="event-sim and analytic documents survive the "
    "segment/manifest round trip bit-identically",
)
def check_store_roundtrip(ctx: DiagContext) -> Iterator[Violation]:
    """Split/store/reassemble reproduces both result kinds bit-exactly."""
    from repro.hw.platform import EMR2S

    sim = _sim_result(ctx)
    workloads = ctx.sampled_workloads()
    subjects(check_store_roundtrip, len(workloads) + (1 if sim else 0))
    with tempfile.TemporaryDirectory(prefix="repro-diag-") as tmp:
        store = ResultStore(Path(tmp) / "store")
        writer = store.writer("f" * 64)
        expected = {}
        if sim is not None:
            doc = sim.to_dict()
            writer.add("a" * 64, doc)
            expected["a" * 64] = ("eventsim", _canonical_json(doc))
        target = ctx.targets[0]
        config = PipelineConfig(seed=ctx.seed)
        for index, workload in enumerate(workloads):
            from repro.runtime.serialize import (
                platform_to_dict,
                run_result_to_dict,
                workload_to_dict,
            )

            result = run_workload(workload, EMR2S, target, config)
            doc = run_result_to_dict(result, embed_context=False)
            key = f"{index:064x}"
            writer.add(
                key, doc,
                workload_doc=workload_to_dict(workload),
                platform_doc=platform_to_dict(EMR2S),
            )
            expected[key] = (workload.name, _canonical_json(doc))
        writer.commit()
        store.refresh()
        for key, (subject, reference) in expected.items():
            reloaded = _canonical_json(store.get(key))
            if reloaded != reference:
                yield Violation(
                    layer="store",
                    check="store-roundtrip",
                    subject=str(subject),
                    message="store round trip altered the document",
                    context={"key": key[:16]},
                )


@invariant(
    name="store-scan-consistency",
    layer="store",
    description="vectorized manifest scans agree with brute-force "
    "filtering over every stored entry",
)
def check_store_scan_consistency(ctx: DiagContext) -> Iterator[Violation]:
    """Every scan predicate returns exactly the brute-force match set."""
    devices = ctx.cxl_devices()[:2]
    subjects(check_store_scan_consistency, len(devices))
    if not devices:
        return
    from repro.hw.cxl.eventdevice import EventDrivenDevice

    with tempfile.TemporaryDirectory(prefix="repro-diag-") as tmp:
        store = ResultStore(Path(tmp) / "store")
        writer = store.writer("e" * 64)
        index = 0
        for device in devices:
            for offered in (2.0, 6.0):
                sim = EventDrivenDevice(device, seed=ctx.seed).simulate(
                    500, offered, read_fraction=0.75
                )
                writer.add(f"{index:064x}", sim.to_dict())
                index += 1
        writer.commit()
        store.refresh()
        entries = [store.entry_for(key) for key in store.keys()]
        probes = [
            {"device": devices[0].name},
            {"min_gbps": 3.0},
            {"device": devices[-1].name, "max_gbps": 3.0},
            {"kind": "eventsim"},
            {"kind": "analytic"},
        ]
        for probe in probes:
            got = {hit.key for hit in store.scan(**probe)}
            want = set()
            for entry in entries:
                if "kind" in probe and entry.kind != probe["kind"]:
                    continue
                if "device" in probe and entry.device != probe["device"]:
                    continue
                if "min_gbps" in probe and not (
                    entry.offered_gbps >= probe["min_gbps"]
                ):
                    continue
                if "max_gbps" in probe and not (
                    entry.offered_gbps <= probe["max_gbps"]
                ):
                    continue
                want.add(entry.key)
            if got != want:
                yield Violation(
                    layer="store",
                    check="store-scan-consistency",
                    subject=str(sorted(probe)),
                    message=f"scan returned {len(got)} keys, brute force "
                    f"{len(want)}",
                    context={"probe": str(probe)},
                )


@invariant(
    name="store-merge-identity",
    layer="store",
    description="compacting shard manifests yields the exact union and "
    "refuses non-identical duplicate cells",
)
def check_store_merge_identity(ctx: DiagContext) -> Iterator[Violation]:
    """Two shards compact to their union; conflicting overlap raises."""
    subjects(check_store_merge_identity, 2)
    sim_a = _sim_result(ctx, offered_gbps=2.0)
    sim_b = _sim_result(ctx, offered_gbps=6.0)
    if sim_a is None or sim_b is None:
        return
    fingerprint = "d" * 64
    with tempfile.TemporaryDirectory(prefix="repro-diag-") as tmp:
        store = ResultStore(Path(tmp) / "store")
        shared_key = "c" * 64
        for job, sim, extra_key in (
            ("shard0of2", sim_a, "a" * 64),
            ("shard1of2", sim_b, "b" * 64),
        ):
            writer = store.writer(fingerprint, job)
            writer.add(extra_key, sim.to_dict())
            writer.add(shared_key, sim_a.to_dict())  # identical overlap
            writer.commit()
        store.refresh()
        store.compact(fingerprint)
        expected = {"a" * 64, "b" * 64, shared_key}
        if set(store.keys()) != expected:
            yield Violation(
                layer="store",
                check="store-merge-identity",
                subject="union",
                message=f"compacted store holds {len(store)} keys, "
                f"expected {len(expected)}",
            )
        merged = _canonical_json(store.get(shared_key))
        if merged != _canonical_json(sim_a.to_dict()):
            yield Violation(
                layer="store",
                check="store-merge-identity",
                subject="overlap",
                message="identical duplicate cell changed across the merge",
            )
    with tempfile.TemporaryDirectory(prefix="repro-diag-") as tmp:
        store = ResultStore(Path(tmp) / "store")
        for job, sim in (("shard0of2", sim_a), ("shard1of2", sim_b)):
            writer = store.writer(fingerprint, job)
            writer.add(shared_key, sim.to_dict())  # conflicting overlap
            writer.commit()
        store.refresh()
        try:
            store.compact(fingerprint)
        except StoreConflict:
            pass
        else:
            yield Violation(
                layer="store",
                check="store-merge-identity",
                subject="conflict",
                message="compact silently merged two different documents "
                "under one cell key",
            )


@invariant(
    name="store-json-equivalence",
    layer="store",
    description="a warm RunCache read served from the columnar tier "
    "equals the JSON-tier read bit-identically",
)
def check_store_json_equivalence(ctx: DiagContext) -> Iterator[Violation]:
    """The store tier and the JSON tier are interchangeable on read."""
    from repro.hw.platform import EMR2S
    from repro.runtime.serialize import run_result_to_dict

    workloads = ctx.sampled_workloads()
    subjects(check_store_json_equivalence, len(workloads))
    if not workloads:
        return
    target = ctx.targets[0]
    config = PipelineConfig(seed=ctx.seed)
    with tempfile.TemporaryDirectory(prefix="repro-diag-") as tmp:
        cache = RunCache(tmp)
        keys = {}
        for workload in workloads:
            key = run_key(workload, EMR2S, target, config)
            cache.put(key, run_workload(workload, EMR2S, target, config))
            keys[key] = workload.name
        cache.promote_store("b" * 64, keys=list(keys))
        for key, name in keys.items():
            json_only = RunCache(tmp, store_tier=False)
            from_json = json_only.get(key)
            cache.clear_memory()
            store_hits = cache.store_hits
            from_store = cache.get(key)
            if cache.store_hits != store_hits + 1:
                yield Violation(
                    layer="store",
                    check="store-json-equivalence",
                    subject=name,
                    message="warm read was not served from the columnar "
                    "store tier",
                    context={"key": key[:16]},
                )
                continue
            reference = _canonical_json(run_result_to_dict(from_json))
            if _canonical_json(run_result_to_dict(from_store)) != reference:
                yield Violation(
                    layer="store",
                    check="store-json-equivalence",
                    subject=name,
                    message="store-tier read differs from the JSON-tier "
                    "read",
                    context={"key": key[:16]},
                )
