"""Obs-layer invariants: instrumentation observes, never participates.

The whole point of :mod:`repro.obs` is to measure the measurement system
without perturbing it.  These checks enforce that contract on the shipped
models:

* **span accounting** -- on a fully traced event simulation, each
  request's span durations sum exactly (to numerical tolerance) to the
  latency the simulator reported for it.  A span model that drops, double
  counts, or misattributes a pipeline stage fails here.
* **trace noninterference** -- tracing on vs. off produces bit-identical
  latencies and identical event counters.  Since the untraced run resolves
  ``engine="auto"`` to the vectorized kernels while the traced run takes
  the scalar reference loop, this doubles as an end-to-end cross-engine
  comparison (the ``device`` layer checks the engines against each other
  directly).
* **metrics noninterference** -- running the pipeline with a live metrics
  registry installed produces bit-identical run observables.
* **export wellformedness** -- a populated registry round-trips through
  JSON with self-consistent histogram accounting and emits parseable
  Prometheus text.
* **serve event noninterference** -- executing a characterization query
  under the full serve observability pipeline (wide-event logger firing
  per cell, flight recorder, per-thread trace buffer) renders the exact
  same response bytes as a bare run, and every emitted event is
  schema-valid ndjson.
"""

from __future__ import annotations

import json
import re
from typing import Iterator

import numpy as np

from repro.diag.context import DiagContext
from repro.diag.registry import invariant, subjects
from repro.diag.report import Violation

SPAN_CHECK_REQUESTS = 400
"""Requests per device in the fully traced accounting simulation."""

SPAN_CHECK_LOAD_FRACTION = 0.4
"""Offered load as a fraction of device peak (deep enough for queueing)."""


def _sim_load(device) -> float:
    return SPAN_CHECK_LOAD_FRACTION * device.peak_bandwidth_gbps(1.0)


@invariant(
    name="span-accounting",
    layer="obs",
    description="per-request trace span durations sum to the request's "
    "reported latency",
)
def check_span_accounting(ctx: DiagContext) -> Iterator[Violation]:
    """Each traced request's spans tile its latency exactly."""
    from repro.hw.cxl.eventdevice import EventDrivenDevice
    from repro.obs.trace import TraceBuffer

    devices = ctx.cxl_devices()
    subjects(check_span_accounting, len(devices) * SPAN_CHECK_REQUESTS)
    for device in devices:
        buffer = TraceBuffer(sample_every=1)
        result = EventDrivenDevice(device, seed=ctx.seed).simulate(
            SPAN_CHECK_REQUESTS, _sim_load(device), trace=buffer
        )
        tracks = buffer.tracks()
        if len(tracks) != SPAN_CHECK_REQUESTS:
            yield Violation(
                layer="obs",
                check="span-accounting",
                subject=device.name,
                message="fully sampled trace is missing request tracks",
                context={
                    "expected": SPAN_CHECK_REQUESTS,
                    "traced": len(tracks),
                },
            )
            continue
        for track in tracks:
            span_sum = buffer.span_sum_ns(track)
            latency = float(result.latencies_ns[track])
            if abs(span_sum - latency) > 1e-6 + 1e-9 * latency:
                yield Violation(
                    layer="obs",
                    check="span-accounting",
                    subject=f"{device.name}/req{track}",
                    message="span durations do not sum to the reported "
                    "latency",
                    context={
                        "span_sum_ns": span_sum,
                        "latency_ns": latency,
                        "gap_ns": span_sum - latency,
                    },
                )


@invariant(
    name="trace-noninterference",
    layer="obs",
    description="tracing on vs. off yields bit-identical simulated "
    "latencies and event counters",
)
def check_trace_noninterference(ctx: DiagContext) -> Iterator[Violation]:
    """Tracing must not perturb the simulated timeline."""
    from repro.hw.cxl.eventdevice import EventDrivenDevice
    from repro.obs.trace import TraceBuffer

    devices = ctx.cxl_devices()
    subjects(check_trace_noninterference, len(devices))
    for device in devices:
        sim = EventDrivenDevice(device, seed=ctx.seed)
        load = _sim_load(device)
        plain = sim.simulate(SPAN_CHECK_REQUESTS, load)
        traced = sim.simulate(
            SPAN_CHECK_REQUESTS, load, trace=TraceBuffer(sample_every=3)
        )
        if not np.array_equal(plain.latencies_ns, traced.latencies_ns):
            yield Violation(
                layer="obs",
                check="trace-noninterference",
                subject=device.name,
                message="tracing changed per-request latencies",
                context={
                    "max_abs_diff_ns": float(
                        np.max(np.abs(plain.latencies_ns - traced.latencies_ns))
                    ),
                },
            )
        observed = (
            traced.bank_conflicts, traced.refresh_collisions,
            traced.link_retries,
        )
        expected = (
            plain.bank_conflicts, plain.refresh_collisions,
            plain.link_retries,
        )
        if observed != expected:
            yield Violation(
                layer="obs",
                check="trace-noninterference",
                subject=device.name,
                message="tracing changed simulator event counters",
                context={"plain": str(expected), "traced": str(observed)},
            )


@invariant(
    name="metrics-noninterference",
    layer="obs",
    description="running the pipeline with a live metrics registry yields "
    "bit-identical run observables",
)
def check_metrics_noninterference(ctx: DiagContext) -> Iterator[Violation]:
    """Metrics collection must not perturb pipeline results."""
    from repro.cpu.pipeline import PipelineConfig, run_workload
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.runtime.serialize import run_result_to_dict

    platform = next(
        (p for p in ctx.platforms if getattr(p, "name", "") == "EMR2S"),
        ctx.platforms[0],
    )
    devices = ctx.cxl_devices()
    target = devices[0] if devices else ctx.targets[0]
    config = PipelineConfig(seed=ctx.seed)
    workloads = ctx.sampled_workloads()
    subjects(check_metrics_noninterference, len(workloads))
    for workload in workloads:
        reference = run_result_to_dict(
            run_workload(workload, platform, target, config)
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            observed = run_result_to_dict(
                run_workload(workload, platform, target, config)
            )
        if observed != reference:
            yield Violation(
                layer="obs",
                check="metrics-noninterference",
                subject=workload.name,
                message="a live metrics registry changed run observables",
                context={"instruments": len(registry)},
            )


_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+(inf)?$"
)


@invariant(
    name="export-wellformed",
    layer="obs",
    description="a populated registry exports self-consistent JSON and "
    "parseable Prometheus text",
)
def check_export_wellformed(ctx: DiagContext) -> Iterator[Violation]:
    """Registry exports stay machine-readable and internally consistent."""
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("demo.requests", device="CXL-A").inc(7)
    registry.gauge("demo.hit_rate").set(0.5)
    histogram = registry.histogram("demo.latency_ns", buckets=(100.0, 500.0))
    for value in (50.0, 120.0, 5000.0, 130.0):
        histogram.observe(value)
    subjects(check_export_wellformed, len(registry))

    try:
        snapshot = json.loads(registry.to_json())
    except ValueError as exc:
        yield Violation(
            layer="obs",
            check="export-wellformed",
            subject="json",
            message=f"JSON export does not parse: {exc}",
        )
        return
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            yield Violation(
                layer="obs",
                check="export-wellformed",
                subject="json",
                message=f"export is missing its {section!r} section",
            )
    for name, data in snapshot.get("histograms", {}).items():
        if sum(data["counts"]) != data["count"]:
            yield Violation(
                layer="obs",
                check="export-wellformed",
                subject=name,
                message="histogram bucket counts do not sum to its count",
                context={
                    "bucket_sum": sum(data["counts"]),
                    "count": data["count"],
                },
            )

    for line in registry.to_prometheus().strip().splitlines():
        if line.startswith("#") or not line:
            continue
        if not _PROM_SAMPLE.match(line):
            yield Violation(
                layer="obs",
                check="export-wellformed",
                subject="prometheus",
                message="sample line does not match the exposition format",
                context={"line": line},
            )


EVENT_CHECK_QUERY = {
    "device": "cxl-a",
    "points": [{"offered_gbps": 2.0}, {"offered_gbps": 5.0}],
    "n_requests": 3_000,
}
"""The small characterization query the serve-event check executes twice."""


@invariant(
    name="serve-event-noninterference",
    layer="obs",
    description="the serve observability pipeline (wide events, flight "
    "recorder, per-thread tracing) leaves response bytes unchanged and "
    "emits only schema-valid events",
)
def check_serve_event_noninterference(ctx: DiagContext) -> Iterator[Violation]:
    """The serve pipeline's instrumentation must be invisible in results.

    Runs the same query bare and then under everything ``repro serve``
    hangs off a request -- an :class:`EventLogger` firing one ``cell``
    event per point, a :class:`FlightRecorder` holding the wide event,
    and a per-thread :class:`TraceBuffer` (which, as in the server's
    worker threads, forces the scalar reference engine) -- and demands
    byte-identical rendered documents plus schema-valid ndjson output.
    """
    from io import StringIO

    from repro.obs.events import EventLogger, build_event, validate_event
    from repro.obs.flight import FlightRecorder
    from repro.obs.trace import TraceBuffer, thread_tracing
    from repro.serve.query import (
        build_engine,
        execute_query,
        parse_query,
        render_document,
    )

    query = parse_query(dict(EVENT_CHECK_QUERY, seed=ctx.seed))
    subjects(check_serve_event_noninterference, len(query.points))
    baseline = render_document(execute_query(query, build_engine()))

    sink = StringIO()
    logger = EventLogger(sink, level="debug")
    recorder = FlightRecorder(capacity=4)
    buffer = TraceBuffer(sample_every=1)

    def on_point(index: int, doc) -> None:
        logger.emit(
            "cell", level="debug", device=query.device,
            index=index, ok="error" not in doc,
        )

    with thread_tracing(buffer):
        document = execute_query(query, build_engine(), on_point=on_point)
    observed = render_document(document)
    recorder.record(
        build_event("request", level="info", request_id="diag-req",
                    status=200, query_key=query.key()),
        [],
    )

    if observed != baseline:
        yield Violation(
            layer="obs",
            check="serve-event-noninterference",
            subject=query.device,
            message="the observability pipeline changed the rendered "
            "response document",
            context={
                "baseline_bytes": len(baseline),
                "observed_bytes": len(observed),
            },
        )
    if logger.stats()["emitted"] != len(query.points):
        yield Violation(
            layer="obs",
            check="serve-event-noninterference",
            subject=query.device,
            message="the event logger did not emit one event per cell",
            context={
                "expected": len(query.points),
                "stats": str(logger.stats()),
            },
        )
    for line in sink.getvalue().splitlines():
        try:
            record = json.loads(line)
        except ValueError as exc:
            yield Violation(
                layer="obs",
                check="serve-event-noninterference",
                subject="ndjson",
                message=f"emitted event line does not parse: {exc}",
                context={"line": line},
            )
            continue
        problems = validate_event(record)
        if problems:
            yield Violation(
                layer="obs",
                check="serve-event-noninterference",
                subject="ndjson",
                message="emitted event fails schema validation",
                context={"problems": str(problems), "line": line},
            )
    if recorder.lookup("diag-req") is None:
        yield Violation(
            layer="obs",
            check="serve-event-noninterference",
            subject="flight",
            message="flight recorder lost the recorded request",
            context={"stats": str(recorder.stats())},
        )
