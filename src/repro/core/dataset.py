"""Campaign dataset export/import — the "open-sourced datasets" artifact.

The paper ships its measurement datasets alongside the tools.  This module
serializes a :class:`~repro.core.melody.CampaignResult` to portable CSV
(one row per workload x target, slowdown + the nine counters for both
runs) and JSON (full structured form including the stall decomposition),
and reloads the CSV into numpy-friendly records so downstream analysis can
run without re-simulating anything.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List

from repro.core.melody import CampaignResult
from repro.core.spa import spa_analyze
from repro.errors import AnalysisError

CSV_COLUMNS = (
    "workload", "suite", "latency_class", "platform", "target",
    "slowdown_pct",
    "base_cycles", "base_instructions",
    "cxl_cycles", "cxl_instructions",
    "base_bound_on_loads", "base_bound_on_stores", "base_stalls_l1d_miss",
    "base_stalls_l2_miss", "base_stalls_l3_miss", "base_retired_stalls",
    "base_one_ports_util", "base_two_ports_util", "base_stalls_scoreboard",
    "cxl_bound_on_loads", "cxl_bound_on_stores", "cxl_stalls_l1d_miss",
    "cxl_stalls_l2_miss", "cxl_stalls_l3_miss", "cxl_retired_stalls",
    "cxl_one_ports_util", "cxl_two_ports_util", "cxl_stalls_scoreboard",
)
"""The flat per-record schema (raw counters from both runs)."""

_COUNTER_FIELDS = (
    "bound_on_loads", "bound_on_stores", "stalls_l1d_miss",
    "stalls_l2_miss", "stalls_l3_miss", "retired_stalls",
    "one_ports_util", "two_ports_util", "stalls_scoreboard",
)


@dataclass(frozen=True)
class DatasetRecord:
    """One reloaded dataset row."""

    workload: str
    suite: str
    latency_class: str
    platform: str
    target: str
    slowdown_pct: float
    counters: dict  # {"base_...": float, "cxl_...": float}


def export_csv(result: CampaignResult, path) -> int:
    """Write the campaign dataset as CSV; returns the row count."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for record in result.records:
            base, run = record.baseline.counters, record.run.counters
            row = [
                record.workload, record.suite, record.latency_class,
                record.platform, record.target,
                f"{record.slowdown_pct:.4f}",
                f"{base.cycles:.0f}", f"{base.instructions:.0f}",
                f"{run.cycles:.0f}", f"{run.instructions:.0f}",
            ]
            row.extend(f"{getattr(base, f):.0f}" for f in _COUNTER_FIELDS)
            row.extend(f"{getattr(run, f):.0f}" for f in _COUNTER_FIELDS)
            writer.writerow(row)
            rows += 1
    return rows


def export_json(result: CampaignResult, path) -> int:
    """Write the full structured dataset (with Spa breakdowns) as JSON."""
    path = Path(path)
    entries = []
    for record in result.records:
        breakdown = spa_analyze(record.baseline, record.run)
        entries.append(
            {
                "workload": record.workload,
                "suite": record.suite,
                "latency_class": record.latency_class,
                "platform": record.platform,
                "target": record.target,
                "slowdown_pct": record.slowdown_pct,
                "spa": {
                    "actual": breakdown.estimates.actual,
                    "from_memory": breakdown.estimates.from_memory,
                    "components": breakdown.components,
                    "core": breakdown.core,
                    "other": breakdown.other,
                },
                "operating_point": {
                    "load_gbps": record.run.mean_load_gbps,
                    "latency_ns": record.run.mean_latency_ns,
                },
            }
        )
    payload = {
        "campaign": result.campaign.name,
        "platform": result.campaign.platform.name,
        "records": entries,
        "skipped": [list(pair) for pair in result.skipped],
    }
    path.write_text(json.dumps(payload, indent=1))
    return len(entries)


def load_csv(path) -> List[DatasetRecord]:
    """Reload a CSV dataset into records."""
    path = Path(path)
    if not path.exists():
        raise AnalysisError(f"dataset not found: {path}")
    records = []
    with path.open() as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != list(CSV_COLUMNS):
            raise AnalysisError(
                f"unexpected dataset schema in {path}: {reader.fieldnames}"
            )
        for row in reader:
            counters = {
                key: float(row[key])
                for key in CSV_COLUMNS
                if key.startswith(("base_", "cxl_"))
            }
            records.append(
                DatasetRecord(
                    workload=row["workload"],
                    suite=row["suite"],
                    latency_class=row["latency_class"],
                    platform=row["platform"],
                    target=row["target"],
                    slowdown_pct=float(row["slowdown_pct"]),
                    counters=counters,
                )
            )
    if not records:
        raise AnalysisError(f"dataset {path} is empty")
    return records
