"""Melody: large-scale CXL characterization campaign orchestration.

A :class:`Campaign` declares what to measure -- workloads x memory targets
on a platform, with a local-DRAM baseline -- and :class:`Melody` executes
it, producing a :class:`CampaignResult` dataset of per-workload slowdowns
plus the underlying runs (so Spa and the prefetch analysis can reuse them
without re-running anything).

Standard campaign builders regenerate the paper's setups:

* :func:`Melody.device_campaign` -- the Figure 8a sweep: 265 workloads
  across NUMA and CXL-A..D on EMR.
* :func:`Melody.latency_spectrum_campaign` -- the Figure 9a violin sweep:
  all 11 {CPU} x {NUMA/CXL} latency configurations from 140 to 410 ns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.pipeline import PipelineConfig, RunResult, run_workload
from repro.errors import AnalysisError, ConfigurationError
from repro.hw.cxl.device import device_by_name
from repro.hw.platform import (
    EMR2S,
    SKX2S,
    SKX8S,
    SPR2S,
    Platform,
)
from repro.hw.target import MemoryTarget
from repro.workloads import all_workloads
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class SlowdownRecord:
    """One (workload, target) slowdown measurement."""

    workload: str
    suite: str
    latency_class: str
    target: str
    platform: str
    slowdown_pct: float
    baseline: RunResult
    run: RunResult


@dataclass(frozen=True)
class Campaign:
    """A declarative measurement plan."""

    name: str
    platform: Platform
    targets: Tuple[MemoryTarget, ...]
    workloads: Tuple[WorkloadSpec, ...]
    config: PipelineConfig = PipelineConfig()
    baseline: Optional[MemoryTarget] = None  # defaults to platform local

    def __post_init__(self) -> None:
        if not self.targets:
            raise ConfigurationError(f"campaign {self.name}: no targets")
        if not self.workloads:
            raise ConfigurationError(f"campaign {self.name}: no workloads")


@dataclass
class CampaignResult:
    """Dataset produced by one campaign."""

    campaign: Campaign
    records: List[SlowdownRecord] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)  # (workload, target)

    def slowdowns(self, target: str) -> np.ndarray:
        """Slowdown vector (percent) for one target, in workload order."""
        values = [r.slowdown_pct for r in self.records if r.target == target]
        if not values:
            targets = sorted({r.target for r in self.records})
            raise AnalysisError(f"no records for {target!r}; have {targets}")
        return np.array(values)

    def record(self, workload: str, target: str) -> SlowdownRecord:
        """Look up one record."""
        for r in self.records:
            if r.workload == workload and r.target == target:
                return r
        raise AnalysisError(f"no record for ({workload!r}, {target!r})")

    def pairs(self, target: str) -> List[Tuple[RunResult, RunResult]]:
        """(baseline, run) pairs for one target -- Spa's input."""
        return [
            (r.baseline, r.run) for r in self.records if r.target == target
        ]

    def target_names(self) -> List[str]:
        """All targets present, in first-seen order."""
        seen = []
        for r in self.records:
            if r.target not in seen:
                seen.append(r.target)
        return seen

    def fraction_below(self, target: str, threshold_pct: float) -> float:
        """Fraction of workloads with slowdown below ``threshold_pct``."""
        s = self.slowdowns(target)
        return float(np.mean(s < threshold_pct))


class Melody:
    """Campaign executor with per-(workload, platform) baseline caching."""

    def __init__(self, config: PipelineConfig = PipelineConfig()):
        self.config = config
        self._baseline_cache: Dict[Tuple[str, str, str], RunResult] = {}

    # -- execution -----------------------------------------------------------

    def _baseline(
        self, workload: WorkloadSpec, platform: Platform, target: MemoryTarget
    ) -> RunResult:
        key = (workload.name, platform.name, target.name)
        if key not in self._baseline_cache:
            self._baseline_cache[key] = run_workload(
                workload, platform, target, self.config
            )
        return self._baseline_cache[key]

    def run(self, campaign: Campaign) -> CampaignResult:
        """Execute a campaign, skipping workloads that do not fit a device."""
        result = CampaignResult(campaign=campaign)
        baseline_target = campaign.baseline or campaign.platform.local_target()
        for workload in campaign.workloads:
            base = self._baseline(workload, campaign.platform, baseline_target)
            for target in campaign.targets:
                if workload.working_set_gb > target.capacity_gb:
                    result.skipped.append((workload.name, target.name))
                    continue
                run = run_workload(
                    workload, campaign.platform, target, campaign.config
                )
                result.records.append(
                    SlowdownRecord(
                        workload=workload.name,
                        suite=workload.suite,
                        latency_class=workload.latency_class,
                        target=target.name,
                        platform=campaign.platform.name,
                        slowdown_pct=run.slowdown_vs(base),
                        baseline=base,
                        run=run,
                    )
                )
        return result

    # -- standard campaigns ----------------------------------------------------

    @staticmethod
    def device_campaign(
        workloads: Sequence[WorkloadSpec] = None,
        platform: Platform = EMR2S,
        devices: Sequence[str] = ("CXL-A", "CXL-B", "CXL-C", "CXL-D"),
        include_numa: bool = True,
    ) -> Campaign:
        """The Figure 8a setup: all workloads across NUMA + 4 CXL devices."""
        targets: List[MemoryTarget] = []
        if include_numa:
            targets.append(platform.numa_target())
        targets.extend(device_by_name(name) for name in devices)
        return Campaign(
            name="device-characterization",
            platform=platform,
            targets=tuple(targets),
            workloads=tuple(workloads if workloads is not None else all_workloads()),
        )

    @staticmethod
    def latency_spectrum_setups() -> List[Tuple[str, Platform, MemoryTarget]]:
        """The 11 {CPU} x {NUMA, CXL} setups of Figure 9a, by rising latency.

        SKX contributes the NUMA-emulated 140/190/410 ns points; SPR and EMR
        contribute their NUMA plus locally-attached CXL devices.
        """
        setups: List[Tuple[str, Platform, MemoryTarget]] = [
            ("SKX-140ns", SKX2S, SKX2S.numa_target()),
            ("SKX-190ns", SKX2S, SKX2S.emulated_latency_target(190.0)),
            ("SPR-NUMA", SPR2S, SPR2S.numa_target()),
            ("EMR-NUMA", EMR2S, EMR2S.numa_target()),
            ("SPR-CXL-A", SPR2S, device_by_name("CXL-A")),
            ("EMR-CXL-A", EMR2S, device_by_name("CXL-A")),
            ("EMR-CXL-D", EMR2S, device_by_name("CXL-D")),
            ("SPR-CXL-B", SPR2S, device_by_name("CXL-B")),
            ("EMR-CXL-B", EMR2S, device_by_name("CXL-B")),
            ("EMR-CXL-C", EMR2S, device_by_name("CXL-C")),
            ("SKX-410ns", SKX8S, SKX8S.numa_target()),
        ]
        return setups

    def run_latency_spectrum(
        self, workloads: Sequence[WorkloadSpec] = None
    ) -> Dict[str, CampaignResult]:
        """Execute the full Figure 9a spectrum; one result per setup."""
        workloads = tuple(workloads if workloads is not None else all_workloads())
        results = {}
        for label, platform, target in self.latency_spectrum_setups():
            campaign = Campaign(
                name=label,
                platform=platform,
                targets=(target,),
                workloads=workloads,
                config=self.config,
            )
            results[label] = self.run(campaign)
        return results
