"""Melody: large-scale CXL characterization campaign orchestration.

A :class:`Campaign` declares what to measure -- workloads x memory targets
on a platform, with a local-DRAM baseline -- and :class:`Melody` executes
it, producing a :class:`CampaignResult` dataset of per-workload slowdowns
plus the underlying runs (so Spa and the prefetch analysis can reuse them
without re-running anything).

Standard campaign builders regenerate the paper's setups:

* :func:`Melody.device_campaign` -- the Figure 8a sweep: 265 workloads
  across NUMA and CXL-A..D on EMR.
* :func:`Melody.latency_spectrum_campaign` -- the Figure 9a violin sweep:
  all 11 {CPU} x {NUMA/CXL} latency configurations from 140 to 410 ns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.pipeline import PipelineConfig, RunResult
from repro.errors import AnalysisError, ConfigurationError
from repro.hw.cxl.device import device_by_name
from repro.hw.platform import (
    EMR2S,
    SKX2S,
    SKX8S,
    SPR2S,
    Platform,
)
from repro.hw.target import MemoryTarget
from repro.obs.timers import phase_timer
from repro.runtime.cache import RunCache
from repro.runtime.context import get_engine
from repro.runtime.executor import CampaignEngine, Cell, FailedCell
from repro.runtime.shard import ShardSpec, baseline_token, grid_token
from repro.workloads import all_workloads
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class SlowdownRecord:
    """One (workload, target) slowdown measurement."""

    workload: str
    suite: str
    latency_class: str
    target: str
    platform: str
    slowdown_pct: float
    baseline: RunResult
    run: RunResult


@dataclass(frozen=True)
class Campaign:
    """A declarative measurement plan."""

    name: str
    platform: Platform
    targets: Tuple[MemoryTarget, ...]
    workloads: Tuple[WorkloadSpec, ...]
    config: PipelineConfig = PipelineConfig()
    baseline: Optional[MemoryTarget] = None  # defaults to platform local

    def __post_init__(self) -> None:
        if not self.targets:
            raise ConfigurationError(f"campaign {self.name}: no targets")
        if not self.workloads:
            raise ConfigurationError(f"campaign {self.name}: no workloads")


@dataclass
class CampaignResult:
    """Dataset produced by one campaign.

    Lookups go through a lazily built ``(workload, target)`` index (plus a
    per-target grouping) so per-workload queries from downstream analyses
    cost O(1) instead of scanning all records; the index rebuilds itself
    whenever records were appended since it was last used.
    """

    campaign: Campaign
    records: List[SlowdownRecord] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)  # (workload, target)
    failed: List[FailedCell] = field(default_factory=list)
    """Cells quarantined by a resilient engine (empty in fail-fast mode)."""
    _indexed_count: int = field(default=-1, init=False, repr=False, compare=False)
    _by_cell: Dict[Tuple[str, str], SlowdownRecord] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _by_target: Dict[str, List[SlowdownRecord]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def _index(self) -> None:
        if self._indexed_count == len(self.records):
            return
        self._by_cell = {}
        self._by_target = {}
        for r in self.records:
            self._by_cell[(r.workload, r.target)] = r
            self._by_target.setdefault(r.target, []).append(r)
        self._indexed_count = len(self.records)

    def slowdowns(self, target: str) -> np.ndarray:
        """Slowdown vector (percent) for one target, in workload order."""
        self._index()
        group = self._by_target.get(target)
        if not group:
            targets = sorted(self._by_target)
            raise AnalysisError(f"no records for {target!r}; have {targets}")
        return np.array([r.slowdown_pct for r in group])

    def record(self, workload: str, target: str) -> SlowdownRecord:
        """Look up one record."""
        self._index()
        try:
            return self._by_cell[(workload, target)]
        except KeyError:
            raise AnalysisError(
                f"no record for ({workload!r}, {target!r})"
            ) from None

    def pairs(self, target: str) -> List[Tuple[RunResult, RunResult]]:
        """(baseline, run) pairs for one target -- Spa's input."""
        self._index()
        return [
            (r.baseline, r.run) for r in self._by_target.get(target, [])
        ]

    def target_names(self) -> List[str]:
        """All targets present, in first-seen order."""
        self._index()
        return list(self._by_target)

    def fraction_below(self, target: str, threshold_pct: float) -> float:
        """Fraction of workloads with slowdown below ``threshold_pct``."""
        s = self.slowdowns(target)
        return float(np.mean(s < threshold_pct))


def campaign_cells(
    campaign: Campaign, shard: Optional[ShardSpec] = None
) -> Tuple[List[WorkloadSpec], List[Tuple[WorkloadSpec, MemoryTarget]],
           List[Tuple[str, str]]]:
    """Plan one campaign's cells: (baseline workloads, grid, skipped).

    The single source of truth for what a campaign -- or one shard of it
    -- executes: :meth:`Melody.run` submits exactly these cells, and the
    CLI sizes shard checkpoints from the same plan.  With a shard, only
    owned grid pairs appear, capacity skips are recorded by their owner
    shard only, and the baseline list contains the workloads this shard
    needs (owned baseline token, or divisor of an owned grid cell).
    """
    if shard is not None and shard.count > 1:
        from repro.runtime.checkpoint import campaign_fingerprint

        fingerprint = campaign_fingerprint(campaign)
    else:
        shard = None  # 1/1 is the unsharded plan, bit for bit
    grid: List[Tuple[WorkloadSpec, MemoryTarget]] = []
    skipped: List[Tuple[str, str]] = []
    grid_workloads = set()
    for workload in campaign.workloads:
        for target in campaign.targets:
            if shard is not None and not shard.owns(
                grid_token(fingerprint, workload.name, target.name)
            ):
                # Another shard's cell: not run, and its capacity skip
                # (if any) is recorded by the owner, so merged shard
                # results never double-count a skip.
                continue
            if workload.working_set_gb > target.capacity_gb:
                skipped.append((workload.name, target.name))
                continue
            grid.append((workload, target))
            grid_workloads.add(workload.name)
    if shard is None:
        base_workloads = list(campaign.workloads)
    else:
        # A shard runs a baseline iff it owns the baseline token or any
        # owned grid cell divides by it.  Baselines claimed by several
        # shards execute redundantly but land on one run key --
        # bit-identical cache entries, never a conflict.
        base_workloads = [
            workload
            for workload in campaign.workloads
            if workload.name in grid_workloads
            or shard.owns(baseline_token(fingerprint, workload.name))
        ]
    return base_workloads, grid, skipped


class Melody:
    """Campaign executor on top of the shared :mod:`repro.runtime` engine.

    All cell execution -- baselines included -- routes through a
    :class:`~repro.runtime.executor.CampaignEngine`, so identical cells are
    memoized across campaigns, experiments and (with a disk cache) across
    processes, and fan out over a process pool when the engine has
    ``jobs > 1``.  By default every Melody in a process shares one engine;
    pass ``engine``, or ``jobs``/``cache_dir`` for a private one.
    """

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        engine: Optional[CampaignEngine] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ):
        self.config = config
        if engine is None and (jobs is not None or cache_dir is not None):
            engine = CampaignEngine(cache=RunCache(cache_dir), jobs=jobs or 1)
        self._engine = engine

    @property
    def engine(self) -> CampaignEngine:
        """This Melody's engine (the process-wide one unless overridden)."""
        return self._engine if self._engine is not None else get_engine()

    # -- execution -----------------------------------------------------------

    def run(
        self, campaign: Campaign, shard: Optional["ShardSpec"] = None
    ) -> CampaignResult:
        """Execute a campaign, skipping workloads that do not fit a device.

        The cell grid is submitted baselines-first, so slowdown cells that
        coincide with the baseline target (or with cells of an earlier
        campaign) are recalled from the run cache instead of re-executed.

        With a :class:`~repro.runtime.shard.ShardSpec`, only the grid
        cells the shard owns execute (plus the baselines they divide
        by); N shard runs over one campaign partition the grid exactly,
        and their results, skips and checkpoints merge back into the
        unsharded campaign's.
        """
        with phase_timer("campaign", campaign=campaign.name):
            return self._run(campaign, shard)

    def _run(
        self, campaign: Campaign, shard: Optional["ShardSpec"] = None
    ) -> CampaignResult:
        """The untimed campaign body (see :meth:`run`)."""
        result = CampaignResult(campaign=campaign)
        baseline_target = campaign.baseline or campaign.platform.local_target()
        base_workloads, grid, skipped = campaign_cells(campaign, shard)
        result.skipped.extend(skipped)
        cells: List[Cell] = [
            Cell(workload, campaign.platform, baseline_target, self.config)
            for workload in base_workloads
        ]
        cells.extend(
            Cell(workload, campaign.platform, target, campaign.config)
            for workload, target in grid
        )
        engine = self.engine
        failed_before = len(engine.failed)
        runs = engine.run_cells(cells)
        result.failed = list(engine.failed[failed_before:])
        baselines = dict(zip((w.name for w in base_workloads), runs))
        for (workload, target), run in zip(grid, runs[len(base_workloads):]):
            base = baselines[workload.name]
            if run is None or base is None:
                # Quarantined by the resilient engine: the FailedCell
                # record (in ``result.failed``) carries the diagnosis.
                continue
            result.records.append(
                SlowdownRecord(
                    workload=workload.name,
                    suite=workload.suite,
                    latency_class=workload.latency_class,
                    target=target.name,
                    platform=campaign.platform.name,
                    slowdown_pct=run.slowdown_vs(base),
                    baseline=base,
                    run=run,
                )
            )
        return result

    # -- standard campaigns ----------------------------------------------------

    @staticmethod
    def device_campaign(
        workloads: Sequence[WorkloadSpec] = None,
        platform: Platform = EMR2S,
        devices: Sequence[str] = ("CXL-A", "CXL-B", "CXL-C", "CXL-D"),
        include_numa: bool = True,
    ) -> Campaign:
        """The Figure 8a setup: all workloads across NUMA + 4 CXL devices."""
        targets: List[MemoryTarget] = []
        if include_numa:
            targets.append(platform.numa_target())
        targets.extend(device_by_name(name) for name in devices)
        return Campaign(
            name="device-characterization",
            platform=platform,
            targets=tuple(targets),
            workloads=tuple(workloads if workloads is not None else all_workloads()),
        )

    @staticmethod
    def latency_spectrum_setups() -> List[Tuple[str, Platform, MemoryTarget]]:
        """The 11 {CPU} x {NUMA, CXL} setups of Figure 9a, by rising latency.

        SKX contributes the NUMA-emulated 140/190/410 ns points; SPR and EMR
        contribute their NUMA plus locally-attached CXL devices.
        """
        setups: List[Tuple[str, Platform, MemoryTarget]] = [
            ("SKX-140ns", SKX2S, SKX2S.numa_target()),
            ("SKX-190ns", SKX2S, SKX2S.emulated_latency_target(190.0)),
            ("SPR-NUMA", SPR2S, SPR2S.numa_target()),
            ("EMR-NUMA", EMR2S, EMR2S.numa_target()),
            ("SPR-CXL-A", SPR2S, device_by_name("CXL-A")),
            ("EMR-CXL-A", EMR2S, device_by_name("CXL-A")),
            ("EMR-CXL-D", EMR2S, device_by_name("CXL-D")),
            ("SPR-CXL-B", SPR2S, device_by_name("CXL-B")),
            ("EMR-CXL-B", EMR2S, device_by_name("CXL-B")),
            ("EMR-CXL-C", EMR2S, device_by_name("CXL-C")),
            ("SKX-410ns", SKX8S, SKX8S.numa_target()),
        ]
        return setups

    def run_latency_spectrum(
        self, workloads: Sequence[WorkloadSpec] = None
    ) -> Dict[str, CampaignResult]:
        """Execute the full Figure 9a spectrum; one result per setup."""
        workloads = tuple(workloads if workloads is not None else all_workloads())
        results = {}
        for label, platform, target in self.latency_spectrum_setups():
            campaign = Campaign(
                name=label,
                platform=platform,
                targets=(target,),
                workloads=workloads,
                config=self.config,
            )
            results[label] = self.run(campaign)
        return results
