"""Period-based slowdown analysis (§5.6, Figure 16).

Workload-level Spa misses temporal dynamics: a workload whose average
slowdown is 20% may spend two thirds of its execution above 30% (602.gcc).
The obstacle is that profilers sample counters on a *time* cadence while
the same instructions take different amounts of time on local DRAM and on
CXL -- the two time axes do not align.

The paper's solution, implemented here: since the retired-instruction
stream is identical on both backends, convert each run's time-window
samples into fixed *instruction periods* (e.g. every 1B instructions) by
accumulating windows and proportionally splitting the window that straddles
a period boundary.  Periods then align one-to-one across backends and the
differential Spa breakdown applies per period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cpu.counters import CounterSample
from repro.cpu.pipeline import RunResult
from repro.core.spa import SOURCES
from repro.errors import AnalysisError
from repro.hw.target import MemoryTarget
from repro.tools.sampler import TimeSampler, TimeWindowSample


@dataclass(frozen=True)
class PeriodBreakdown:
    """Differential Spa breakdown of one instruction period."""

    index: int
    instructions_start: float
    instructions_end: float
    actual_pct: float  # Delta cycles / local cycles, percent
    components: Dict[str, float]  # per-source percent (store/l1/l2/l3/dram)
    other_pct: float

    @property
    def explained_pct(self) -> float:
        """Slowdown explained by the five memory sources."""
        return sum(self.components.values())


def windows_to_periods(
    windows: Sequence[TimeWindowSample], period_instructions: float
) -> List[CounterSample]:
    """Convert a time-window counter stream into instruction periods.

    Windows are accumulated until the period boundary; the straddling
    window is split proportionally (assuming smooth counter progression
    within the ~1 ms window, as the paper does).  A trailing partial
    period is dropped -- it has no aligned counterpart in the other run.
    """
    if period_instructions <= 0:
        raise AnalysisError("period_instructions must be positive")
    periods: List[CounterSample] = []
    acc: CounterSample = None
    acc_instr = 0.0
    for window in windows:
        remaining = window.counters
        while acc_instr + remaining.instructions >= period_instructions:
            need = period_instructions - acc_instr
            frac = need / remaining.instructions
            piece = remaining.scaled(frac)
            acc = piece if acc is None else acc.plus(piece)
            periods.append(acc)
            acc = None
            acc_instr = 0.0
            remaining = remaining.scaled(1.0 - frac)
            if remaining.instructions <= 1e-9:
                remaining = None
                break
        if remaining is not None and remaining.instructions > 0:
            acc = remaining if acc is None else acc.plus(remaining)
            acc_instr += remaining.instructions
    return periods


def period_analysis(
    local: RunResult,
    cxl: RunResult,
    period_instructions: float,
    window_ms: float = 1.0,
    cxl_target: MemoryTarget = None,
) -> List[PeriodBreakdown]:
    """Differential per-period Spa breakdown of a (local, CXL) run pair."""
    if local.workload.name != cxl.workload.name:
        raise AnalysisError("period analysis requires the same workload")
    sampler = TimeSampler(window_ms=window_ms)
    local_periods = windows_to_periods(
        sampler.sample(local), period_instructions
    )
    cxl_periods = windows_to_periods(
        sampler.sample(cxl, target=cxl_target), period_instructions
    )
    n = min(len(local_periods), len(cxl_periods))
    if n == 0:
        raise AnalysisError(
            "period longer than the whole run; choose a smaller "
            "period_instructions"
        )
    out: List[PeriodBreakdown] = []
    for i in range(n):
        lp, cp = local_periods[i], cxl_periods[i]
        c = lp.cycles
        components = {
            "store": (cp.s_store - lp.s_store) / c * 100.0,
            "l1": (cp.s_l1 - lp.s_l1) / c * 100.0,
            "l2": (cp.s_l2 - lp.s_l2) / c * 100.0,
            "l3": (cp.s_l3 - lp.s_l3) / c * 100.0,
            "dram": (cp.s_dram - lp.s_dram) / c * 100.0,
        }
        actual = (cp.cycles - c) / c * 100.0
        out.append(
            PeriodBreakdown(
                index=i,
                instructions_start=i * period_instructions,
                instructions_end=(i + 1) * period_instructions,
                actual_pct=actual,
                components=components,
                other_pct=actual - sum(components.values()),
            )
        )
    return out


def mean_slowdown(periods: Sequence[PeriodBreakdown]) -> float:
    """Average slowdown across periods (equal instruction weights)."""
    if not periods:
        raise AnalysisError("no periods")
    return sum(p.actual_pct for p in periods) / len(periods)


def hot_periods(
    periods: Sequence[PeriodBreakdown], threshold_pct: float
) -> List[PeriodBreakdown]:
    """Periods whose slowdown exceeds the threshold (tuning's first step)."""
    return [p for p in periods if p.actual_pct > threshold_pct]
