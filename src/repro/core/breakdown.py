"""Component-wise slowdown breakdowns across workload populations.

Aggregates :class:`~repro.core.spa.SpaBreakdown` results the way §5.5 of
the paper presents them:

* per-workload stacked breakdowns grouped by suite (Figure 14),
* CDFs of each component's slowdown contribution across the population
  (Figure 15),
* dominant-source classification ("DRAM-bound", "store-bound", ...).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.spa import SOURCES, SpaBreakdown
from repro.errors import AnalysisError

ALL_SOURCES = SOURCES + ("core", "other")
"""Every category in the Figure 14 stacks."""


def breakdown_by_suite(
    breakdowns: Sequence[SpaBreakdown],
    suites: Dict[str, str],
) -> Dict[str, List[SpaBreakdown]]:
    """Group breakdowns by benchmark suite (Figure 14 panels).

    ``suites`` maps workload name -> suite name.
    """
    grouped: Dict[str, List[SpaBreakdown]] = {}
    for b in breakdowns:
        try:
            suite = suites[b.workload]
        except KeyError:
            raise AnalysisError(f"no suite known for workload {b.workload!r}")
        grouped.setdefault(suite, []).append(b)
    for entries in grouped.values():
        entries.sort(key=lambda b: b.workload)
    return grouped


def breakdown_cdfs(breakdowns: Sequence[SpaBreakdown]) -> Dict[str, np.ndarray]:
    """Per-component slowdown vectors across the population (Figure 15).

    Returns, per source, the sorted per-workload contribution (percent);
    plotting value-vs-rank gives the paper's CDF panels.
    """
    if not breakdowns:
        raise AnalysisError("no breakdowns to aggregate")
    out = {}
    for source in SOURCES:
        out[source] = np.sort(
            np.array([b.components[source] for b in breakdowns])
        )
    return out


def fraction_with_component_above(
    breakdowns: Sequence[SpaBreakdown], source: str, threshold_pct: float
) -> float:
    """Fraction of workloads whose ``source`` slowdown exceeds a threshold.

    The paper's headline numbers: >=15% of workloads see >=5% *cache*
    slowdown; >=40% see >=5% demand-read (DRAM) slowdown.
    """
    if source == "cache":
        values = [b.cache for b in breakdowns]
    elif source in SOURCES:
        values = [b.components[source] for b in breakdowns]
    else:
        raise AnalysisError(f"unknown source {source!r}")
    return float(np.mean(np.array(values) >= threshold_pct))


def dominant_source(breakdown: SpaBreakdown, min_share: float = 0.5) -> str:
    """Classify a workload by its dominant slowdown source.

    Returns the source contributing more than ``min_share`` of the
    explained slowdown, or ``"mixed"`` when none does.
    """
    total = breakdown.explained
    if total <= 0:
        return "none"
    shares = dict(breakdown.components)
    shares["core"] = breakdown.core
    best = max(shares, key=lambda k: shares[k])
    return best if shares[best] / total > min_share else "mixed"
