"""Memory tiering on top of Spa: smarter placement than LLC-miss ranking.

§5.7's closing claim: *"As a performance metric, Spa offers a more
effective alternative to conventional metrics like LLC misses. By directly
measuring performance losses through stall cycles, Spa enables smarter
tiering policy designs."*  This module builds that tiering substrate and
the comparison:

* a :class:`TieredSystem` -- scarce local DRAM plus a CXL expander;
* per-workload *hotness skew*: placing a fraction ``f`` of a working set
  locally captures ``f**theta`` of its misses (Zipf-like concentration);
* three placement policies allocating the local budget across workloads:

  - :class:`UniformPolicy` -- split capacity evenly (baseline);
  - :class:`MissRatePolicy` -- rank by LLC-miss density (the conventional
    heuristic the paper critiques);
  - :class:`SpaStallPolicy` -- rank by Spa-measured *stall cycles saved
    per GB* -- misses only matter when they actually stall the pipeline.

The policies differ exactly where the paper says they should: a
high-MLP/prefetch-friendly workload has many misses but cheap ones, so the
miss-rate policy wastes local DRAM on it while Spa spends the budget where
stalls live.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.core.spa import spa_analyze
from repro.cpu.pipeline import PipelineConfig, RunResult, run_workload
from repro.errors import AnalysisError
from repro.hw.platform import Platform
from repro.hw.target import MemoryTarget
from repro.rng import DEFAULT_SEED, generator_for
from repro.workloads.base import WorkloadSpec

DEFAULT_HOTNESS_THETA = 0.35
"""Zipf-like hotness exponent: f of the pages capture f**theta of misses
(0.35 gives the classic ~80/20 concentration)."""


def hotness_theta(workload: WorkloadSpec) -> float:
    """Per-workload hotness skew, deterministic from the name (0.25-0.6)."""
    rng = generator_for(DEFAULT_SEED, "hotness", workload.name)
    return 0.25 + 0.35 * float(rng.random())


def miss_coverage(local_fraction: float, theta: float) -> float:
    """Fraction of misses captured by placing ``local_fraction`` locally."""
    if not 0.0 <= local_fraction <= 1.0:
        raise AnalysisError(f"local fraction out of [0, 1]: {local_fraction}")
    return local_fraction ** theta if local_fraction > 0 else 0.0


@dataclass(frozen=True)
class TieredSystem:
    """A host with scarce local DRAM and a CXL capacity tier."""

    platform: Platform
    cxl_target: MemoryTarget
    local_budget_gb: float

    def __post_init__(self) -> None:
        if self.local_budget_gb < 0:
            raise AnalysisError("local budget cannot be negative")


@dataclass(frozen=True)
class PlacementOutcome:
    """Result of placing one workload under a tiering decision."""

    workload: str
    local_gb: float
    local_fraction: float
    covered_miss_share: float
    slowdown_pct: float


@dataclass(frozen=True)
class TieringOutcome:
    """Fleet-level result of one policy."""

    policy: str
    placements: Tuple[PlacementOutcome, ...]

    @property
    def mean_slowdown_pct(self) -> float:
        """Unweighted mean slowdown across the fleet."""
        return sum(p.slowdown_pct for p in self.placements) / len(
            self.placements
        )

    @property
    def worst_slowdown_pct(self) -> float:
        """Worst per-workload slowdown."""
        return max(p.slowdown_pct for p in self.placements)

    def placement(self, workload: str) -> PlacementOutcome:
        """Look up one workload's placement."""
        for p in self.placements:
            if p.workload == workload:
                return p
        raise AnalysisError(f"no placement for {workload!r}")


def tiered_slowdown(
    workload: WorkloadSpec,
    platform: Platform,
    cxl_target: MemoryTarget,
    local_gb: float,
    config: PipelineConfig = PipelineConfig(),
) -> PlacementOutcome:
    """Slowdown of one workload with ``local_gb`` of it placed locally.

    The covered misses are served at local latency: modelled (as in
    :mod:`repro.core.tuning`) by running the miss-reduced spec on CXL and
    adding back the local cost of the covered misses.
    """
    local_target = platform.local_target()
    fraction = min(1.0, local_gb / workload.working_set_gb)
    theta = hotness_theta(workload)
    covered = miss_coverage(fraction, theta)

    base_local = run_workload(workload, platform, local_target, config)
    if covered >= 0.999:
        return PlacementOutcome(
            workload=workload.name, local_gb=local_gb,
            local_fraction=fraction, covered_miss_share=covered,
            slowdown_pct=0.0,
        )
    reduced = replace(
        workload,
        l3_mpki=workload.l3_mpki * (1.0 - covered),
        stores_pki=workload.stores_pki * (1.0 - 0.8 * covered),
    )
    reduced_cxl = run_workload(reduced, platform, cxl_target, config)
    reduced_local = run_workload(reduced, platform, local_target, config)
    local_cost = max(0.0, base_local.cycles - reduced_local.cycles)
    cycles = reduced_cxl.cycles + local_cost
    slowdown = (cycles - base_local.cycles) / base_local.cycles * 100.0
    return PlacementOutcome(
        workload=workload.name, local_gb=local_gb, local_fraction=fraction,
        covered_miss_share=covered, slowdown_pct=slowdown,
    )


class TieringPolicy(abc.ABC):
    """Allocates the local-DRAM budget across a workload fleet."""

    name = "abstract"

    @abc.abstractmethod
    def scores(
        self,
        workloads: Sequence[WorkloadSpec],
        profile_pairs: Dict[str, Tuple[RunResult, RunResult]],
    ) -> Dict[str, float]:
        """Per-workload priority scores (higher = wants local DRAM more)."""

    ALLOCATION_STEPS = 200
    """Budget granularity for the marginal-utility allocator."""

    def allocate(
        self,
        workloads: Sequence[WorkloadSpec],
        profile_pairs: Dict[str, Tuple[RunResult, RunResult]],
        budget_gb: float,
    ) -> Dict[str, float]:
        """Water-filling by marginal utility.

        Hotness concentration makes coverage concave in capacity, so the
        budget is handed out in chunks, each to the workload whose next
        chunk captures the most score-weighted miss coverage.  The score
        is where policies differ; the allocator is shared.
        """
        scores = self.scores(workloads, profile_pairs)
        thetas = {w.name: hotness_theta(w) for w in workloads}
        sizes = {w.name: w.working_set_gb for w in workloads}
        allocation = {w.name: 0.0 for w in workloads}
        chunk = budget_gb / self.ALLOCATION_STEPS
        if chunk <= 0:
            return allocation

        def marginal(name: str) -> float:
            size = sizes[name]
            current = allocation[name]
            if current >= size:
                return 0.0
            nxt = min(size, current + chunk)
            gain = miss_coverage(nxt / size, thetas[name]) - miss_coverage(
                current / size, thetas[name]
            )
            return scores[name] * gain

        for _ in range(self.ALLOCATION_STEPS):
            best = max(allocation, key=marginal)
            if marginal(best) <= 0.0:
                break
            allocation[best] = min(sizes[best], allocation[best] + chunk)
        return allocation


class UniformPolicy(TieringPolicy):
    """Split the budget evenly (capacity-only baseline)."""

    name = "uniform"

    def scores(self, workloads, profile_pairs):
        """Everyone scores equally (the allocator is bypassed anyway)."""
        return {w.name: 1.0 for w in workloads}

    def allocate(self, workloads, profile_pairs, budget_gb):
        """Equal split, capped at each workload's working set."""
        share = budget_gb / len(workloads)
        return {
            w.name: min(w.working_set_gb, share) for w in workloads
        }


class MissRatePolicy(TieringPolicy):
    """The conventional heuristic: rank by LLC-miss density (misses/GB)."""

    name = "llc-miss"

    def scores(self, workloads, profile_pairs):
        """Total LLC misses to save (the conventional ranking signal)."""
        # The allocator's coverage curve handles the per-GB marginal value.
        return {w.name: w.l3_mpki * w.threads for w in workloads}


class SpaStallPolicy(TieringPolicy):
    """Spa's metric: rank by measured memory-stall slowdown per GB.

    Uses only the profiled (local, CXL) counter pairs -- exactly the data
    Spa extracts in production -- so misses that do not stall (covered by
    prefetch, overlapped by MLP) do not attract local DRAM.
    """

    name = "spa-stalls"

    def scores(self, workloads, profile_pairs):
        """Spa-measured memory-stall slowdown: misses that actually hurt."""
        scores = {}
        for w in workloads:
            base, cxl = profile_pairs[w.name]
            breakdown = spa_analyze(base, cxl)
            memory_slowdown = (
                breakdown.components["dram"]
                + breakdown.components["store"]
                + breakdown.cache
            )
            scores[w.name] = max(0.0, memory_slowdown)
        return scores


def simulate_tiering(
    workloads: Sequence[WorkloadSpec],
    system: TieredSystem,
    policy: TieringPolicy,
    config: PipelineConfig = PipelineConfig(),
) -> TieringOutcome:
    """Place a fleet under ``policy`` and measure the resulting slowdowns."""
    if not workloads:
        raise AnalysisError("no workloads to place")
    local_target = system.platform.local_target()
    profile_pairs = {}
    for w in workloads:
        base = run_workload(w, system.platform, local_target, config)
        cxl = run_workload(w, system.platform, system.cxl_target, config)
        profile_pairs[w.name] = (base, cxl)

    allocation = policy.allocate(workloads, profile_pairs, system.local_budget_gb)
    placements: List[PlacementOutcome] = []
    for w in workloads:
        placements.append(
            tiered_slowdown(
                w, system.platform, system.cxl_target,
                allocation[w.name], config,
            )
        )
    return TieringOutcome(policy=policy.name, placements=tuple(placements))


def compare_policies(
    workloads: Sequence[WorkloadSpec],
    system: TieredSystem,
    policies: Sequence[TieringPolicy] = None,
) -> Dict[str, TieringOutcome]:
    """Run every policy on the same fleet (the paper's tiering claim)."""
    policies = policies or (UniformPolicy(), MissRatePolicy(), SpaStallPolicy())
    return {
        policy.name: simulate_tiering(workloads, system, policy)
        for policy in policies
    }
