"""Spa-guided memory placement tuning (§5.7's 605.mcf use case).

The paper's flow: (1) run the period-based Spa analysis and find bursty
periods with slowdown above a threshold; (2) attribute the memory accesses
of those periods to program objects (they used Intel Pin + addr2line; we
carry an explicit object map, which is what that tooling recovers);
(3) relocate the implicated objects to local DRAM; (4) re-measure.  For
605.mcf two 2 GB objects were responsible, and relocating them cut the
overall slowdown from 13% to 2%.

Relocation is modelled honestly: the relocated objects' misses leave the
CXL target (the workload's phase-local miss rates drop by the objects'
miss shares) but they do not become free -- their local-DRAM cost is added
back, computed as the cycle difference between the baseline run and a
local run of the reduced workload.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.cpu.pipeline import PipelineConfig, RunResult, run_workload
from repro.core.period import PeriodBreakdown, hot_periods, period_analysis
from repro.errors import AnalysisError
from repro.hw.platform import Platform
from repro.hw.target import MemoryTarget
from repro.workloads.base import Phase, WorkloadSpec


@dataclass(frozen=True)
class HotObject:
    """One program object the Pin/addr2line step attributes accesses to.

    ``miss_share_by_phase`` maps phase labels to the fraction of that
    phase's L3 misses that land in this object.
    """

    name: str
    size_gb: float
    miss_share_by_phase: Dict[str, float]

    def __post_init__(self) -> None:
        if self.size_gb <= 0:
            raise AnalysisError(f"object {self.name}: size must be positive")
        for label, share in self.miss_share_by_phase.items():
            if not 0.0 <= share <= 1.0:
                raise AnalysisError(
                    f"object {self.name}: share for {label!r} out of [0, 1]"
                )


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one Spa-guided placement optimization."""

    workload: str
    target: str
    slowdown_before_pct: float
    slowdown_after_pct: float
    relocated: Tuple[HotObject, ...]
    moved_gb: float
    hot_period_indices: Tuple[int, ...]

    @property
    def improvement_pct(self) -> float:
        """Slowdown removed by the relocation (percentage points)."""
        return self.slowdown_before_pct - self.slowdown_after_pct


def _relocated_spec(
    workload: WorkloadSpec, objects: Sequence[HotObject]
) -> WorkloadSpec:
    """The workload with the objects' misses removed from the far target."""
    if not workload.phases:
        # Whole-run shares: treat as a single unlabeled phase.
        total_share = min(
            0.95,
            sum(
                max(obj.miss_share_by_phase.values(), default=0.0)
                for obj in objects
            ),
        )
        return replace(workload, l3_mpki=workload.l3_mpki * (1.0 - total_share))
    new_phases: List[Phase] = []
    for phase in workload.phases:
        share = min(
            0.95,
            sum(
                obj.miss_share_by_phase.get(phase.label, 0.0)
                for obj in objects
            ),
        )
        multipliers = dict(phase.multipliers)
        multipliers["l3_mpki"] = multipliers.get("l3_mpki", 1.0) * (1.0 - share)
        new_phases.append(
            Phase(weight=phase.weight, multipliers=multipliers, label=phase.label)
        )
    return replace(workload, phases=tuple(new_phases))


def tune_placement(
    workload: WorkloadSpec,
    platform: Platform,
    cxl_target: MemoryTarget,
    objects: Sequence[HotObject],
    threshold_pct: float = 10.0,
    period_instructions: float = None,
    config: PipelineConfig = PipelineConfig(),
) -> TuningResult:
    """Run the full §5.7 tuning loop.

    Objects are relocated when they have miss share in any period whose
    slowdown exceeds ``threshold_pct`` (hot periods identified by the
    period-based Spa analysis).  Local DRAM capacity is assumed available
    for the relocated objects, as in the paper.
    """
    if not objects:
        raise AnalysisError("no candidate objects supplied")
    local_target = platform.local_target()
    base_local = run_workload(workload, platform, local_target, config)
    base_cxl = run_workload(workload, platform, cxl_target, config)
    before = base_cxl.slowdown_vs(base_local)

    period = period_instructions or workload.instructions / 40.0
    periods = period_analysis(
        base_local, base_cxl, period, cxl_target=cxl_target
    )
    hot = hot_periods(periods, threshold_pct)
    hot_idx = tuple(p.index for p in hot)

    # Map hot periods back to phase labels via instruction offsets.
    hot_labels = _labels_for_periods(workload, hot, period)
    relocated = tuple(
        obj
        for obj in objects
        if any(
            obj.miss_share_by_phase.get(label, 0.0) > 0.0
            for label in hot_labels
        )
    )
    if not relocated:
        return TuningResult(
            workload=workload.name,
            target=cxl_target.name,
            slowdown_before_pct=before,
            slowdown_after_pct=before,
            relocated=(),
            moved_gb=0.0,
            hot_period_indices=hot_idx,
        )

    reduced = _relocated_spec(workload, relocated)
    reduced_cxl = run_workload(reduced, platform, cxl_target, config)
    reduced_local = run_workload(reduced, platform, local_target, config)
    # Relocated misses still cost their local-DRAM stalls: exactly the
    # cycles the baseline local run spends beyond the reduced local run.
    local_cost = max(0.0, base_local.cycles - reduced_local.cycles)
    after_cycles = reduced_cxl.cycles + local_cost
    after = (after_cycles - base_local.cycles) / base_local.cycles * 100.0

    return TuningResult(
        workload=workload.name,
        target=cxl_target.name,
        slowdown_before_pct=before,
        slowdown_after_pct=after,
        relocated=relocated,
        moved_gb=sum(obj.size_gb for obj in relocated),
        hot_period_indices=hot_idx,
    )


def _labels_for_periods(
    workload: WorkloadSpec,
    periods: Sequence[PeriodBreakdown],
    period_instructions: float,
) -> List[str]:
    """Phase labels overlapping the given instruction periods."""
    spans = []
    start = 0.0
    for phase in workload.effective_phases():
        end = start + phase.weight * workload.instructions
        spans.append((start, end, phase.label))
        start = end
    labels = []
    for p in periods:
        for s, e, label in spans:
            if p.instructions_start < e and p.instructions_end > s:
                if label not in labels:
                    labels.append(label)
    return labels
