"""Prefetcher-inefficiency analysis under CXL (§5.4, Figures 12-13).

Two observable signatures identify the Figure 13 mechanism from counters
alone:

* the *shift*: ``L1PF-L3-miss`` increases by almost exactly as much as
  ``L2PF-L3-miss`` decreases (y = x, Pearson ~0.99), with no change in
  ``L2PF-L3-hit`` -- late L2 prefetches push the L1 prefetcher to fetch
  from memory directly (Figure 12a);
* the *correlation*: workloads with larger L2-prefetcher coverage drops
  show larger Spa cache (S_L2) slowdowns (Figure 12b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cpu.pipeline import RunResult
from repro.core.spa import SpaBreakdown, spa_analyze
from repro.errors import AnalysisError


@dataclass(frozen=True)
class PrefetchShift:
    """The Figure 12a observables for one (local, CXL) run pair."""

    workload: str
    l1pf_l3_miss_increase: float  # events
    l2pf_l3_miss_decrease: float  # events
    l2pf_l3_hit_change: float  # events (expected ~0)
    coverage_drop_pct: float  # L2PF coverage lost, percentage points
    l2_slowdown_pct: float  # Spa S_L2 for the pair

    @property
    def shift_ratio(self) -> float:
        """L1PF increase / L2PF decrease; ~1.0 under the Figure 13 mechanism."""
        if self.l2pf_l3_miss_decrease == 0:
            return float("nan")
        return self.l1pf_l3_miss_increase / self.l2pf_l3_miss_decrease


def prefetch_shift(local: RunResult, cxl: RunResult) -> PrefetchShift:
    """Compute the prefetcher shift observables for one run pair."""
    if local.workload.name != cxl.workload.name:
        raise AnalysisError("run pair must be the same workload")
    breakdown: SpaBreakdown = spa_analyze(local, cxl)
    lc, cc = local.counters, cxl.counters

    # Coverage drop from the model's operating points (instruction-weighted).
    def coverage(run: RunResult) -> float:
        total = sum(p.instructions for p in run.phases)
        return sum(
            p.operating_point.prefetch.coverage * p.instructions
            for p in run.phases
        ) / total

    drop = (coverage(local) - coverage(cxl)) * 100.0
    return PrefetchShift(
        workload=local.workload.name,
        l1pf_l3_miss_increase=cc.l1pf_l3_miss - lc.l1pf_l3_miss,
        l2pf_l3_miss_decrease=lc.l2pf_l3_miss - cc.l2pf_l3_miss,
        l2pf_l3_hit_change=cc.l2pf_l3_hit - lc.l2pf_l3_hit,
        coverage_drop_pct=drop,
        l2_slowdown_pct=breakdown.components["l2"] + breakdown.components["l3"],
    )


def shift_scatter(
    pairs: Sequence[Tuple[RunResult, RunResult]],
) -> List[PrefetchShift]:
    """Figure 12a's scatter: one shift point per workload pair."""
    return [prefetch_shift(local, cxl) for local, cxl in pairs]
