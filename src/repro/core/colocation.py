"""Workload co-location on shared CXL memory, and phase-aware scheduling.

Finding #5 ends with a recommendation: *"By identifying less-affected
periods, resource utilizations could be optimized, benefiting other
workloads under co-location."*  This module turns that sentence into a
scheduler:

* :func:`colocated_slowdowns` solves the joint operating point of several
  workloads sharing one device (each sees the others as neighbour load);
* :func:`phase_aware_colocation` compares two ways of running a batch job
  next to a latency-critical (LC) tenant:

  - **naive**: the batch streams throughout, so the LC tenant's *hot*
    phases (the ones Spa's period analysis flags) absorb neighbour
    pressure exactly when they can least afford it;
  - **phase-aware**: the batch is gated to the LC tenant's cool phases
    (plus whatever remains after the LC job finishes), trading a longer
    batch makespan for the LC tenant's hot phases running undisturbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cpu.pipeline import PipelineConfig, run_workload
from repro.errors import AnalysisError
from repro.hw.platform import Platform
from repro.hw.pooling import SharedDeviceView
from repro.hw.target import MemoryTarget
from repro.workloads.base import WorkloadSpec

HOT_PHASE_PREFIX = "hot"
"""Phase labels starting with this are treated as latency-critical bursts."""


@dataclass(frozen=True)
class ColocationOutcome:
    """Joint operating point of co-located workloads."""

    slowdowns_vs_alone: Dict[str, float]  # extra slowdown from sharing
    slowdowns_vs_local: Dict[str, float]  # total slowdown vs local DRAM
    loads_gbps: Dict[str, float]

    def interference(self, workload: str) -> float:
        """Slowdown added purely by the neighbours (percentage points)."""
        return self.slowdowns_vs_alone[workload]


def colocated_slowdowns(
    workloads: Sequence[WorkloadSpec],
    platform: Platform,
    device_factory,
    config: PipelineConfig = PipelineConfig(),
    iterations: int = 4,
) -> ColocationOutcome:
    """Solve the joint fixed point of workloads sharing one device.

    Each workload's neighbour load is the sum of the others' offered
    bandwidth; loads and runs are iterated to convergence (damped; the
    coupling is mild because loads shrink as interference grows).
    """
    if len(workloads) < 2:
        raise AnalysisError("co-location needs at least two workloads")
    local = platform.local_target()
    base = {
        w.name: run_workload(w, platform, local, config) for w in workloads
    }
    alone = {
        w.name: run_workload(w, platform, device_factory(), config)
        for w in workloads
    }
    loads = {w.name: alone[w.name].mean_load_gbps for w in workloads}

    runs = dict(alone)
    for _ in range(iterations):
        new_loads = {}
        for w in workloads:
            neighbour = sum(
                loads[other.name] for other in workloads if other is not w
            )
            device = device_factory()
            peak = device.peak_bandwidth_gbps(0.7)
            neighbour = min(neighbour, 0.9 * peak)
            view = (
                SharedDeviceView(device, neighbour_gbps=neighbour)
                if neighbour > 0
                else device
            )
            runs[w.name] = run_workload(w, platform, view, config)
            new_loads[w.name] = runs[w.name].mean_load_gbps
        loads = {
            name: 0.5 * loads[name] + 0.5 * new_loads[name]
            for name in loads
        }

    return ColocationOutcome(
        slowdowns_vs_alone={
            w.name: runs[w.name].slowdown_vs(base[w.name])
            - alone[w.name].slowdown_vs(base[w.name])
            for w in workloads
        },
        slowdowns_vs_local={
            w.name: runs[w.name].slowdown_vs(base[w.name]) for w in workloads
        },
        loads_gbps=dict(loads),
    )


@dataclass(frozen=True)
class PhaseAwareOutcome:
    """Naive vs phase-aware co-location of (LC tenant, batch job)."""

    lc_workload: str
    batch_workload: str
    lc_slowdown_naive_pct: float
    lc_slowdown_phase_aware_pct: float
    batch_makespan_naive_s: float
    batch_makespan_phase_aware_s: float

    @property
    def lc_recovered_pct(self) -> float:
        """LC slowdown removed by phase-aware gating (points)."""
        return self.lc_slowdown_naive_pct - self.lc_slowdown_phase_aware_pct

    @property
    def batch_cost_ratio(self) -> float:
        """Batch makespan stretch paid for the recovery."""
        return (
            self.batch_makespan_phase_aware_s / self.batch_makespan_naive_s
        )


def _lc_cycles_with_gating(
    lc: WorkloadSpec,
    platform: Platform,
    device_factory,
    batch_load_gbps: float,
    gate_hot_phases: bool,
    config: PipelineConfig,
) -> Tuple[float, float, float]:
    """LC cycles with the batch as neighbour (optionally gated).

    Returns ``(total_cycles, cool_seconds, total_seconds)``.
    """
    total_cycles = 0.0
    cool_cycles = 0.0
    for phase in lc.effective_phases():
        spec = lc.in_phase(phase)
        hot = phase.label.startswith(HOT_PHASE_PREFIX)
        neighbour = 0.0 if (gate_hot_phases and hot) else batch_load_gbps
        device = device_factory()
        # A saturating batch cannot actually push more than the device
        # serves; clamp its neighbour pressure below the shared peak.
        neighbour = min(neighbour, 0.85 * device.peak_bandwidth_gbps(0.7))
        view = (
            SharedDeviceView(device, neighbour_gbps=neighbour)
            if neighbour > 0
            else device
        )
        cycles = run_workload(spec, platform, view, config).cycles
        total_cycles += cycles
        if not hot:
            cool_cycles += cycles
    freq_hz = platform.freq_ghz * 1e9
    return total_cycles, cool_cycles / freq_hz, total_cycles / freq_hz


def phase_aware_colocation(
    lc: WorkloadSpec,
    batch: WorkloadSpec,
    platform: Platform,
    device_factory,
    config: PipelineConfig = PipelineConfig(),
) -> PhaseAwareOutcome:
    """Compare naive and phase-aware co-location (Finding #5)."""
    if not lc.phases:
        raise AnalysisError(
            "phase-aware co-location needs a phased latency-critical "
            "workload"
        )
    local = platform.local_target()
    lc_base = run_workload(lc, platform, local, config)
    batch_alone = run_workload(batch, platform, device_factory(), config)
    batch_load = batch_alone.mean_load_gbps
    batch_work_s = batch_alone.time_s

    naive_cycles, _, naive_total_s = _lc_cycles_with_gating(
        lc, platform, device_factory, batch_load,
        gate_hot_phases=False, config=config,
    )
    aware_cycles, cool_s, aware_total_s = _lc_cycles_with_gating(
        lc, platform, device_factory, batch_load,
        gate_hot_phases=True, config=config,
    )

    naive_slowdown = (naive_cycles - lc_base.cycles) / lc_base.cycles * 100.0
    aware_slowdown = (aware_cycles - lc_base.cycles) / lc_base.cycles * 100.0

    # Batch makespan: naive runs concurrently for its whole duration (it
    # cannot finish before its own work time); phase-aware only progresses
    # during the LC tenant's cool time, then runs alone.
    makespan_naive = max(batch_work_s, 0.0)
    if batch_work_s <= cool_s:
        makespan_aware = aware_total_s  # finished inside the cool windows
    else:
        makespan_aware = aware_total_s + (batch_work_s - cool_s)

    return PhaseAwareOutcome(
        lc_workload=lc.name,
        batch_workload=batch.name,
        lc_slowdown_naive_pct=naive_slowdown,
        lc_slowdown_phase_aware_pct=aware_slowdown,
        batch_makespan_naive_s=makespan_naive,
        batch_makespan_phase_aware_s=makespan_aware,
    )
