"""Spa-based cross-device slowdown prediction.

§5.7: *"Spa serves as a foundation for accurate predictive models...
analyzing and predicting workload performance in complex memory
configurations."*  The predictor answers the deployment question: having
profiled a workload on local DRAM and ONE reference CXL device, what will
its slowdown be on a DIFFERENT device — without running it there?

Mechanism: Spa's differential stalls are decomposable, and each source
scales with a known device property:

* DRAM-demand stalls scale with the *latency delta* ratio
  ``(lat_target − lat_local) / (lat_ref − lat_local)``;
* store-buffer stalls scale with the full latency ratio (RFO round trips);
* cache (delayed-prefetch) stalls scale with the latency *overshoot*
  beyond the prefetch lead, i.e. super-linearly near the lead;
* a bandwidth floor is added when the workload's measured traffic exceeds
  the target's peak.

The naive baseline the paper critiques — "slowdown ∝ LLC misses x latency"
— is implemented alongside for comparison; it cannot see prefetch
coverage, MLP, or store behaviour, which is where it loses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.spa import spa_analyze
from repro.cpu.pipeline import RunResult
from repro.errors import AnalysisError
from repro.hw.target import MemoryTarget

PREFETCH_LEAD_PROXY_NS = 280.0
"""Population-typical prefetch lead used to scale cache stalls when the
true per-workload lead is unknown to the predictor (it only has counters)."""


@dataclass(frozen=True)
class SlowdownPrediction:
    """Predicted slowdown on a target, with the per-source contributions."""

    workload: str
    target: str
    predicted_pct: float
    dram_pct: float
    store_pct: float
    cache_pct: float
    bandwidth_floor_pct: float

    @property
    def breakdown(self) -> dict:
        """Per-source predicted contributions."""
        return {
            "dram": self.dram_pct,
            "store": self.store_pct,
            "cache": self.cache_pct,
            "bandwidth": self.bandwidth_floor_pct,
        }


def _latency_scale(local_ns: float, ref_ns: float, target_ns: float) -> float:
    """Delta-latency ratio used for demand-stall scaling."""
    ref_delta = ref_ns - local_ns
    if ref_delta <= 0:
        raise AnalysisError("reference device is not slower than local DRAM")
    return max(0.0, (target_ns - local_ns) / ref_delta)


def _overshoot_scale(local_ns: float, ref_ns: float, target_ns: float) -> float:
    """Prefetch-overshoot ratio for cache-stall scaling."""
    ref_over = max(0.0, ref_ns - PREFETCH_LEAD_PROXY_NS)
    target_over = max(0.0, target_ns - PREFETCH_LEAD_PROXY_NS)
    if ref_over <= 0:
        # Reference device never turned prefetches late; fall back to the
        # delta-latency scale (pessimistic).
        return _latency_scale(local_ns, ref_ns, target_ns)
    return target_over / ref_over


def predict_slowdown(
    local_run: RunResult,
    reference_run: RunResult,
    reference_target: MemoryTarget,
    target: MemoryTarget,
) -> SlowdownPrediction:
    """Predict the workload's slowdown on ``target`` from one profile pair."""
    breakdown = spa_analyze(local_run, reference_run)
    local_ns = local_run.mean_latency_ns
    ref_ns = reference_run.mean_latency_ns
    target_ns = target.distribution(
        reference_run.mean_load_gbps,
        reference_run.workload.read_fraction(),
    ).mean_ns

    lat_scale = _latency_scale(local_ns, ref_ns, target_ns)
    full_ratio = target_ns / ref_ns
    over_scale = _overshoot_scale(local_ns, ref_ns, target_ns)

    dram = max(0.0, breakdown.components["dram"]) * lat_scale
    store = max(0.0, breakdown.components["store"]) * full_ratio
    cache = max(0.0, breakdown.cache) * over_scale

    # Bandwidth floor: the workload's local traffic must fit the target.
    workload = local_run.workload
    demand = local_run.mean_load_gbps
    peak = target.peak_bandwidth_gbps(workload.read_fraction())
    floor = 0.0
    if demand > 0.97 * peak:
        floor = (demand / (0.97 * peak) - 1.0) * 100.0

    predicted = max(dram + store + cache, floor)
    return SlowdownPrediction(
        workload=workload.name,
        target=target.name,
        predicted_pct=predicted,
        dram_pct=dram,
        store_pct=store,
        cache_pct=cache,
        bandwidth_floor_pct=floor,
    )


class LlcHeuristicPredictor:
    """The conventional heuristic the paper critiques (§5.2).

    Predicts ``slowdown = k * LLC_MPKI * latency_delta`` with a single
    population-fitted constant ``k``.  It never looks at which misses
    actually stall the pipeline, so it systematically over-predicts for
    prefetch-covered/high-MLP workloads and under-predicts for dependent
    chains and store-buffer-bound workloads -- the "low accuracy, lack of
    interpretability" failure mode.
    """

    def __init__(self):
        self._k = None

    def fit(self, pairs: Sequence[Tuple[RunResult, RunResult]]) -> "LlcHeuristicPredictor":
        """Calibrate ``k`` on (local, reference-device) profile pairs."""
        if not pairs:
            raise AnalysisError("cannot fit the heuristic on no pairs")
        ratios = []
        for local_run, ref_run in pairs:
            actual = (
                (ref_run.cycles - local_run.cycles) / local_run.cycles * 100.0
            )
            exposure = self._exposure(local_run, ref_run.mean_latency_ns)
            if exposure > 0:
                ratios.append(actual / exposure)
        if not ratios:
            raise AnalysisError("no pair had LLC-miss exposure to fit on")
        self._k = float(np.median(ratios))
        return self

    @staticmethod
    def _exposure(local_run: RunResult, target_latency_ns: float) -> float:
        workload = local_run.workload
        delta = max(0.0, target_latency_ns - local_run.mean_latency_ns)
        return workload.l3_mpki * delta

    def predict(self, local_run: RunResult, target: MemoryTarget) -> float:
        """Predict the slowdown on ``target`` from LLC MPKI alone."""
        if self._k is None:
            raise AnalysisError("heuristic predictor not fitted")
        return self._k * self._exposure(local_run, target.idle_latency_ns())


@dataclass(frozen=True)
class PredictionValidation:
    """Accuracy of a predictor over a population."""

    errors_pct: np.ndarray  # |predicted - actual| per workload
    naive_errors_pct: np.ndarray

    @property
    def median_error(self) -> float:
        """Median absolute prediction error (points)."""
        return float(np.median(self.errors_pct))

    @property
    def naive_median_error(self) -> float:
        """Median absolute error of the naive LLC-scaling baseline."""
        return float(np.median(self.naive_errors_pct))

    def fraction_within(self, points: float) -> float:
        """Fraction of predictions within ``points`` of the measurement."""
        return float(np.mean(self.errors_pct <= points))


def validate_predictions(
    triples: Sequence[Tuple[RunResult, RunResult, RunResult]],
    reference_target: MemoryTarget,
    target: MemoryTarget,
) -> PredictionValidation:
    """Validate predictions against actual runs.

    ``triples`` holds (local_run, reference_run, actual_target_run) per
    workload; the actual run is used only for ground truth.
    """
    if not triples:
        raise AnalysisError("no prediction triples supplied")
    heuristic = LlcHeuristicPredictor().fit(
        [(local_run, ref_run) for local_run, ref_run, _ in triples]
    )
    errors = []
    naive_errors = []
    for local_run, ref_run, actual_run in triples:
        actual = (
            (actual_run.cycles - local_run.cycles) / local_run.cycles * 100.0
        )
        predicted = predict_slowdown(
            local_run, ref_run, reference_target, target
        ).predicted_pct
        naive = heuristic.predict(local_run, target)
        errors.append(abs(predicted - actual))
        naive_errors.append(abs(naive - actual))
    return PredictionValidation(
        errors_pct=np.array(errors),
        naive_errors_pct=np.array(naive_errors),
    )
