"""The paper's primary contribution: Melody campaigns and Spa analysis.

* :mod:`repro.core.melody` -- characterization campaign orchestration
  (workloads x targets x platforms) and slowdown datasets.
* :mod:`repro.core.spa` -- Spa: stall-based CXL performance analysis
  (Equations 1-8, accuracy validation).
* :mod:`repro.core.breakdown` -- component-wise slowdown breakdowns
  (Figures 14 and 15).
* :mod:`repro.core.period` -- period-based (instruction-interval) slowdown
  analysis from time-sampled counters (§5.6, Figure 16).
* :mod:`repro.core.prefetch` -- prefetcher-inefficiency analysis
  (Figure 12, Finding #4).
* :mod:`repro.core.tuning` -- Spa-guided memory placement (§5.7).
* :mod:`repro.core.tiering` -- Spa-based tiering policies vs the LLC-miss
  heuristic (§5.7's "smarter tiering" claim).
* :mod:`repro.core.prediction` -- cross-device slowdown prediction from one
  profile pair (§5.7's predictive-models claim).
* :mod:`repro.core.dataset` -- campaign dataset export/import (the paper's
  open-sourced datasets artifact).
"""

from repro.core.melody import (
    Campaign,
    CampaignResult,
    Melody,
    SlowdownRecord,
)
from repro.core.spa import (
    SpaBreakdown,
    SpaEstimates,
    spa_analyze,
    validate_accuracy,
)
from repro.core.breakdown import (
    breakdown_cdfs,
    breakdown_by_suite,
    dominant_source,
)
from repro.core.period import PeriodBreakdown, period_analysis
from repro.core.prefetch import PrefetchShift, prefetch_shift
from repro.core.tuning import HotObject, TuningResult, tune_placement
from repro.core.tiering import (
    MissRatePolicy,
    SpaStallPolicy,
    TieredSystem,
    TieringOutcome,
    UniformPolicy,
    compare_policies,
    simulate_tiering,
)
from repro.core.prediction import (
    LlcHeuristicPredictor,
    SlowdownPrediction,
    predict_slowdown,
    validate_predictions,
)
from repro.core.dataset import export_csv, export_json, load_csv
from repro.core.colocation import (
    ColocationOutcome,
    PhaseAwareOutcome,
    colocated_slowdowns,
    phase_aware_colocation,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "Melody",
    "SlowdownRecord",
    "SpaBreakdown",
    "SpaEstimates",
    "spa_analyze",
    "validate_accuracy",
    "breakdown_cdfs",
    "breakdown_by_suite",
    "dominant_source",
    "PeriodBreakdown",
    "period_analysis",
    "PrefetchShift",
    "prefetch_shift",
    "HotObject",
    "TuningResult",
    "tune_placement",
    "MissRatePolicy",
    "SpaStallPolicy",
    "TieredSystem",
    "TieringOutcome",
    "UniformPolicy",
    "compare_policies",
    "simulate_tiering",
    "LlcHeuristicPredictor",
    "SlowdownPrediction",
    "predict_slowdown",
    "validate_predictions",
    "export_csv",
    "export_json",
    "load_csv",
    "ColocationOutcome",
    "PhaseAwareOutcome",
    "colocated_slowdowns",
    "phase_aware_colocation",
]
