"""Spa: Stall-based CXL performance analysis (§5 of the paper).

Spa's insight is that the *differential* CPU stalls between a CXL run and a
local-DRAM run of the same workload accurately explain the slowdown, while
absolute stall counts in either run do not.  Using only the nine counters
of Table 2 it computes (Equations 1-5):

    Delta_s          = Delta P6                        (total extra stalls)
    Delta_s_Core     = Delta P7 + Delta P8 + Delta P9
    Delta_s_Memory   = Delta P1 + Delta P2
    Delta_s_Backend  = Delta_s_Core + Delta_s_Memory

    S = Delta_c / c  ~=  Delta_s / c  ~=  Delta_s_Backend / c
                     ~=  Delta_s_Memory / c

and breaks the memory part down by source (Equations 6-8) via the
Figure 10 containment differencing:

    S ~= S_store + S_L1 + S_L2 + S_L3 + S_DRAM

All estimates divide by the *baseline* cycle count ``c``, matching the
paper's slowdown definition.  :func:`validate_accuracy` reproduces the
Figure 11 validation: the absolute difference between estimated and
actually-measured slowdowns across a workload population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.cpu.counters import CounterSample
from repro.cpu.pipeline import RunResult
from repro.errors import AnalysisError

SOURCES = ("store", "l1", "l2", "l3", "dram")
"""Component slowdown sources, innermost-buffer first."""


@dataclass(frozen=True)
class SpaEstimates:
    """The three Equation-5 slowdown estimators, in percent."""

    actual: float  # measured: (c' - c) / c
    from_stalls: float  # Delta s / c            (Figure 11a)
    from_backend: float  # Delta s_Backend / c   (Figure 11b)
    from_memory: float  # Delta s_Memory / c     (Figure 11c)

    @property
    def stall_error(self) -> float:
        """|actual - from_stalls| in percentage points."""
        return abs(self.actual - self.from_stalls)

    @property
    def backend_error(self) -> float:
        """|actual - from_backend| in percentage points."""
        return abs(self.actual - self.from_backend)

    @property
    def memory_error(self) -> float:
        """|actual - from_memory| in percentage points."""
        return abs(self.actual - self.from_memory)


@dataclass(frozen=True)
class SpaBreakdown:
    """Full Spa analysis of one (local, CXL) run pair."""

    workload: str
    target: str
    estimates: SpaEstimates
    components: Dict[str, float]  # percent slowdown per source
    core: float  # Delta s_Core / c (percent)
    other: float  # actual - explained (percent, the Figure 14 "Other")

    @property
    def cache(self) -> float:
        """Combined cache slowdown S_L1 + S_L2 + S_L3."""
        return self.components["l1"] + self.components["l2"] + self.components["l3"]

    @property
    def explained(self) -> float:
        """Slowdown accounted for by Spa's sources."""
        return sum(self.components.values()) + self.core

    def dominant(self) -> str:
        """The single largest slowdown source."""
        return max(self.components, key=lambda k: self.components[k])


CONTAINMENT_TOLERANCE = 0.02
"""Relative slack allowed on the Figure 10 containment checks (measurement
noise can jitter adjacent counters past each other by a fraction of a
percent; anything beyond this indicates corrupted input)."""


def check_counters(sample: CounterSample, label: str = "sample") -> None:
    """Validate a counter reading's structural invariants.

    Spa's differencing silently produces garbage if the containment
    structure (P1 >= P3 >= P4 >= P5 >= 0) is violated -- e.g. by a
    mis-programmed PMU, a truncated log, or counter multiplexing gone
    wrong.  This guard raises instead.
    """
    chain = (
        ("BOUND_ON_LOADS", sample.bound_on_loads),
        ("STALLS_L1D_MISS", sample.stalls_l1d_miss),
        ("STALLS_L2_MISS", sample.stalls_l2_miss),
        ("STALLS_L3_MISS", sample.stalls_l3_miss),
    )
    for (hi_name, hi), (lo_name, lo) in zip(chain, chain[1:]):
        if lo > hi * (1.0 + CONTAINMENT_TOLERANCE):
            raise AnalysisError(
                f"{label}: counter containment violated "
                f"({lo_name}={lo:.0f} > {hi_name}={hi:.0f}); "
                "the reading is corrupt or from an unsupported PMU"
            )
    for name, value in chain + (("BOUND_ON_STORES", sample.bound_on_stores),):
        if value < 0:
            raise AnalysisError(f"{label}: negative counter {name}={value}")
    if sample.cycles <= 0:
        raise AnalysisError(f"{label}: non-positive cycle count")


def _check_pair(local: RunResult, cxl: RunResult) -> None:
    if local.workload.name != cxl.workload.name:
        raise AnalysisError(
            f"run pair mismatch: {local.workload.name} vs {cxl.workload.name}"
        )
    if local.instructions != cxl.instructions:
        raise AnalysisError(
            "runs retired different instruction counts; Spa requires the "
            "same program on both memory backends"
        )
    check_counters(local.counters, "baseline run")
    check_counters(cxl.counters, "CXL run")


def spa_analyze(local: RunResult, cxl: RunResult) -> SpaBreakdown:
    """Analyze one (local-DRAM, CXL) run pair using only the PMU counters.

    Everything here is computed from :class:`CounterSample` readings -- the
    model's internal ground truth is never consulted, so the analysis is as
    honest as it would be on real hardware.
    """
    _check_pair(local, cxl)
    lc, cc = local.counters, cxl.counters
    c = lc.cycles

    actual = (cc.cycles - c) / c * 100.0
    d_stalls = (cc.retired_stalls - lc.retired_stalls) / c * 100.0
    d_core = (cc.s_core - lc.s_core) / c * 100.0
    d_memory = (cc.s_memory - lc.s_memory) / c * 100.0
    d_backend = d_memory + d_core

    components = {
        "store": (cc.s_store - lc.s_store) / c * 100.0,
        "l1": (cc.s_l1 - lc.s_l1) / c * 100.0,
        "l2": (cc.s_l2 - lc.s_l2) / c * 100.0,
        "l3": (cc.s_l3 - lc.s_l3) / c * 100.0,
        "dram": (cc.s_dram - lc.s_dram) / c * 100.0,
    }
    explained = sum(components.values()) + d_core
    return SpaBreakdown(
        workload=local.workload.name,
        target=cxl.target_name,
        estimates=SpaEstimates(
            actual=actual,
            from_stalls=d_stalls,
            from_backend=d_backend,
            from_memory=d_memory,
        ),
        components=components,
        core=d_core,
        other=actual - explained,
    )


def validate_accuracy(
    pairs: Sequence[Tuple[RunResult, RunResult]],
) -> Dict[str, np.ndarray]:
    """The Figure 11 validation over a population of run pairs.

    Returns the absolute estimation errors (percentage points) of the
    three estimators, one array entry per workload.
    """
    if not pairs:
        raise AnalysisError("accuracy validation needs at least one run pair")
    breakdowns = [spa_analyze(local, cxl) for local, cxl in pairs]
    return {
        "stalls": np.array([b.estimates.stall_error for b in breakdowns]),
        "backend": np.array([b.estimates.backend_error for b in breakdowns]),
        "memory": np.array([b.estimates.memory_error for b in breakdowns]),
    }


def accuracy_summary(errors: Dict[str, np.ndarray]) -> Dict[str, float]:
    """Fraction of workloads within 5 points, per estimator (paper's claim)."""
    return {
        name: float(np.mean(arr <= 5.0)) for name, arr in errors.items()
    }
