"""Exception hierarchy for the Melody framework.

All library-raised errors derive from :class:`MelodyError` so that callers can
catch framework failures without accidentally swallowing programming errors
(``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class MelodyError(Exception):
    """Base class for all errors raised by the Melody framework."""


class ConfigurationError(MelodyError):
    """A device, platform, or topology was configured inconsistently."""


class CalibrationError(MelodyError):
    """A calibrated model parameter is outside its physically valid range."""


class WorkloadError(MelodyError):
    """A workload specification is invalid or unknown to the registry."""


class MeasurementError(MelodyError):
    """A measurement tool was driven with invalid parameters."""


class AnalysisError(MelodyError):
    """An analysis routine received inconsistent or insufficient inputs."""


class DiagnosticError(MelodyError):
    """A registered simulation invariant was violated (``--strict`` mode).

    Carries the :class:`~repro.diag.report.DiagReport` that tripped, so the
    caller can render or serialize the full structured diagnosis.
    """

    def __init__(self, report, context: str = ""):
        self.report = report
        prefix = f"{context}: " if context else ""
        count = len(report.violations)
        first = report.violations[0].render() if count else "unknown"
        super().__init__(
            f"{prefix}{count} invariant violation(s); first: {first}"
        )


class SaturationError(MelodyError):
    """An offered load exceeds what a memory target can ever serve.

    Raised by open-loop latency queries when the offered bandwidth is at or
    beyond the target's peak bandwidth; closed-loop tools never raise this
    because their throughput self-limits at saturation.
    """

    def __init__(self, offered_gbps: float, peak_gbps: float, target: str):
        self.offered_gbps = offered_gbps
        self.peak_gbps = peak_gbps
        self.target = target
        super().__init__(
            f"offered load {offered_gbps:.2f} GB/s >= peak "
            f"{peak_gbps:.2f} GB/s on {target}"
        )
