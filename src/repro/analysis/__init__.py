"""Statistics and reporting helpers shared by experiments and benchmarks."""

from repro.analysis.stats import (
    cdf_points,
    pearson,
    percentile_summary,
    violin_summary,
)
from repro.analysis.slowdown import slowdown_pct, speedup_ratio
from repro.analysis.report import Table, format_cdf_row
from repro.analysis.regression import (
    DatasetDiff,
    diff_datasets,
    render_diff,
)

__all__ = [
    "cdf_points",
    "pearson",
    "percentile_summary",
    "violin_summary",
    "slowdown_pct",
    "speedup_ratio",
    "Table",
    "format_cdf_row",
    "DatasetDiff",
    "diff_datasets",
    "render_diff",
]
