"""Statistical helpers: CDFs, percentiles, violin summaries, correlation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError


def cdf_points(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``values``: returns (sorted values, cumulative frac)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot build a CDF from no values")
    xs = np.sort(arr)
    ys = np.arange(1, arr.size + 1) / arr.size
    return xs, ys


def percentile_summary(values: Sequence[float], ps=(50, 90, 95, 99, 99.9)) -> dict:
    """Named percentiles of a sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot summarize no values")
    return {f"p{p:g}": float(np.percentile(arr, p)) for p in ps}


@dataclass(frozen=True)
class ViolinSummary:
    """The quantities a violin plot encodes for one group (Figure 9a)."""

    label: str
    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    density_grid: np.ndarray  # where the kernel density was evaluated
    density: np.ndarray  # the (normalised) density values


def violin_summary(
    label: str, values: Sequence[float], grid_points: int = 64
) -> ViolinSummary:
    """Summarize one group for a violin plot, with a light KDE.

    The KDE uses a Gaussian kernel with Silverman's rule-of-thumb
    bandwidth -- enough to plot the violin shape without scipy.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError(f"violin group {label!r} has no values")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    std = float(arr.std())
    bandwidth = 1.06 * std * arr.size ** (-1 / 5) if std > 0 else 1.0
    grid = np.linspace(float(arr.min()), float(arr.max()), grid_points)
    diffs = (grid[:, None] - arr[None, :]) / bandwidth
    density = np.exp(-0.5 * diffs**2).sum(axis=1) / (
        arr.size * bandwidth * np.sqrt(2 * np.pi)
    )
    peak = density.max()
    if peak > 0:
        density = density / peak
    return ViolinSummary(
        label=label,
        count=arr.size,
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        density_grid=grid,
        density=density,
    )


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient (Figure 12a's 0.99 claim)."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.size != ya.size:
        raise AnalysisError(f"length mismatch: {xa.size} vs {ya.size}")
    if xa.size < 2:
        raise AnalysisError("correlation needs at least two points")
    if xa.std() == 0 or ya.std() == 0:
        raise AnalysisError("correlation undefined for constant series")
    return float(np.corrcoef(xa, ya)[0, 1])
