"""Plain-text rendering of experiment results.

Every benchmark regenerates its table/figure as text: rows for tables,
labelled series for figures.  A tiny fixed-width table renderer keeps the
output readable in CI logs without plotting dependencies.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import AnalysisError


class Table:
    """A fixed-width text table."""

    def __init__(self, headers: Sequence[str]):
        if not headers:
            raise AnalysisError("table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        """Append one row; cells are stringified, floats at 1 decimal."""
        if len(cells) != len(self.headers):
            raise AnalysisError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        formatted = []
        for cell in cells:
            if isinstance(cell, float):
                formatted.append(f"{cell:.1f}")
            else:
                formatted.append(str(cell))
        self.rows.append(formatted)

    def render(self) -> str:
        """Render the table with padded columns."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)


def format_cdf_row(label: str, values, thresholds=(5, 10, 25, 50, 100)) -> str:
    """One-line CDF summary: fraction of values under each threshold."""
    import numpy as np

    arr = np.asarray(values, dtype=float)
    parts = [
        f"<{t}%: {float(np.mean(arr < t)) * 100:4.0f}%" for t in thresholds
    ]
    return f"{label:18s} " + "  ".join(parts)
