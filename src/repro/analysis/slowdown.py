"""The paper's slowdown metric.

``S = (P_DRAM / P_CXL - 1) * 100%`` where P is workload performance
(throughput or inverse runtime).  Positive S means CXL is slower.
"""

from __future__ import annotations

from repro.errors import AnalysisError


def slowdown_pct(baseline_performance: float, performance: float) -> float:
    """Slowdown of ``performance`` relative to ``baseline_performance``."""
    if performance <= 0 or baseline_performance <= 0:
        raise AnalysisError("performance values must be positive")
    return (baseline_performance / performance - 1.0) * 100.0


def speedup_ratio(slowdown_percent: float) -> float:
    """Convert a slowdown percentage into a runtime ratio (2.9x etc.)."""
    return 1.0 + slowdown_percent / 100.0
