"""Campaign-dataset regression diffing.

The repository ships a campaign dataset (`data/emr_campaign.csv`); when the
models evolve, the question is always *what moved*.  This module diffs two
datasets record-by-record and classifies the movements, so CI (or a human)
can tell a deliberate recalibration from an accidental regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.dataset import DatasetRecord
from repro.errors import AnalysisError

DEFAULT_TOLERANCE_PP = 1.0
"""Slowdown movements below this many points are considered noise."""


@dataclass(frozen=True)
class RecordDiff:
    """One (workload, target) record's movement between datasets."""

    workload: str
    target: str
    before_pct: float
    after_pct: float

    @property
    def delta_pp(self) -> float:
        """Slowdown movement in percentage points (positive = slower now)."""
        return self.after_pct - self.before_pct


@dataclass(frozen=True)
class DatasetDiff:
    """The full comparison of two campaign datasets."""

    changed: Tuple[RecordDiff, ...]
    unchanged: int
    only_before: Tuple[Tuple[str, str], ...]
    only_after: Tuple[Tuple[str, str], ...]

    @property
    def max_movement_pp(self) -> float:
        """Largest absolute slowdown movement."""
        if not self.changed:
            return 0.0
        return max(abs(d.delta_pp) for d in self.changed)

    @property
    def mean_movement_pp(self) -> float:
        """Mean signed movement over the changed records."""
        if not self.changed:
            return 0.0
        return float(np.mean([d.delta_pp for d in self.changed]))

    def worst(self, n: int = 10) -> List[RecordDiff]:
        """The n largest movements, biggest first."""
        return sorted(self.changed, key=lambda d: -abs(d.delta_pp))[:n]

    def is_clean(self, budget_pp: float = 3.0) -> bool:
        """No record moved beyond the budget and no records disappeared."""
        return (
            self.max_movement_pp <= budget_pp
            and not self.only_before
            and not self.only_after
        )


def diff_datasets(
    before: Sequence[DatasetRecord],
    after: Sequence[DatasetRecord],
    tolerance_pp: float = DEFAULT_TOLERANCE_PP,
) -> DatasetDiff:
    """Diff two loaded campaign datasets by (workload, target) key."""
    if tolerance_pp < 0:
        raise AnalysisError("tolerance cannot be negative")
    before_map: Dict[Tuple[str, str], DatasetRecord] = {
        (r.workload, r.target): r for r in before
    }
    after_map: Dict[Tuple[str, str], DatasetRecord] = {
        (r.workload, r.target): r for r in after
    }
    changed: List[RecordDiff] = []
    unchanged = 0
    for key, old in before_map.items():
        new = after_map.get(key)
        if new is None:
            continue
        delta = abs(new.slowdown_pct - old.slowdown_pct)
        if delta > tolerance_pp:
            changed.append(
                RecordDiff(
                    workload=key[0],
                    target=key[1],
                    before_pct=old.slowdown_pct,
                    after_pct=new.slowdown_pct,
                )
            )
        else:
            unchanged += 1
    only_before = tuple(sorted(set(before_map) - set(after_map)))
    only_after = tuple(sorted(set(after_map) - set(before_map)))
    return DatasetDiff(
        changed=tuple(changed),
        unchanged=unchanged,
        only_before=only_before,
        only_after=only_after,
    )


def render_diff(diff: DatasetDiff, n_worst: int = 10) -> str:
    """Human-readable diff summary."""
    lines = [
        f"dataset diff: {len(diff.changed)} moved, {diff.unchanged} stable, "
        f"{len(diff.only_before)} removed, {len(diff.only_after)} added",
        f"  mean movement {diff.mean_movement_pp:+.2f} pp, "
        f"max {diff.max_movement_pp:.2f} pp",
    ]
    for d in diff.worst(n_worst):
        lines.append(
            f"  {d.workload:32s} {d.target:12s} "
            f"{d.before_pct:7.1f}% -> {d.after_pct:7.1f}% "
            f"({d.delta_pp:+.1f})"
        )
    return "\n".join(lines)
