"""End-to-end dist harness: coordinator + in-process workers + chaos.

Used by the ``dist`` diag layer (``repro validate --layer dist``), the
dist test suite, and the dist benchmark.  The harness runs a small real
campaign through a real :class:`~repro.dist.coordinator.Coordinator`
listening on a loopback socket, with N :class:`~repro.dist.worker
.Worker` instances on threads -- optionally speaking through the seeded
:class:`~repro.dist.chaos.ChaosTransport`, sabotaged by a cell-level
:class:`~repro.faults.chaos.ChaosPolicy`, or armed to abandon their
socket mid-lease (``die_after``) -- and hands back everything the
survival invariants inspect:

* the campaign completes (no hang, no abort) under every schedule;
* at most the doomed cells are quarantined, as ``FailedCell`` records;
* the shared cache ends up holding results **bit-identical** to a solo
  run of the same campaign, which is what makes downstream exports
  byte-identical.

In-process workers must not use ``kill``-probability cell chaos (that
is a literal ``os._exit``): abrupt worker death is modeled by
``die_after`` (the worker abandons the socket, exactly what the
coordinator observes when a remote process is SIGKILLed); real process
death is exercised by the CI ``dist-smoke`` job.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.dist.coordinator import Coordinator, DistSummary
from repro.dist.spec import CampaignSpec
from repro.dist.worker import Worker
from repro.faults.chaos import ChaosPolicy
from repro.faults.netchaos import NetChaosPolicy
from repro.runtime.executor import RetryPolicy

SMOKE_SPEC = CampaignSpec(
    platform="EMR2S",
    targets=("cxl-a",),
    suite="GAPBS",
    sample=6,
    name="dist-smoke",
)
"""The harness default: 5 GAPBS workloads on CXL-A (~10 work units)."""


@dataclass(frozen=True)
class WorkerPlan:
    """How one harness worker should (mis)behave."""

    name: str = ""
    net_chaos_seed: Optional[int] = None
    cell_chaos: Optional[ChaosPolicy] = None
    die_after: Optional[int] = None


@dataclass(frozen=True)
class DistOutcome:
    """Everything the dist survival invariants inspect."""

    summary: DistSummary
    worker_codes: Tuple[int, ...]
    workers: Tuple[Worker, ...]
    cache_dir: str
    fingerprint: str
    spec: CampaignSpec


def run_dist_campaign(
    cache_dir: str,
    spec: CampaignSpec = SMOKE_SPEC,
    workers: Sequence[WorkerPlan] = (WorkerPlan(), WorkerPlan()),
    lease_s: float = 10.0,
    heartbeat_s: float = 0.25,
    policy: Optional[RetryPolicy] = None,
    deadline_s: float = 120.0,
) -> DistOutcome:
    """One coordinated campaign against in-process workers.

    Worker threads join with a grace period after the coordinator
    settles; a worker parked in a chaos hang is abandoned (daemon
    thread) rather than waited for -- its exit code reports ``-1``.
    """
    if policy is None:
        policy = RetryPolicy(
            max_attempts=4, backoff_base_s=0.0, backoff_max_s=0.05
        )
    coordinator = Coordinator(
        spec,
        cache_dir=cache_dir,
        lease_s=lease_s,
        heartbeat_s=heartbeat_s,
        policy=policy,
    )
    port = coordinator.start()
    built: List[Worker] = []
    codes: List[int] = [-1] * len(workers)
    threads: List[threading.Thread] = []
    for index, plan in enumerate(workers):
        net_chaos = (
            NetChaosPolicy.from_seed(plan.net_chaos_seed)
            if plan.net_chaos_seed is not None else None
        )
        worker = Worker(
            host="127.0.0.1",
            port=port,
            name=plan.name or f"hw{index}",
            net_chaos=net_chaos,
            cell_chaos=plan.cell_chaos,
            die_after=plan.die_after,
            hard_exit=False,
        )
        built.append(worker)

        def body(i: int = index, w: Worker = worker) -> None:
            codes[i] = w.run()

        thread = threading.Thread(
            target=body, name=f"dist-harness-w{index}", daemon=True
        )
        threads.append(thread)
    for thread in threads:
        thread.start()
    summary = coordinator.run(timeout=deadline_s)
    for thread in threads:
        thread.join(timeout=5.0)
    return DistOutcome(
        summary=summary,
        worker_codes=tuple(codes),
        workers=tuple(built),
        cache_dir=cache_dir,
        fingerprint=coordinator.fingerprint,
        spec=spec,
    )


def solo_records(
    spec: CampaignSpec, cache_dir: Optional[str] = None
) -> list:
    """Reference records: the same campaign run solo, as plain dicts.

    With ``cache_dir`` pointing at a dist run's cache, every cell is a
    warm hit and this *assembles* the campaign from distributed results;
    with ``None`` it executes fresh.  Either way the return value is a
    list of JSON-safe record documents, directly comparable across runs
    -- equality here is the bit-identity claim.
    """
    from repro.core.melody import Melody
    from repro.runtime.cache import RunCache
    from repro.runtime.executor import CampaignEngine
    from repro.runtime.serialize import run_result_to_dict

    plan = spec.load_fault_plan()
    if plan is not None:
        from repro.faults import fault_injection

        scope = fault_injection(plan)
    else:
        from contextlib import nullcontext

        scope = nullcontext()
    with scope:
        campaign = spec.build_campaign()
        engine = CampaignEngine(cache=RunCache(cache_dir))
        result = Melody(engine=engine).run(campaign)
        records = []
        for record in result.records:
            records.append({
                "workload": record.workload,
                "target": record.target,
                "slowdown_pct": record.slowdown_pct,
                "baseline": run_result_to_dict(record.baseline),
                "run": run_result_to_dict(record.run),
            })
        return records


def doomed_key(spec: CampaignSpec, index: int = 0) -> str:
    """The run key of the ``index``-th grid cell (for doomed-cell chaos)."""
    from repro.dist.coordinator import campaign_units
    from repro.runtime.checkpoint import campaign_fingerprint

    campaign = spec.build_campaign()
    units = campaign_units(campaign, campaign_fingerprint(campaign))
    grid = [u for u in units if u.kind == "grid"]
    return grid[index].key
