"""A fault-injecting transport: network chaos applied at the frame layer.

:class:`ChaosTransport` is a drop-in :class:`~repro.dist.frames
.FrameTransport` whose *outgoing* path consults a
:class:`~repro.faults.netchaos.NetChaosPolicy` per frame:

* ``dup``     -- the frame ships twice (the receiver's
  :class:`~repro.dist.frames.InOrderChannel` drops the second copy);
* ``reorder`` -- the frame is held back and ships *after* the next one
  (the channel buffers the early frame until the gap fills);
* ``delay``   -- a latency spike before the send;
* ``partial`` -- half the frame ships, a beat passes, then either the
  rest follows (exercising TCP reassembly) or the connection dies with
  the frame truncated on the wire;
* ``drop``    -- the connection dies before the frame ships at all.

Both lethal outcomes surface as :class:`ConnectionError` to the sending
worker, whose reconnect loop treats them exactly like a real link flap.
A held (reordered) frame is flushed on :meth:`close`, preserving the
no-silent-loss invariant for clean shutdowns; an abrupt worker death
with a held frame is indistinguishable from dying a frame earlier,
which the lease machinery already covers.

Chaos lives on the worker side only.  Coordinator replies travel clean,
which keeps the sabotage surface where the interesting recovery logic
is (lease release, reassignment, duplicate commits) without making the
request/reply matching itself probabilistic.
"""

from __future__ import annotations

import socket
import time
from typing import Optional

from repro.dist.frames import FrameTransport
from repro.faults.netchaos import NetChaosPolicy

PARTIAL_STALL_S = 0.01
"""Pause between the two halves of a partial write."""


class ChaosTransport(FrameTransport):
    """A ``FrameTransport`` whose sends pass through a chaos policy."""

    def __init__(
        self,
        sock: socket.socket,
        policy: NetChaosPolicy,
        stream: str,
        sleep=time.sleep,
    ):
        super().__init__(sock)
        self._policy = policy
        self._stream = stream
        self._sleep = sleep
        self._frame_index = 0
        self._held: Optional[bytes] = None
        self.actions_taken = {name: 0 for name in
                              ("drop", "dup", "reorder", "delay",
                               "partial", "none")}

    def _sever(self, reason: str) -> None:
        """Kill the connection and surface it to the caller."""
        self.close()
        raise ConnectionResetError(f"net chaos: {reason}")

    def _ship(self, data: bytes, seq: int) -> None:
        self._frame_index += 1
        index = self._frame_index
        action = self._policy.action(self._stream, index)
        self.actions_taken[action] += 1
        held, self._held = self._held, None
        if action == "drop":
            self._sever(f"connection dropped before frame {index}")
        if action == "delay":
            self._sleep(self._policy.delay_s)
        if action == "reorder":
            # Hold this frame; it ships right after the next one (or on
            # close).  Anything already held ships now -- at most one
            # frame is ever in flight backwards.
            self._held = data
            if held is not None:
                self._sock.sendall(held)
            return
        if action == "partial":
            half = max(1, len(data) // 2)
            self._sock.sendall(data[:half])
            self._sleep(PARTIAL_STALL_S)
            if not self._policy.partial_completes(self._stream, index):
                self._sever(f"connection died mid-frame {index}")
            self._sock.sendall(data[half:])
        else:
            self._sock.sendall(data)
        if action == "dup":
            self._sock.sendall(data)
        if held is not None:
            self._sock.sendall(held)

    def close(self) -> None:
        """Flush any held reordered frame, then close: no silent loss."""
        held, self._held = self._held, None
        if held is not None:
            try:
                self._sock.sendall(held)
            except OSError:
                pass
        super().close()
