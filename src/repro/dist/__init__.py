"""repro.dist: the fault-tolerant multi-host campaign fabric.

One coordinator (:mod:`repro.dist.coordinator`) owns one campaign,
partitioned into cell-granular work units (the same partition tokens
``--shard`` hashes) and handed to any number of workers
(:mod:`repro.dist.worker`) over a length-prefixed JSON frame protocol
(:mod:`repro.dist.frames`) under **time-bounded leases**
(:mod:`repro.dist.lease`).  The design center is a hostile fleet:

* workers may die, hang, disconnect, or reconnect at any point -- lease
  expiry and connection-loss release recover every unit, bounded
  retries with seeded backoff reassign it, and a unit that fails its
  whole budget quarantines into the same ``FailedCell`` records the
  solo engine writes (graceful degradation, never a wedged campaign);
* the network may drop, duplicate, reorder, delay, or truncate frames
  -- the seeded chaos transport (:mod:`repro.dist.chaos`) injects all
  of it, and sequence-stamped frames plus digest-checked at-most-once
  commit make every schedule converge to the same campaign output;
* the proof obligation is **bit-identity**: a campaign run through the
  coordinator under any chaos schedule produces exports byte-identical
  to a solo run (the ``dist`` diag layer re-proves this on every
  ``repro validate``).

Nothing here leaves the standard library: sockets, threads and JSON.
"""

from repro.dist.chaos import ChaosTransport
from repro.dist.coordinator import (
    Coordinator,
    DistSummary,
    PROTOCOL_VERSION,
    campaign_units,
    result_digest,
)
from repro.dist.frames import (
    FrameError,
    FrameTransport,
    InOrderChannel,
    decode_payload,
    encode_frame,
    encode_payload,
)
from repro.dist.lease import Lease, LeaseTable, WorkUnit
from repro.dist.spec import CampaignSpec, resolve_target
from repro.dist.worker import Worker

__all__ = [
    "CampaignSpec",
    "ChaosTransport",
    "Coordinator",
    "DistSummary",
    "FrameError",
    "FrameTransport",
    "InOrderChannel",
    "Lease",
    "LeaseTable",
    "PROTOCOL_VERSION",
    "WorkUnit",
    "Worker",
    "campaign_units",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "resolve_target",
    "result_digest",
]
