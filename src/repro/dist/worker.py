"""The dist worker: lease, execute, deliver, survive the network.

A :class:`Worker` dials one coordinator, rebuilds the campaign locally
from the :class:`~repro.dist.spec.CampaignSpec` in the welcome frame
(verifying the fingerprint before touching a single cell), and then
loops: fetch a lease, execute the cell through the very same
``_execute_cell_attempt`` path the solo engine uses -- fault plan
installed, host chaos policy honored -- and deliver the result document.

Everything about the worker is built to be killed:

* the connect loop retries with bounded deterministic backoff, so a
  chaos-severed connection (or a coordinator that is not up yet) is a
  delay, not a failure;
* a heartbeat daemon thread shares the transport, so a worker stuck in
  a long cell still proves liveness -- only a worker that *hangs past
  its lease* loses the unit, and only a worker whose process dies goes
  silent;
* results are memoized per unit within the worker, so a reconnect that
  re-leases a unit this worker already finished re-delivers the cached
  document instead of re-running the cell (the coordinator folds the
  duplicate away);
* ``die_after=N`` arms a self-destruct on lease ``N+1`` for chaos
  harnesses: ``hard_exit`` makes it a real ``os._exit`` (SIGKILL
  semantics, exercised by the CI smoke), otherwise the worker abandons
  the socket and returns, which an in-process harness can assert on.

All sends optionally pass through the :class:`~repro.dist.chaos
.ChaosTransport`, making the worker's outbound frames -- results and
heartbeats alike -- the sabotage surface.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Dict, Optional

from repro.dist.chaos import ChaosTransport
from repro.dist.coordinator import PROTOCOL_VERSION, campaign_units
from repro.dist.frames import FrameError, FrameTransport
from repro.dist.spec import CampaignSpec
from repro.errors import MelodyError
from repro.faults.chaos import ChaosPolicy, chaos_injection
from repro.faults.netchaos import NetChaosPolicy
from repro.obs.events import events
from repro.obs.metrics import metrics

EXIT_OK = 0
EXIT_FINGERPRINT_MISMATCH = 2
"""Worker and coordinator built different campaigns: refuse to run."""
EXIT_DISCONNECTED = 3
"""Reconnect budget exhausted without the campaign finishing."""
EXIT_SELF_DESTRUCT = 9
"""The ``die_after`` self-destruct fired (chaos harness mode)."""

RECONNECT_BASE_S = 0.05
RECONNECT_MAX_S = 1.0
WAIT_SLICE_S = 0.5
"""Upper bound on one coordinator-requested wait (keeps polls fresh)."""


def _nothing():
    from contextlib import contextmanager

    @contextmanager
    def scope():
        yield None

    return scope()


class _SelfDestruct(Exception):
    """Raised internally when the die_after budget is consumed."""


class Worker:
    """One dist worker process (or in-process harness thread)."""

    def __init__(
        self,
        host: str,
        port: int,
        name: str = "",
        net_chaos: Optional[NetChaosPolicy] = None,
        cell_chaos: Optional[ChaosPolicy] = None,
        die_after: Optional[int] = None,
        hard_exit: bool = False,
        reconnect_attempts: int = 8,
        connect_timeout_s: float = 5.0,
        sleep=time.sleep,
    ):
        if die_after is not None and die_after < 0:
            raise MelodyError("die_after must be >= 0")
        if reconnect_attempts < 1:
            raise MelodyError("reconnect_attempts must be >= 1")
        self.host = host
        self.port = port
        self.name = name or f"worker-{os.getpid()}"
        self.net_chaos = net_chaos
        self.cell_chaos = cell_chaos
        self.die_after = die_after
        self.hard_exit = hard_exit
        self.reconnect_attempts = reconnect_attempts
        self.connect_timeout_s = connect_timeout_s
        self.sleep = sleep
        # Per-unit result memo: a re-leased unit re-delivers, not re-runs.
        self._results: Dict[str, dict] = {}
        self._leases_taken = 0
        self.units_executed = 0
        self.units_delivered = 0
        # Lazily built from the first welcome frame.
        self._spec: Optional[CampaignSpec] = None
        self._fingerprint = ""
        self._cells: Dict[str, object] = {}
        self._heartbeat_s = 2.0

    # -- top level ---------------------------------------------------------

    def run(self) -> int:
        """Serve the coordinator until done (or undone); returns exit code."""
        failures = 0
        conn_index = 0
        while failures < self.reconnect_attempts:
            conn_index += 1
            try:
                return self._session(conn_index)
            except _SelfDestruct:
                if self.hard_exit:
                    os._exit(EXIT_SELF_DESTRUCT)
                return EXIT_SELF_DESTRUCT
            except (ConnectionError, FrameError, OSError,
                    socket.timeout) as exc:
                failures += 1
                backoff = min(
                    RECONNECT_BASE_S * (2 ** (failures - 1)),
                    RECONNECT_MAX_S,
                )
                events().emit(
                    "dist.worker.reconnect", level="warn",
                    worker=self.name, failures=failures,
                    reason=str(exc)[:200], backoff_s=backoff,
                )
                metrics().counter("dist.worker_reconnects").inc()
                self.sleep(backoff)
            except MelodyError as exc:
                # Fingerprint skew or a coordinator reject: retrying
                # cannot fix a campaign-identity disagreement.
                events().emit(
                    "dist.worker.refused", level="error",
                    worker=self.name, error=str(exc)[:300],
                )
                return EXIT_FINGERPRINT_MISMATCH
        return EXIT_DISCONNECTED

    # -- one connection ----------------------------------------------------

    def _connect(self, conn_index: int) -> FrameTransport:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        if self.net_chaos is not None:
            return ChaosTransport(
                sock, self.net_chaos,
                stream=f"{self.name}/{conn_index}",
                sleep=self.sleep,
            )
        return FrameTransport(sock)

    def _session(self, conn_index: int) -> int:
        """One connection's lifetime; returns an exit code when final."""
        transport = self._connect(conn_index)
        stop_heartbeat = threading.Event()
        try:
            transport.send({
                "type": "hello",
                "name": self.name,
                "proto": PROTOCOL_VERSION,
            })
            welcome = transport.recv(timeout=self.connect_timeout_s)
            if welcome is None:
                raise ConnectionResetError("coordinator hung up on hello")
            if welcome.get("type") == "reject":
                raise MelodyError(
                    f"coordinator rejected worker: "
                    f"{welcome.get('reason', 'unknown')}"
                )
            if welcome.get("type") != "welcome":
                raise FrameError(
                    f"expected welcome, got {welcome.get('type')!r}"
                )
            self._adopt_welcome(welcome)
            heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                args=(transport, stop_heartbeat),
                name=f"{self.name}-heartbeat",
                daemon=True,
            )
            heartbeat.start()
            with (chaos_injection(self.cell_chaos)
                  if self.cell_chaos is not None else _nothing()):
                return self._lease_loop(transport)
        finally:
            stop_heartbeat.set()
            transport.close()

    def _adopt_welcome(self, welcome: dict) -> None:
        """Rebuild the campaign from the spec; refuse on fingerprint skew."""
        self._heartbeat_s = float(welcome.get("heartbeat_s", 2.0))
        fingerprint = str(welcome.get("fingerprint", ""))
        if self._spec is not None:
            # A reconnect: the campaign must not have changed under us.
            if fingerprint != self._fingerprint:
                raise MelodyError(
                    "coordinator changed campaigns mid-run "
                    f"({self._fingerprint[:12]} -> {fingerprint[:12]})"
                )
            return
        spec = CampaignSpec.from_dict(welcome.get("spec") or {})
        plan = spec.load_fault_plan()
        if plan is not None:
            from repro.faults import install_fault_plan

            install_fault_plan(plan)
        from repro.runtime.checkpoint import campaign_fingerprint
        from repro.runtime.executor import Cell

        campaign = spec.build_campaign()
        local = campaign_fingerprint(campaign)
        if local != fingerprint:
            raise _FingerprintMismatch(
                f"campaign fingerprint mismatch: coordinator says "
                f"{fingerprint[:12]}, this worker computes {local[:12]} "
                "(version skew or divergent workload population)"
            )
        self._spec = spec
        self._fingerprint = fingerprint
        baseline_target = (
            campaign.baseline or campaign.platform.local_target()
        )
        targets = {t.name: t for t in campaign.targets}
        targets[baseline_target.name] = baseline_target
        workloads = {w.name: w for w in campaign.workloads}
        for unit in campaign_units(campaign, fingerprint):
            self._cells[unit.unit_id] = Cell(
                workloads[unit.workload],
                campaign.platform,
                targets[unit.target],
                campaign.config,
            )
        events().emit(
            "dist.worker.adopted", worker=self.name,
            fingerprint=fingerprint[:12], units=len(self._cells),
        )

    def _heartbeat_loop(
        self, transport: FrameTransport, stop: threading.Event
    ) -> None:
        while not stop.wait(self._heartbeat_s):
            try:
                transport.send({"type": "heartbeat"})
            except (OSError, FrameError, ConnectionError):
                return

    # -- the fetch/execute loop --------------------------------------------

    def _lease_loop(self, transport: FrameTransport) -> int:
        while True:
            transport.send({"type": "fetch"})
            reply = self._recv_reply(transport)
            kind = reply.get("type")
            if kind == "done":
                transport.send({"type": "goodbye"})
                return EXIT_OK
            if kind == "wait":
                self.sleep(min(
                    float(reply.get("for_s", WAIT_SLICE_S)), WAIT_SLICE_S
                ))
                continue
            if kind != "lease":
                raise FrameError(f"expected lease/wait/done, got {kind!r}")
            self._leases_taken += 1
            if self.die_after is not None \
                    and self._leases_taken > self.die_after:
                # Abrupt death mid-lease: no goodbye, no result, the
                # socket just goes dark (close happens in _session's
                # finally for the in-process flavor; hard_exit skips
                # even that).
                if self.hard_exit:
                    os._exit(EXIT_SELF_DESTRUCT)
                raise _SelfDestruct()
            self._serve_lease(transport, reply)

    def _recv_reply(self, transport: FrameTransport) -> dict:
        """The next coordinator reply (replies travel clean and in order)."""
        reply = transport.recv(timeout=max(
            10.0, self._heartbeat_s * 5.0
        ))
        if reply is None:
            raise ConnectionResetError("coordinator hung up")
        return reply

    def _serve_lease(self, transport: FrameTransport, lease: dict) -> None:
        unit = lease.get("unit") or {}
        unit_id = str(unit.get("unit_id", ""))
        lease_id = str(lease.get("lease_id", ""))
        attempt = int(lease.get("attempt", 1))
        cell = self._cells.get(unit_id)
        if cell is None:
            transport.send({
                "type": "result", "unit_id": unit_id,
                "lease_id": lease_id, "status": "error",
                "reason": "error",
                "message": f"worker has no cell for unit {unit_id!r}",
            })
            return
        doc = self._results.get(unit_id)
        elapsed = 0.0
        if doc is None:
            start = time.perf_counter()
            try:
                doc = self._execute(cell, attempt)
            except Exception as exc:
                metrics().counter("dist.worker_cell_errors").inc()
                events().emit(
                    "dist.worker.cell_error", level="warn",
                    worker=self.name, unit=unit_id[-40:],
                    attempt=attempt, error=str(exc)[:200],
                )
                transport.send({
                    "type": "result", "unit_id": unit_id,
                    "lease_id": lease_id, "status": "error",
                    "reason": "error",
                    "message": f"{type(exc).__name__}: {exc}",
                })
                return
            elapsed = time.perf_counter() - start
            self.units_executed += 1
            self._results[unit_id] = doc
        transport.send({
            "type": "result", "unit_id": unit_id,
            "lease_id": lease_id, "status": "ok",
            "doc": doc, "elapsed_s": round(float(elapsed), 6),
        })
        self.units_delivered += 1

    def _execute(self, cell, attempt: int) -> dict:
        from repro.runtime.executor import _execute_cell_attempt
        from repro.runtime.serialize import run_result_to_dict

        result = _execute_cell_attempt(cell, attempt)
        return run_result_to_dict(result)


class _FingerprintMismatch(MelodyError):
    """Worker and coordinator disagree about the campaign's identity."""
