"""The fault-tolerant campaign coordinator (the ``repro coordinate`` brain).

One coordinator owns one campaign.  It partitions the campaign into
:class:`~repro.dist.lease.WorkUnit` cells (the same partition tokens
``repro.runtime.shard`` hashes for ``--shard i/N``), listens on a TCP
port, and hands units to whatever workers connect under time-bounded
leases.  Everything a flaky fleet can do is survivable by construction:

* a worker that stops heartbeating gets its socket closed, which
  releases its leases (attempt charged) for reassignment to live peers;
* a worker that hangs mid-cell loses the lease at its deadline;
* a worker that errors reports the failure, and the unit retries behind
  the seeded :class:`~repro.runtime.executor.RetryPolicy` backoff until
  its budget quarantines it into a PR 5 ``FailedCell`` record -- the
  campaign always completes, degraded at worst, never wedged;
* duplicate and late deliveries fold into the at-most-once commit of
  :class:`~repro.dist.lease.LeaseTable` (digest-checked), so network
  chaos can waste work but never change what lands in the cache.

Results commit into the shared :class:`~repro.runtime.cache.RunCache`
via the bit-faithful JSON codec, the final checkpoint is written through
the PR 9 checkpoint path, and committed runs promote into the columnar
store -- after which a plain ``repro campaign --resume`` pass over the
same cache dir assembles exports byte-identical to a solo run.  That
equivalence is the contract the ``dist`` diag layer enforces.

Threading model: an accept thread spawns one thread per worker
connection; a monitor thread drives lease expiry and liveness; the
:class:`~repro.dist.lease.LeaseTable` and connection registry are
guarded by one lock.  The table's clock is injectable for tests.
"""

from __future__ import annotations

import hashlib
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dist.frames import (
    FrameError,
    FrameTransport,
    InOrderChannel,
    encode_payload,
)
from repro.dist.lease import Lease, LeaseTable, WorkUnit
from repro.dist.spec import CampaignSpec
from repro.errors import MelodyError
from repro.obs.events import events
from repro.obs.metrics import metrics
from repro.runtime.executor import FailedCell, RetryPolicy

PROTOCOL_VERSION = 1
"""Bump on any incompatible frame/message change."""

DEFAULT_LEASE_S = 30.0
DEFAULT_HEARTBEAT_S = 2.0
LIVENESS_MULTIPLE = 3.0
"""Missed-heartbeat budget: silence beyond this many intervals is death."""

_TICK_S = 0.05
"""Monitor cadence; also bounds how stale expiry checks can be."""


def campaign_units(campaign, fingerprint: str) -> List[WorkUnit]:
    """Flatten one campaign into leasable units, baselines first.

    Exactly the cells :func:`repro.core.melody.campaign_cells` plans for
    a solo run (capacity skips never become units), identified by the
    shard-partition tokens, so unit identity is stable across
    coordinator restarts and agrees with ``--shard`` runs of the same
    campaign.
    """
    from repro.core.melody import campaign_cells
    from repro.runtime.cache import run_key
    from repro.runtime.shard import baseline_token, grid_token

    base_workloads, grid, _ = campaign_cells(campaign)
    baseline_target = campaign.baseline or campaign.platform.local_target()
    units: List[WorkUnit] = []
    for workload in base_workloads:
        units.append(WorkUnit(
            unit_id=baseline_token(fingerprint, workload.name),
            kind="baseline",
            workload=workload.name,
            target=baseline_target.name,
            key=run_key(workload, campaign.platform, baseline_target,
                        campaign.config),
            platform=campaign.platform.name,
        ))
    for workload, target in grid:
        units.append(WorkUnit(
            unit_id=grid_token(fingerprint, workload.name, target.name),
            kind="grid",
            workload=workload.name,
            target=target.name,
            key=run_key(workload, campaign.platform, target,
                        campaign.config),
            platform=campaign.platform.name,
        ))
    return units


def result_digest(doc: dict) -> str:
    """Digest of one result document's canonical bytes.

    Both sides of a duplicate delivery re-encode the *decoded* document,
    so framing differences can never fake a conflict.
    """
    return hashlib.sha256(encode_payload(doc)).hexdigest()


@dataclass
class DistSummary:
    """What one coordinated campaign run amounted to."""

    fingerprint: str
    units: int
    committed: int
    quarantined: List[FailedCell]
    duplicates: int
    late_commits: int
    conflicts: List[Dict[str, str]]
    expired: int
    released: int
    workers_seen: int
    complete: bool
    counters: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        """Human summary for the ``repro coordinate`` epilogue."""
        lines = [
            f"campaign {self.fingerprint[:12]}: "
            f"{self.committed}/{self.units} units committed, "
            f"{len(self.quarantined)} quarantined "
            f"({self.workers_seen} worker connection(s))",
            f"  leases: {self.counters.get('granted', 0)} granted, "
            f"{self.expired} expired, {self.released} released on "
            f"disconnect",
            f"  commits: {self.duplicates} duplicate(s), "
            f"{self.late_commits} late, {len(self.conflicts)} "
            f"conflict(s)",
        ]
        if not self.complete:
            lines.append("  INCOMPLETE: deadline elapsed before every "
                         "unit settled")
        return "\n".join(lines)


class _Connection:
    """Per-worker-connection state the coordinator tracks."""

    __slots__ = ("transport", "name", "peer", "last_seen", "goodbye")

    def __init__(self, transport: FrameTransport, peer: str,
                 now: float):
        self.transport = transport
        self.name = ""
        self.peer = peer
        self.last_seen = now
        self.goodbye = False

    @property
    def worker_id(self) -> str:
        return self.name or self.peer


class Coordinator:
    """Serve one campaign's units to networked workers until done."""

    def __init__(
        self,
        spec: CampaignSpec,
        cache_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_s: float = DEFAULT_LEASE_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        policy: Optional[RetryPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not cache_dir:
            raise MelodyError(
                "the coordinator needs a cache dir: results commit into "
                "the shared run cache"
            )
        if heartbeat_s <= 0:
            raise MelodyError("heartbeat_s must be positive")
        self.spec = spec
        self.cache_dir = cache_dir
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.heartbeat_s = heartbeat_s
        self.clock = clock
        self._plan = spec.load_fault_plan()
        with self._plan_installed():
            campaign = spec.build_campaign()
            from repro.runtime.checkpoint import campaign_fingerprint

            self.campaign = campaign
            self.fingerprint = campaign_fingerprint(campaign)
            units = campaign_units(campaign, self.fingerprint)
        self.table = LeaseTable(
            units,
            policy=policy,
            lease_s=lease_s,
            clock=clock,
        )
        self._lock = threading.Lock()
        self._connections: Dict[int, _Connection] = {}
        self._conn_counter = 0
        self._workers_seen = 0
        self._threads: List[threading.Thread] = []
        self._listener: Optional[socket.socket] = None
        self._stopping = threading.Event()
        self._done = threading.Event()
        # Eager: connection threads share this one instance, so every
        # put lands in the memory tier promote_store later reads (a
        # lazily-raced second instance would silently lose runs).
        from repro.runtime.cache import RunCache

        self._cache_instance = RunCache(cache_dir)
        if self.table.done:  # degenerate but legal: zero-unit campaign
            self._done.set()

    # -- lifecycle ---------------------------------------------------------

    def _plan_installed(self):
        """Context manager scoping the spec's fault plan installation."""
        from contextlib import contextmanager

        from repro.faults import fault_injection

        @contextmanager
        def nothing():
            yield None

        return fault_injection(self._plan) if self._plan is not None \
            else nothing()

    def start(self) -> int:
        """Bind, listen, spin up accept + monitor threads; returns port."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        for target, name in (
            (self._accept_loop, "dist-accept"),
            (self._monitor_loop, "dist-monitor"),
        ):
            thread = threading.Thread(
                target=target, name=name, daemon=True
            )
            thread.start()
            self._threads.append(thread)
        events().emit(
            "dist.coordinator.start",
            fingerprint=self.fingerprint, units=len(self.table),
            host=self.host, port=self.port,
        )
        return self.port

    def run(
        self,
        timeout: Optional[float] = None,
        linger_s: float = 5.0,
    ) -> DistSummary:
        """Block until every unit settles (or ``timeout``); finalize.

        After completion the coordinator lingers up to ``linger_s`` so
        connected workers can fetch once more, hear ``done``, and exit
        cleanly instead of seeing a reset -- a hung worker still bounds
        the wait.
        """
        if self.port is None:
            self.start()
        complete = self._done.wait(timeout)
        if complete:
            deadline = self.clock() + linger_s
            while self.clock() < deadline:
                with self._lock:
                    drained = not self._connections
                if drained:
                    break
                self._stopping.wait(_TICK_S)
        self.stop()
        return self._finalize(complete)

    def stop(self) -> None:
        """Close the listener and every connection; join the threads."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections.values())
            threads = list(self._threads)
        for conn in connections:
            conn.transport.close()
        for thread in threads:
            thread.join(timeout=2.0)

    # -- the accept / connection / monitor threads -------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            peer = f"{addr[0]}:{addr[1]}"
            conn = _Connection(FrameTransport(sock), peer, self.clock())
            with self._lock:
                # stop() snapshots _connections/_threads under this
                # lock after setting _stopping: re-check here so a
                # connection racing shutdown is turned away instead of
                # registered where stop() can no longer see it.
                if self._stopping.is_set():
                    conn.transport.close()
                    continue
                self._conn_counter += 1
                conn_id = self._conn_counter
                self._connections[conn_id] = conn
                self._workers_seen += 1
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn_id, conn),
                    name=f"dist-conn-{conn_id}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def _serve_connection(self, conn_id: int, conn: _Connection) -> None:
        channel = InOrderChannel()
        registry = metrics()
        try:
            while not self._stopping.is_set():
                try:
                    frame = conn.transport.recv(timeout=0.25)
                except socket.timeout:
                    continue
                except (FrameError, OSError) as exc:
                    events().emit(
                        "dist.conn.error", level="warn",
                        worker=conn.worker_id, reason=str(exc),
                    )
                    registry.counter("dist.frame_errors").inc()
                    return
                if frame is None:
                    return
                conn.last_seen = self.clock()
                try:
                    ready = channel.feed(frame)
                except FrameError as exc:
                    events().emit(
                        "dist.conn.error", level="warn",
                        worker=conn.worker_id, reason=str(exc),
                    )
                    registry.counter("dist.frame_errors").inc()
                    return
                for message in ready:
                    try:
                        keep = self._handle(conn, message)
                    except Exception as exc:
                        # Fail loudly, not silently: closing the
                        # connection (the finally below) releases the
                        # worker's leases so its units retry elsewhere.
                        events().emit(
                            "dist.conn.error", level="error",
                            worker=conn.worker_id,
                            reason=f"handler failure: {exc}",
                        )
                        registry.counter("dist.handler_errors").inc()
                        return
                    if not keep:
                        return
        finally:
            conn.transport.close()
            with self._lock:
                self._connections.pop(conn_id, None)
            self._release(conn)
            registry.counter("dist.duplicate_frames").inc(
                channel.duplicates
            )

    def _monitor_loop(self) -> None:
        """Reap expired leases; close connections that stopped talking."""
        registry = metrics()
        silence_budget = self.heartbeat_s * LIVENESS_MULTIPLE
        while not self._stopping.is_set():
            now = self.clock()
            with self._lock:
                reaped = self.table.expire()
                silent = [
                    conn for conn in self._connections.values()
                    if now - conn.last_seen > silence_budget
                ]
                done = self.table.done
            for lease in reaped:
                registry.counter("dist.leases_expired").inc()
                registry.counter("dist.leases_reassignable").inc()
                events().emit(
                    "dist.lease.expired", level="warn",
                    unit=lease.unit_id[-40:], worker=lease.worker,
                    attempt=lease.attempt,
                )
            for conn in silent:
                events().emit(
                    "dist.worker.lost", level="warn",
                    worker=conn.worker_id,
                    silent_s=round(now - conn.last_seen, 3),
                )
                registry.counter("dist.workers_lost").inc()
                conn.transport.close()  # recv in its thread sees EOF
            if done:
                self._done.set()
                return
            self._stopping.wait(_TICK_S)

    # -- message handling --------------------------------------------------

    def _handle(self, conn: _Connection, message: dict) -> bool:
        """Dispatch one in-order message; False closes the connection."""
        kind = message.get("type")
        seq = message.get("seq")
        if kind == "hello":
            return self._handle_hello(conn, message, seq)
        if kind == "heartbeat":
            metrics().counter("dist.heartbeats").inc()
            return True
        if kind == "fetch":
            return self._handle_fetch(conn, seq)
        if kind == "result":
            return self._handle_result(conn, message)
        if kind == "goodbye":
            conn.goodbye = True
            return False
        events().emit(
            "dist.protocol.error", level="warn",
            worker=conn.worker_id, kind=str(kind),
        )
        return False

    def _handle_hello(
        self, conn: _Connection, message: dict, seq
    ) -> bool:
        proto = message.get("proto")
        if proto != PROTOCOL_VERSION:
            conn.transport.send({
                "type": "reject", "re": seq,
                "reason": f"protocol {proto!r} unsupported "
                          f"(coordinator speaks {PROTOCOL_VERSION})",
            })
            return False
        conn.name = str(message.get("name", "")) or conn.peer
        metrics().counter("dist.workers_joined").inc()
        events().emit(
            "dist.worker.join", worker=conn.worker_id, peer=conn.peer,
        )
        conn.transport.send({
            "type": "welcome",
            "re": seq,
            "proto": PROTOCOL_VERSION,
            "fingerprint": self.fingerprint,
            "spec": self.spec.to_dict(),
            "lease_s": self.table.lease_s,
            "heartbeat_s": self.heartbeat_s,
        })
        return True

    def _handle_fetch(self, conn: _Connection, seq) -> bool:
        with self._lock:
            if self.table.done:
                reply: dict = {"type": "done", "re": seq}
            else:
                lease = self.table.acquire(conn.worker_id)
                if lease is None:
                    wait = self.table.next_ready_s()
                    if wait is None:
                        # Everything is leased out; poll for reassignment.
                        wait = min(1.0, self.table.lease_s / 4.0)
                    reply = {
                        "type": "wait", "re": seq,
                        "for_s": round(max(wait, _TICK_S), 4),
                    }
                else:
                    unit = self.table.unit(lease.unit_id)
                    reply = {
                        "type": "lease",
                        "re": seq,
                        "lease_id": lease.lease_id,
                        "attempt": lease.attempt,
                        "lease_s": self.table.lease_s,
                        "unit": unit.descriptor(),
                    }
        if reply["type"] == "lease":
            metrics().counter("dist.leases_granted").inc()
            events().emit(
                "dist.lease.grant",
                worker=conn.worker_id, lease=reply["lease_id"],
                unit=reply["unit"]["workload"] + "@"
                + reply["unit"]["target"],
                attempt=reply["attempt"],
            )
        conn.transport.send(reply)
        return True

    def _handle_result(self, conn: _Connection, message: dict) -> bool:
        unit_id = str(message.get("unit_id", ""))
        lease_id = str(message.get("lease_id", ""))
        status = message.get("status")
        registry = metrics()
        if status != "ok":
            reason = str(message.get("reason", "error"))
            message_text = str(message.get("message", ""))
            with self._lock:
                charged = self.table.fail(
                    unit_id, lease_id, conn.worker_id,
                    reason if reason in ("error", "crash", "timeout")
                    else "error",
                    message_text,
                )
            if charged:
                registry.counter("dist.unit_failures").inc()
                events().emit(
                    "dist.unit.failed", level="warn",
                    worker=conn.worker_id, unit=unit_id[-40:],
                    reason=reason, message=message_text[:200],
                )
            return True
        doc = message.get("doc")
        if not isinstance(doc, dict):
            events().emit(
                "dist.protocol.error", level="warn",
                worker=conn.worker_id, kind="result-without-doc",
            )
            return False
        # Deserialize BEFORE committing: commit is terminal in the lease
        # table, so accepting a doc the codec then rejects would leave a
        # unit "completed" with no result in the cache.  A doc that does
        # not deserialize is a broken worker delivery -- charge it like
        # any other worker error report so the unit retries elsewhere.
        from repro.runtime.serialize import run_result_from_dict

        try:
            result = run_result_from_dict(doc)
        except Exception as exc:
            with self._lock:
                charged = self.table.fail(
                    unit_id, lease_id, conn.worker_id, "error",
                    f"undeserializable result document: {exc}",
                )
            registry.counter("dist.result_decode_errors").inc()
            events().emit(
                "dist.protocol.error", level="warn",
                worker=conn.worker_id, kind="result-doc-invalid",
                unit=unit_id[-40:], charged=charged,
            )
            return True
        digest = result_digest(doc)
        elapsed = message.get("elapsed_s")
        with self._lock:
            verdict = self.table.commit(
                unit_id, lease_id, conn.worker_id, digest
            )
            done = self.table.done
        if verdict in ("committed", "late", "resurrected"):
            self._cache().put(self.table.unit(unit_id).key, result)
            registry.counter("dist.units_committed").inc()
            if isinstance(elapsed, (int, float)):
                registry.histogram("dist.unit_seconds").observe(
                    float(elapsed)
                )
            if verdict != "committed":
                registry.counter("dist.late_commits").inc()
        elif verdict == "duplicate":
            registry.counter("dist.duplicate_commits").inc()
        elif verdict == "conflict":
            registry.counter("dist.commit_conflicts").inc()
            events().emit(
                "dist.commit.conflict", level="error",
                worker=conn.worker_id, unit=unit_id[-40:],
            )
        events().emit(
            "dist.commit", worker=conn.worker_id,
            unit=unit_id[-40:], verdict=verdict,
        )
        if done:
            self._done.set()
        return True

    def _cache(self):
        return self._cache_instance

    def _release(self, conn: _Connection) -> None:
        """Settle a departed connection's leases (crash unless goodbye)."""
        with self._lock:
            released = self.table.release_worker(conn.worker_id)
            done = self.table.done
        registry = metrics()
        for lease in released:
            registry.counter("dist.leases_released").inc()
            events().emit(
                "dist.lease.released", level="warn",
                worker=conn.worker_id, unit=lease.unit_id[-40:],
                attempt=lease.attempt,
            )
        if not conn.goodbye and conn.name:
            events().emit(
                "dist.worker.disconnect", worker=conn.worker_id,
                leases_released=len(released),
            )
        if done:
            self._done.set()

    # -- finalization ------------------------------------------------------

    def _finalize(self, complete: bool) -> DistSummary:
        """Checkpoint, promote, and summarize the finished campaign."""
        table = self.table
        with self._plan_installed():
            quarantined = table.quarantined()
            if complete:
                from repro.runtime.checkpoint import Checkpointer

                checkpointer = Checkpointer(
                    cache_dir=self.cache_dir,
                    fingerprint=self.fingerprint,
                    name=self.campaign.name,
                    total_cells=len(table),
                    completed=len(table.committed_keys()),
                )
                checkpointer.finalize(quarantined)
                promoted = self._cache().promote_store(
                    self.fingerprint, keys=table.committed_keys()
                )
                metrics().counter("dist.store_promoted").inc(promoted)
        summary = DistSummary(
            fingerprint=self.fingerprint,
            units=len(table),
            committed=len(table.committed_keys()),
            quarantined=quarantined,
            duplicates=table.counters["duplicates"],
            late_commits=table.counters["late_commits"],
            conflicts=list(table.conflicts),
            expired=table.counters["expired"],
            released=table.counters["released"],
            workers_seen=self._workers_seen,
            complete=complete,
            counters=dict(table.counters),
        )
        events().emit(
            "dist.coordinator.stop",
            fingerprint=self.fingerprint,
            committed=summary.committed,
            quarantined=len(summary.quarantined),
            conflicts=len(summary.conflicts),
            complete=complete,
        )
        return summary
