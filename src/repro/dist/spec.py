"""The wire-serializable campaign description workers rebuild locally.

A dist worker never receives code or pickled objects -- it receives a
:class:`CampaignSpec`: the same handful of CLI spellings (``--platform``,
``--targets``, ``--suite``, ``--sample``, an optional fault-plan
document) that ``repro campaign`` itself resolves.  Worker and
coordinator each build the :class:`~repro.core.melody.Campaign` from the
spec independently and compare :func:`~repro.runtime.checkpoint
.campaign_fingerprint` digests; a mismatch (version skew, divergent
workload population, different fault plan) is detected before a single
cell runs, because a worker computing different cell keys than its
coordinator would silently poison the shared cache.

:func:`resolve_target` is the single source of truth for target
spellings -- the CLI's ``--targets`` flag resolves through it too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import MelodyError

SPEC_VERSION = 1
"""Bump on any incompatible change to the spec document."""


def resolve_target(name: str, platform):
    """Resolve one CLI target spelling against a platform."""
    from repro.hw.cxl import CXL_DEVICES, device_by_name
    from repro.hw.topology import remote_view

    if name == "local":
        return platform.local_target()
    if name == "numa":
        return platform.numa_target()
    if name.endswith("+numa"):
        return remote_view(device_by_name(name[: -len("+numa")].upper()))
    if name.upper() in CXL_DEVICES:
        return device_by_name(name.upper())
    raise MelodyError(
        f"unknown target {name!r}; choose local, numa, cxl-a..cxl-d, "
        "or cxl-X+numa"
    )


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to rebuild one campaign, as plain data."""

    platform: str = "EMR2S"
    targets: Tuple[str, ...] = ("numa", "cxl-a")
    suite: Optional[str] = None
    sample: int = 1
    name: str = "cli"
    fault_plan: Optional[dict] = field(default=None, hash=False)

    def __post_init__(self) -> None:
        if self.sample < 1:
            raise MelodyError(f"sample must be >= 1, got {self.sample}")
        if not self.targets:
            raise MelodyError("spec needs at least one target")

    def to_dict(self) -> dict:
        """The wire form (welcome frames, saved coordinator state)."""
        return {
            "version": SPEC_VERSION,
            "platform": self.platform,
            "targets": list(self.targets),
            "suite": self.suite,
            "sample": self.sample,
            "name": self.name,
            "fault_plan": self.fault_plan,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Inverse of :meth:`to_dict` (version-checked)."""
        version = data.get("version")
        if version != SPEC_VERSION:
            raise MelodyError(
                f"unsupported campaign spec version {version!r} "
                f"(this build speaks {SPEC_VERSION})"
            )
        fault_plan = data.get("fault_plan")
        if fault_plan is not None and not isinstance(fault_plan, dict):
            raise MelodyError("spec fault_plan must be an object or null")
        return cls(
            platform=str(data.get("platform", "EMR2S")),
            targets=tuple(str(t) for t in data.get("targets", ())),
            suite=(
                str(data["suite"]) if data.get("suite") is not None
                else None
            ),
            sample=int(data.get("sample", 1)),
            name=str(data.get("name", "cli")),
            fault_plan=fault_plan,
        )

    @classmethod
    def from_args(cls, args) -> "CampaignSpec":
        """Build a spec from ``repro campaign``-style parsed flags."""
        fault_plan = None
        path = getattr(args, "fault_plan", None)
        if path:
            from repro.faults import load_plan

            fault_plan = load_plan(path).to_dict()
        return cls(
            platform=args.platform,
            targets=tuple(args.targets),
            suite=args.suite,
            sample=args.sample,
            fault_plan=fault_plan,
        )

    def load_fault_plan(self):
        """The spec's fault plan as a live object (``None`` when absent)."""
        if self.fault_plan is None:
            return None
        from repro.faults import FaultPlan

        return FaultPlan.from_dict(self.fault_plan)

    def build_campaign(self):
        """Materialize the campaign exactly as ``repro campaign`` would.

        Caller is responsible for having the spec's fault plan installed
        (see :func:`~repro.faults.install_fault_plan`) before computing
        fingerprints or cell keys from the returned campaign.
        """
        from repro.core.melody import Campaign
        from repro.hw.platform import platform_by_name
        from repro.workloads import all_workloads, workloads_by_suite

        platform = platform_by_name(self.platform)
        workloads = (
            workloads_by_suite(self.suite) if self.suite
            else all_workloads()
        )
        if self.sample > 1:
            workloads = workloads[:: self.sample]
        targets = tuple(
            resolve_target(t, platform) for t in self.targets
        )
        return Campaign(
            name=self.name,
            platform=platform,
            targets=targets,
            workloads=tuple(workloads),
        )
