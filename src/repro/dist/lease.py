"""Time-bounded work leases with at-most-once commit.

:class:`LeaseTable` is the coordinator's brain, kept deliberately pure:
no sockets, no threads, no real clock -- callers inject ``clock`` (the
coordinator passes ``time.monotonic``; tests pass a fake) and serialize
access themselves.  Every unit of campaign work moves through a small
state machine:

```
pending --acquire--> leased --commit--> committed       (terminal)
   ^                   |
   |   expire / fail / release (attempt charged,
   |   seeded backoff gates the retry)
   +-------------------+
   |
   +--attempts exhausted--> quarantined                 (terminal*)
```

(*) a late *successful* delivery resurrects a quarantined unit: the
work demonstrably finished, so graceful degradation yields to the
result.  Quarantine records are :class:`~repro.runtime.executor
.FailedCell` documents -- the same records PR 5's resilient engine
writes -- so the checkpoint/resume path downstream needs no new cases.

**Attempt accounting.**  An attempt is charged when the lease is
*granted*, because every way a granted lease can end badly -- worker
error report, lease expiry (covers hangs and silent death), connection
loss -- means the attempt really ran (or wedged).  Bounding attempts at
grant time is what makes a deterministic crash-on-cell loop terminate:
a worker that dies on a unit every time consumes the unit's budget and
the unit quarantines, instead of the campaign ping-ponging forever.

**At-most-once commit.**  The first result delivered for a unit wins
and is committed exactly once; every later delivery is compared by
digest of the canonical result document.  Identical digest -- a
duplicate (chaos redelivery, a reassigned unit finishing twice) -- is
counted and dropped.  Divergent digest is a **conflict**: two workers
disagreeing about deterministic work means one of them is broken, and
the table records it loudly instead of letting either result silently
win the cache.

``expiry`` uses ``now >= deadline`` -- a lease is dead *exactly at* its
deadline, so a clock that lands on the boundary reassigns rather than
trusting a worker that is provably out of time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import MelodyError
from repro.runtime.executor import FailedCell, RetryPolicy

UNIT_KINDS = ("baseline", "grid")


@dataclass(frozen=True)
class WorkUnit:
    """One leasable unit: a single campaign cell, by identity."""

    unit_id: str
    """Stable partition token (see :mod:`repro.runtime.shard`)."""
    kind: str
    """``baseline`` or ``grid``."""
    workload: str
    target: str
    key: str
    """The cell's content-addressed run key (cache identity)."""
    platform: str = ""
    """Display name for quarantine records (not part of identity)."""

    def __post_init__(self) -> None:
        if self.kind not in UNIT_KINDS:
            raise MelodyError(
                f"unit kind must be one of {UNIT_KINDS}: {self.kind!r}"
            )

    def descriptor(self) -> Dict[str, object]:
        """The wire form workers receive inside a lease frame."""
        return {
            "unit_id": self.unit_id,
            "kind": self.kind,
            "workload": self.workload,
            "target": self.target,
        }


@dataclass(frozen=True)
class Lease:
    """One granted lease: a unit, a worker, an attempt, a deadline."""

    lease_id: str
    unit_id: str
    worker: str
    attempt: int
    granted_at: float
    deadline: float


class _UnitState:
    """Mutable per-unit bookkeeping (internal to the table)."""

    __slots__ = (
        "unit", "status", "attempts", "not_before", "lease", "digest",
        "failure",
    )

    def __init__(self, unit: WorkUnit):
        self.unit = unit
        self.status = "pending"
        self.attempts = 0
        self.not_before = 0.0
        self.lease: Optional[Lease] = None
        self.digest: Optional[str] = None
        self.failure: Optional[FailedCell] = None


class LeaseTable:
    """The pure lease state machine over one campaign's work units."""

    def __init__(
        self,
        units: Sequence[WorkUnit],
        policy: Optional[RetryPolicy] = None,
        lease_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if lease_s <= 0:
            raise MelodyError(f"lease_s must be positive, got {lease_s}")
        seen: Dict[str, WorkUnit] = {}
        for unit in units:
            if unit.unit_id in seen:
                raise MelodyError(f"duplicate unit id {unit.unit_id!r}")
            seen[unit.unit_id] = unit
        self._units: Dict[str, _UnitState] = {
            unit_id: _UnitState(unit) for unit_id, unit in seen.items()
        }
        self._order: Tuple[str, ...] = tuple(seen)
        self.policy = policy if policy is not None else RetryPolicy(
            max_attempts=5, backoff_base_s=0.05, backoff_max_s=1.0
        )
        self.lease_s = lease_s
        self.clock = clock
        self._grants = 0
        self.counters: Dict[str, int] = {
            "granted": 0, "expired": 0, "released": 0, "failed": 0,
            "committed": 0, "late_commits": 0, "duplicates": 0,
            "conflicts": 0, "quarantined": 0, "resurrected": 0,
        }
        self.conflicts: List[Dict[str, str]] = []

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._units)

    @property
    def done(self) -> bool:
        """All units terminal (committed or quarantined)."""
        return all(
            state.status in ("committed", "quarantined")
            for state in self._units.values()
        )

    def unit(self, unit_id: str) -> WorkUnit:
        """The work unit behind ``unit_id`` (KeyError when unknown)."""
        return self._units[unit_id].unit

    def committed_keys(self) -> List[str]:
        """Run keys of every committed unit (for store promotion)."""
        return [
            state.unit.key for state in self._units.values()
            if state.status == "committed"
        ]

    def quarantined(self) -> List[FailedCell]:
        """Quarantine records, in unit submission order."""
        return [
            self._units[unit_id].failure
            for unit_id in self._order
            if self._units[unit_id].status == "quarantined"
        ]

    def outstanding(self) -> List[Lease]:
        """Currently granted leases."""
        return [
            state.lease for state in self._units.values()
            if state.status == "leased" and state.lease is not None
        ]

    def progress(self) -> Dict[str, int]:
        """Unit counts by status (for banners and wide events)."""
        counts = {"pending": 0, "leased": 0, "committed": 0,
                  "quarantined": 0}
        for state in self._units.values():
            counts[state.status] += 1
        return counts

    def next_ready_s(self) -> Optional[float]:
        """Seconds until the earliest backoff-gated unit is grantable.

        ``0.0`` means a unit is grantable now; ``None`` means nothing is
        pending at all (every unit is leased or terminal), so a fetching
        worker should poll again after a short wait.
        """
        now = self.clock()
        waits = [
            max(0.0, state.not_before - now)
            for state in self._units.values()
            if state.status == "pending"
        ]
        return min(waits) if waits else None

    # -- transitions -------------------------------------------------------

    def acquire(self, worker: str) -> Optional[Lease]:
        """Grant the first ready pending unit to ``worker``."""
        now = self.clock()
        for unit_id in self._order:
            state = self._units[unit_id]
            if state.status != "pending" or state.not_before > now:
                continue
            self._grants += 1
            state.attempts += 1
            lease = Lease(
                lease_id=f"L{self._grants}",
                unit_id=unit_id,
                worker=worker,
                attempt=state.attempts,
                granted_at=now,
                deadline=now + self.lease_s,
            )
            state.status = "leased"
            state.lease = lease
            self.counters["granted"] += 1
            return lease
        return None

    def expire(self) -> List[Lease]:
        """Reap every lease at or past its deadline; returns the reaped.

        Expiry covers hung workers and silently dead connections alike:
        the attempt stays charged and the unit returns to ``pending``
        behind its seeded backoff (or quarantines when the budget is
        spent).
        """
        now = self.clock()
        reaped: List[Lease] = []
        for state in self._units.values():
            lease = state.lease
            if state.status != "leased" or lease is None:
                continue
            if now >= lease.deadline:
                reaped.append(lease)
                self.counters["expired"] += 1
                self._settle_failure(
                    state, "timeout",
                    f"lease {lease.lease_id} expired after "
                    f"{self.lease_s:.1f}s on {lease.worker}",
                )
        return reaped

    def fail(
        self, unit_id: str, lease_id: str, worker: str,
        reason: str, message: str,
    ) -> bool:
        """A worker reported the leased attempt failed.

        Only the current lease holder can fail a unit; stale reports
        (an expired lease's worker finally answering) are dropped --
        the expiry already charged that attempt.
        """
        state = self._units.get(unit_id)
        if state is None or state.status != "leased":
            return False
        lease = state.lease
        if lease is None or lease.lease_id != lease_id \
                or lease.worker != worker:
            return False
        self.counters["failed"] += 1
        self._settle_failure(state, reason, message)
        return True

    def release_worker(self, worker: str) -> List[Lease]:
        """The worker's connection died: settle every lease it holds.

        A lost connection mid-lease is a crash as far as the unit is
        concerned -- the attempt stays charged, which bounds the
        reconnect-and-die-again loop of a worker that crashes
        deterministically on one unit.
        """
        released: List[Lease] = []
        for state in self._units.values():
            lease = state.lease
            if state.status != "leased" or lease is None \
                    or lease.worker != worker:
                continue
            released.append(lease)
            self.counters["released"] += 1
            self._settle_failure(
                state, "crash",
                f"worker {worker} disconnected holding "
                f"{lease.lease_id}",
            )
        return released

    def commit(
        self, unit_id: str, lease_id: str, worker: str, digest: str
    ) -> str:
        """Record one result delivery; returns the commit verdict.

        * ``"committed"``   -- first delivery, by the current holder;
        * ``"late"``        -- first delivery, but the lease had expired
          or moved on (the result still wins: work is deterministic);
        * ``"resurrected"`` -- first delivery for a unit already
          quarantined (the quarantine is revoked);
        * ``"duplicate"``   -- already committed with the same digest;
        * ``"conflict"``    -- already committed with a *different*
          digest (recorded in :attr:`conflicts`);
        * ``"unknown"``     -- no such unit.

        The caller performs the actual cache write exactly when the
        verdict is one of the three accepting outcomes -- that pairing
        is the at-most-once guarantee.
        """
        state = self._units.get(unit_id)
        if state is None:
            return "unknown"
        if state.status == "committed":
            if state.digest == digest:
                self.counters["duplicates"] += 1
                return "duplicate"
            self.counters["conflicts"] += 1
            self.conflicts.append({
                "unit_id": unit_id,
                "worker": worker,
                "lease_id": lease_id,
                "digest": digest,
                "committed_digest": state.digest or "",
            })
            return "conflict"
        verdict = "committed"
        if state.status == "quarantined":
            verdict = "resurrected"
            self.counters["resurrected"] += 1
            state.failure = None
        elif state.status == "pending" or (
            state.lease is not None
            and (state.lease.lease_id != lease_id
                 or state.lease.worker != worker)
        ):
            verdict = "late"
            self.counters["late_commits"] += 1
        state.status = "committed"
        state.digest = digest
        state.lease = None
        self.counters["committed"] += 1
        return verdict

    # -- internals ---------------------------------------------------------

    def _settle_failure(
        self, state: _UnitState, reason: str, message: str
    ) -> None:
        """Route one failed attempt: backoff-gated retry or quarantine."""
        unit = state.unit
        state.lease = None
        if state.attempts >= self.policy.max_attempts:
            state.status = "quarantined"
            state.failure = FailedCell(
                key=unit.key,
                workload=unit.workload,
                platform=unit.platform,
                target=unit.target,
                attempts=state.attempts,
                reason=reason,
                message=message,
            )
            self.counters["quarantined"] += 1
            return
        state.status = "pending"
        state.not_before = self.clock() + self.policy.backoff_s(
            unit.key, state.attempts
        )
