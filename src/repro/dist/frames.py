"""Length-prefixed JSON framing for the coordinator/worker protocol.

One frame is a 4-byte big-endian payload length followed by that many
bytes of canonical JSON (sorted keys, compact separators, UTF-8).  The
canonical encoding matters beyond tidiness: the coordinator hashes the
bytes it *re-encodes* from a decoded result document, so two workers
delivering the same result always produce the same digest -- that digest
equality is what lets the at-most-once commit distinguish a harmless
duplicate delivery from a genuine conflict.

:class:`FrameTransport` wraps a connected socket.  Sends are serialized
under a lock (the worker's heartbeat thread shares the transport with
its fetch/execute loop) and every outgoing frame is stamped with a
monotonically increasing ``seq`` before it hits the wire.  The receive
side never trusts wire order: :class:`InOrderChannel` re-sequences
frames by ``seq``, dropping duplicates and holding early arrivals until
the gap fills, which is exactly what makes the network chaos layer's
duplicate and reordered deliveries harmless at the protocol level.

Within one connection a frame is never silently lost: the chaos
transport only duplicates, delays, reorders or *truncates-and-drops* --
and a truncated frame kills the connection, which releases the worker's
leases.  That invariant is why a bounded reorder window is safe: a gap
that never fills means the peer is broken, not the network.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Dict, List, Optional

from repro.errors import MelodyError

MAX_FRAME_BYTES = 8 << 20
"""Upper bound on one frame's payload (a result document is ~10 KB)."""

REORDER_WINDOW = 64
"""Out-of-order frames held before the channel declares the peer broken."""

_LENGTH = struct.Struct(">I")


class FrameError(MelodyError):
    """A malformed, oversized, or unsequenceable frame."""


def encode_payload(message: Dict[str, object]) -> bytes:
    """Canonical JSON bytes of one message (no length prefix)."""
    return json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def encode_frame(message: Dict[str, object]) -> bytes:
    """One wire frame: length prefix + canonical JSON payload."""
    payload = encode_payload(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload {len(payload)} bytes exceeds "
            f"{MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, object]:
    """Parse one frame payload back into a message dict."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"frame payload is not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise FrameError(
            f"frame payload must be an object, got "
            f"{type(message).__name__}"
        )
    return message


class FrameTransport:
    """Framed, thread-safe messaging over one connected socket.

    ``send`` stamps each outgoing message with the next ``seq`` (starting
    at 1) under the send lock, so concurrent senders (the worker's
    heartbeat thread) interleave whole frames with strictly increasing
    sequence numbers.  ``recv`` returns one decoded message, ``None`` on
    a clean EOF, raises :class:`FrameError` on garbage, and lets
    ``socket.timeout`` propagate so pollers can check stop flags.  A
    timeout mid-frame keeps the partial parse state (pending length and
    buffered bytes) on the transport, so the next ``recv`` resumes the
    same frame instead of misreading payload bytes as a header.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._seq = 0
        self._recv_buffer = b""
        self._pending_length: Optional[int] = None

    def send(self, message: Dict[str, object]) -> int:
        """Frame, stamp and ship one message; returns its ``seq``."""
        with self._send_lock:
            self._seq += 1
            seq = self._seq
            stamped = dict(message)
            stamped["seq"] = seq
            self._ship(encode_frame(stamped), seq)
        return seq

    def _ship(self, data: bytes, seq: int) -> None:
        """Put one encoded frame on the wire (chaos overrides this)."""
        self._sock.sendall(data)

    def recv(
        self, timeout: Optional[float] = None
    ) -> Optional[Dict[str, object]]:
        """One decoded message; ``None`` on clean EOF.

        The header is only consumed once its length is parsed into
        ``_pending_length``, and that survives a ``socket.timeout``:
        pollers that continue on timeout (the coordinator's 0.25s recv
        loop) resume a half-received frame instead of desyncing the
        stream when a frame's bytes arrive more than one poll apart.
        """
        self._sock.settimeout(timeout)
        while True:
            if self._pending_length is None \
                    and len(self._recv_buffer) >= _LENGTH.size:
                (length,) = _LENGTH.unpack(
                    self._recv_buffer[:_LENGTH.size]
                )
                if length > MAX_FRAME_BYTES:
                    raise FrameError(
                        f"incoming frame claims {length} bytes "
                        f"(max {MAX_FRAME_BYTES}); stream corrupt"
                    )
                self._recv_buffer = self._recv_buffer[_LENGTH.size:]
                self._pending_length = length
            if self._pending_length is not None \
                    and len(self._recv_buffer) >= self._pending_length:
                length = self._pending_length
                payload, self._recv_buffer = (
                    self._recv_buffer[:length],
                    self._recv_buffer[length:],
                )
                self._pending_length = None
                return decode_payload(payload)
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._recv_buffer or self._pending_length is not None:
                    raise FrameError(
                        "connection closed mid-frame "
                        f"({len(self._recv_buffer)} bytes buffered, "
                        f"expecting {self._pending_length!r})"
                    )
                return None
            self._recv_buffer += chunk

    def close(self) -> None:
        """Close the underlying socket (idempotent, never raises)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class InOrderChannel:
    """Re-sequences received frames by their ``seq`` stamp.

    ``feed`` returns the frames that became deliverable, in sequence
    order: duplicates (``seq`` already delivered) are dropped, early
    arrivals are buffered until the gap fills.  A buffer exceeding
    ``REORDER_WINDOW`` distinct pending frames means a sequence number
    went missing without the connection dying -- the peer violated the
    no-silent-loss invariant -- and is reported as a
    :class:`FrameError`.
    """

    def __init__(self, max_window: int = REORDER_WINDOW):
        self._next = 1
        self._pending: Dict[int, Dict[str, object]] = {}
        self._max_window = max_window
        self.duplicates = 0
        self.reordered = 0

    def feed(self, frame: Dict[str, object]) -> List[Dict[str, object]]:
        """Accept one raw frame; return the now-deliverable messages."""
        seq = frame.get("seq")
        if not isinstance(seq, int) or seq < 1:
            raise FrameError(f"frame carries no valid seq: {seq!r}")
        if seq < self._next or seq in self._pending:
            self.duplicates += 1
            return []
        if seq != self._next:
            self.reordered += 1
            self._pending[seq] = frame
            if len(self._pending) > self._max_window:
                raise FrameError(
                    f"reorder window exceeded ({len(self._pending)} "
                    f"frames pending, expecting seq {self._next})"
                )
            return []
        ready = [frame]
        self._next += 1
        while self._next in self._pending:
            ready.append(self._pending.pop(self._next))
            self._next += 1
        return ready
