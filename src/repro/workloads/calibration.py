"""Deriving workload-spec parameters from trace simulation.

The registry's :class:`~repro.workloads.base.WorkloadSpec` numbers (miss
rates, prefetch friendliness, MLP) are aggregate descriptions.  This module
closes the loop: generate an address trace with a known access pattern,
replay it through :mod:`repro.cpu.cachesim`, and read the spec parameters
off the simulation -- demonstrating that the aggregates used everywhere
else are the kind that microarchitectural simulation actually produces.

It also powers validation: the structural claims the analytical model
relies on (streams prefetch well, pointer chases do not, misses fall with
LLC capacity, prefetch timeliness degrades with memory latency) are all
checkable against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.cachesim import (
    CacheHierarchySim,
    CacheSimStats,
    StreamPrefetcherSim,
)
from repro.errors import WorkloadError
from repro.workloads.base import WorkloadSpec
from repro.workloads.traces import AccessTrace

DEFAULT_INSTRUCTIONS_PER_ACCESS = 3.5
"""Typical instructions retired per memory access (loads ~28% of the mix)."""


@dataclass(frozen=True)
class DerivedParameters:
    """Spec-level parameters read off a cache simulation."""

    name: str
    l1_mpki: float
    l2_mpki: float
    l3_mpki: float
    prefetch_friendliness: float
    prefetch_timeliness: float
    mlp: float
    stores_pki: float
    stats: CacheSimStats

    def to_spec(self, suite: str = "trace-derived", **overrides) -> WorkloadSpec:
        """Materialize a WorkloadSpec from the derived parameters."""
        loads_pki = 1000.0 / DEFAULT_INSTRUCTIONS_PER_ACCESS
        params = dict(
            name=self.name,
            suite=suite,
            loads_pki=loads_pki,
            l1_mpki=min(self.l1_mpki, loads_pki),
            l2_mpki=min(self.l2_mpki, self.l1_mpki),
            l3_mpki=min(self.l3_mpki, self.l2_mpki),
            prefetch_friendliness=min(0.98, self.prefetch_friendliness),
            mlp=max(1.0, self.mlp),
            stores_pki=self.stores_pki,
        )
        params.update(overrides)
        return WorkloadSpec(**params)


def derive_parameters(
    trace: AccessTrace,
    l3_bytes: float = 16 * 1024 * 1024,
    memory_latency_ns: float = 110.0,
    instructions_per_access: float = DEFAULT_INSTRUCTIONS_PER_ACCESS,
    prefetcher: StreamPrefetcherSim = None,
) -> DerivedParameters:
    """Replay ``trace`` and derive the spec-level parameters.

    MLP derives from the dependent-miss fraction: fully dependent chains
    have MLP 1, fully independent misses approach the fill-buffer bound.
    """
    if instructions_per_access <= 0:
        raise WorkloadError("instructions_per_access must be positive")
    sim = CacheHierarchySim(
        l3_bytes=l3_bytes,
        prefetcher=(
            prefetcher if prefetcher is not None else StreamPrefetcherSim()
        ),
        memory_latency_ns=memory_latency_ns,
        ns_per_access=instructions_per_access * 0.6,  # ~0.6 ns/instr at IPC~1.7/3.5GHz
    )
    stats = sim.run(trace)
    mpki = stats.mpki(instructions_per_access)
    # The spec convention (WorkloadSpec.l3_mpki) counts demand misses
    # *before* prefetch filtering; the simulator's l3_misses excludes
    # prefetch-covered ones, so add them back.
    instructions = stats.accesses * instructions_per_access
    mpki["l3_mpki"] += stats.prefetches_useful * 1000.0 / max(
        instructions, 1.0
    )
    independent = 1.0 - stats.dependent_miss_fraction
    mlp = 1.0 + independent * 11.0  # span 1 (chain) .. 12 (independent)
    stores_pki = float(trace.is_write.sum()) * 1000.0 / max(instructions, 1.0)
    return DerivedParameters(
        name=trace.name,
        l1_mpki=mpki["l1_mpki"],
        l2_mpki=mpki["l2_mpki"],
        l3_mpki=mpki["l3_mpki"],
        prefetch_friendliness=stats.prefetch_coverage,
        prefetch_timeliness=stats.prefetch_timeliness,
        mlp=mlp,
        stores_pki=stores_pki,
        stats=stats,
    )


def timeliness_vs_latency(
    trace: AccessTrace,
    latencies_ns,
    **kwargs,
) -> dict:
    """Prefetch timeliness at several memory latencies (Figure 13's axis).

    Longer latency means prefetches arrive later relative to the demand
    stream, so timeliness (and effective coverage) falls -- the simulated
    ground truth behind the analytical model's lateness curve.
    """
    results = {}
    for latency in latencies_ns:
        derived = derive_parameters(
            trace, memory_latency_ns=latency, **kwargs
        )
        results[latency] = derived.prefetch_timeliness
    return results
