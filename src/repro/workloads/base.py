"""Workload specifications: the memory-behaviour model of one program.

A :class:`WorkloadSpec` is the contract between the workload substrate and
the CPU backend model.  It describes a program the way a memory-system study
sees it: how many instructions it retires, how often it misses each cache
level, how much memory-level parallelism its misses enjoy, how prefetchable
its access streams are, how bursty its traffic is, and how its behaviour
changes across execution phases.

All miss rates are calibrated at the reference platform (EMR2S, 160 MB LLC);
the CPU model rescales them for other cache sizes via ``cache_sensitivity``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Tuple

from repro.errors import WorkloadError

REFERENCE_LLC_MB = 160.0
"""LLC size the miss rates are calibrated against (EMR2S)."""

LATENCY_CLASS = "latency"
BANDWIDTH_CLASS = "bandwidth"
COMPUTE_CLASS = "compute"
MIXED_CLASS = "mixed"
CLASSES = (LATENCY_CLASS, BANDWIDTH_CLASS, COMPUTE_CLASS, MIXED_CLASS)
"""Sensitivity classes used for population-level reporting."""


@dataclass(frozen=True)
class Phase:
    """One execution phase: a weight and multipliers on the base behaviour.

    ``weight`` is the fraction of the workload's instructions spent in the
    phase; ``multipliers`` scales selected spec fields (``l3_mpki``,
    ``stores_pki``, ``mlp``, ...) during it.  Phases drive the paper's
    period-based slowdown analysis (§5.6, Figure 16).
    """

    weight: float
    multipliers: Mapping[str, float] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise WorkloadError(f"phase weight out of (0, 1]: {self.weight}")
        for key, value in self.multipliers.items():
            if value < 0:
                raise WorkloadError(f"negative multiplier for {key}: {value}")


_SCALABLE_FIELDS = (
    "l1_mpki",
    "l2_mpki",
    "l3_mpki",
    "loads_pki",
    "stores_pki",
    "mlp",
    "prefetch_friendliness",
    "base_cpi",
    "burst_ratio",
    "burst_fraction",
)
"""Spec fields a phase multiplier may scale."""


@dataclass(frozen=True)
class WorkloadSpec:
    """Memory-behaviour model of one workload.

    Parameters
    ----------
    name / suite / description:
        Identity; ``suite`` matches the paper's benchmark-suite grouping.
    instructions:
        Retired instructions in one run (abstract; scaled-down traces).
    base_cpi:
        Cycles per instruction with a perfect memory system (compute +
        frontend + cache-hit latencies already folded in).
    frontend_stall_frac:
        Fraction of base cycles that are frontend stalls; CXL leaves these
        unchanged (the paper's frontend-delta finding in §5.3).
    loads_pki / stores_pki:
        Loads and stores per kilo-instruction.
    l1_mpki / l2_mpki / l3_mpki:
        Demand-load misses per kilo-instruction at each level, *before*
        prefetching, at the reference LLC size.
    cache_sensitivity:
        Exponent scaling ``l3_mpki`` with LLC size (0 = fully resident or
        fully streaming; larger = cache-friendly working set).
    mlp:
        Average memory-level parallelism of demand misses (1 = pointer
        chase; >8 = independent streams).
    prefetch_friendliness:
        Fraction of L3 demand misses an ideal-latency hardware prefetcher
        covers (stream/stride regularity).
    prefetch_lead_ns:
        How far ahead of use the prefetcher can run for this access
        pattern; latencies beyond this turn prefetches late (Figure 13).
    tail_sensitivity:
        How strongly dependent accesses serialize behind tail excursions
        (0 = independent accesses, 1 = fully dependent chains).
    burst_ratio / burst_fraction:
        Traffic burstiness: ``burst_fraction`` of memory traffic is issued
        at ``burst_ratio`` x the average bandwidth (drives the CXL+NUMA
        congestion findings of Figure 8c/d).
    store_rfo_fraction:
        Fraction of stores that miss and issue an RFO to memory.
    writeback_ratio:
        Dirty-writeback traffic per L3 miss (adds write bandwidth).
    serialization_pki:
        Serializing operations per kilo-instruction (scoreboard stalls).
    threads:
        Concurrent worker threads.  Stall behaviour is per-thread (every
        thread sees the same latency), but *traffic* aggregates across
        threads -- this is what lets multithreaded HPC workloads demand
        more bandwidth than a CXL device can supply (Figure 8b's tail).
    working_set_gb:
        Resident set; devices smaller than this cannot host the workload.
    latency_class:
        Descriptive sensitivity class for population reporting.
    phases:
        Execution phases (weights must sum to 1 when present).
    """

    name: str
    suite: str
    instructions: int = 1_000_000_000
    base_cpi: float = 0.55
    frontend_stall_frac: float = 0.15
    loads_pki: float = 280.0
    stores_pki: float = 110.0
    l1_mpki: float = 30.0
    l2_mpki: float = 12.0
    l3_mpki: float = 3.0
    cache_sensitivity: float = 0.1
    mlp: float = 4.0
    prefetch_friendliness: float = 0.5
    prefetch_lead_ns: float = 250.0
    tail_sensitivity: float = 0.3
    burst_ratio: float = 2.0
    burst_fraction: float = 0.05
    store_rfo_fraction: float = 0.3
    writeback_ratio: float = 0.4
    serialization_pki: float = 0.2
    threads: int = 1
    working_set_gb: float = 4.0
    latency_class: str = MIXED_CLASS
    description: str = ""
    phases: Tuple[Phase, ...] = ()

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise WorkloadError(f"{self.name}: instructions must be positive")
        if self.base_cpi <= 0:
            raise WorkloadError(f"{self.name}: base_cpi must be positive")
        if not 0.0 <= self.frontend_stall_frac < 1.0:
            raise WorkloadError(f"{self.name}: frontend_stall_frac out of range")
        if not self.l1_mpki >= self.l2_mpki >= self.l3_mpki >= 0:
            raise WorkloadError(
                f"{self.name}: miss rates must satisfy L1 >= L2 >= L3 >= 0 "
                f"({self.l1_mpki}, {self.l2_mpki}, {self.l3_mpki})"
            )
        if self.l1_mpki > self.loads_pki:
            raise WorkloadError(f"{self.name}: more L1 misses than loads")
        if self.mlp < 1.0:
            raise WorkloadError(f"{self.name}: mlp must be >= 1")
        for frac_field in (
            "prefetch_friendliness",
            "tail_sensitivity",
            "burst_fraction",
            "store_rfo_fraction",
        ):
            value = getattr(self, frac_field)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{self.name}: {frac_field} out of [0, 1]")
        if self.burst_ratio < 1.0:
            raise WorkloadError(f"{self.name}: burst_ratio must be >= 1")
        if self.threads < 1:
            raise WorkloadError(f"{self.name}: threads must be >= 1")
        if self.latency_class not in CLASSES:
            raise WorkloadError(
                f"{self.name}: unknown latency_class {self.latency_class!r}"
            )
        if self.phases:
            total = sum(p.weight for p in self.phases)
            if abs(total - 1.0) > 1e-6:
                raise WorkloadError(
                    f"{self.name}: phase weights sum to {total}, expected 1"
                )
            for phase in self.phases:
                for key in phase.multipliers:
                    if key not in _SCALABLE_FIELDS:
                        raise WorkloadError(
                            f"{self.name}: phase scales unknown field {key!r}"
                        )

    # -- phase handling ----------------------------------------------------

    def effective_phases(self) -> Tuple[Phase, ...]:
        """The phase list, defaulting to one uniform phase."""
        if self.phases:
            return self.phases
        return (Phase(weight=1.0, label="whole-run"),)

    def in_phase(self, phase: Phase) -> "WorkloadSpec":
        """A spec describing behaviour during ``phase`` only."""
        updates = {}
        for key, factor in phase.multipliers.items():
            updates[key] = getattr(self, key) * factor
        # Phase-local view runs the phase's share of instructions.
        updates["instructions"] = max(1, int(self.instructions * phase.weight))
        updates["phases"] = ()
        spec = replace(self, **updates)
        return spec

    def scaled_intensity(self, factor: float) -> "WorkloadSpec":
        """A reduced-intensity variant (the paper's 1/2 and 1/4 load runs).

        Scaling intensity thins the miss stream and flattens bursts, exactly
        like shrinking 520.omnetpp's simulated LAN count.
        """
        if not 0.0 < factor <= 1.0:
            raise WorkloadError(f"intensity factor out of (0, 1]: {factor}")
        return replace(
            self,
            name=f"{self.name}@{factor:g}x",
            l1_mpki=self.l1_mpki * factor,
            l2_mpki=self.l2_mpki * factor,
            l3_mpki=self.l3_mpki * factor,
            burst_ratio=1.0 + (self.burst_ratio - 1.0) * factor,
        )

    # -- traffic accounting -------------------------------------------------

    def read_fraction(self) -> float:
        """Read share of this workload's memory traffic (reads + RFOs vs writes)."""
        reads = self.l3_mpki + self.stores_pki * self.store_rfo_fraction
        writes = self.l3_mpki * self.writeback_ratio
        total = reads + writes
        return reads / total if total > 0 else 1.0

    def memory_bytes_per_kilo_instruction(self) -> float:
        """Total device traffic (bytes) generated per 1000 instructions."""
        lines = (
            self.l3_mpki  # demand + prefetch fills (prefetcher moves them, not removes)
            + self.stores_pki * self.store_rfo_fraction  # RFO fills
            + self.l3_mpki * self.writeback_ratio  # dirty writebacks
        )
        return lines * 64.0
