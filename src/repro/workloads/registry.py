"""The 265-workload registry.

Assembles every suite generator into the paper's evaluation population:

=============  =====
suite          count
=============  =====
SPEC CPU 2017     43
GAPBS             30
PARSEC            13
PBBS              44
ML                29
Cloud             53
Phoronix          53
**total**      **265**
=============  =====

Lookups are by exact name; :func:`workloads_fitting` filters by device
capacity (the paper could only evaluate 60 workloads on the 16 GB CXL-C).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.errors import WorkloadError
from repro.workloads.base import WorkloadSpec

REGISTRY_SIZE = 265
"""Expected total population size (matches the paper)."""


@lru_cache(maxsize=1)
def all_workloads() -> Tuple[WorkloadSpec, ...]:
    """The full 265-workload population, sorted by (suite, name)."""
    from repro.workloads.suites import ALL_SUITE_MODULES

    specs = []
    for module in ALL_SUITE_MODULES:
        specs.extend(module.workloads())
    specs.sort(key=lambda w: (w.suite, w.name))
    names = [w.name for w in specs]
    duplicates = {n for n in names if names.count(n) > 1}
    if duplicates:
        raise WorkloadError(f"duplicate workload names: {sorted(duplicates)}")
    if len(specs) != REGISTRY_SIZE:
        raise WorkloadError(
            f"registry has {len(specs)} workloads, expected {REGISTRY_SIZE}"
        )
    return tuple(specs)


@lru_cache(maxsize=1)
def _by_name() -> dict:
    return {w.name: w for w in all_workloads()}


def workload_by_name(name: str) -> WorkloadSpec:
    """Look up one workload by its exact name."""
    try:
        return _by_name()[name]
    except KeyError:
        raise WorkloadError(f"unknown workload {name!r}") from None


def workloads_by_suite(suite: str) -> Tuple[WorkloadSpec, ...]:
    """All workloads of one suite (e.g. "GAPBS")."""
    matches = tuple(w for w in all_workloads() if w.suite == suite)
    if not matches:
        suites = sorted({w.suite for w in all_workloads()})
        raise WorkloadError(f"unknown suite {suite!r}; choose from {suites}")
    return matches


def workloads_fitting(capacity_gb: float) -> Tuple[WorkloadSpec, ...]:
    """Workloads whose working set fits in ``capacity_gb`` of memory."""
    return tuple(w for w in all_workloads() if w.working_set_gb <= capacity_gb)
