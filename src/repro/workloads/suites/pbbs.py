"""PBBS v2: the Problem Based Benchmark Suite's parallel kernels.

PBBS kernels are fine-grained parallel algorithms -- sorts, geometry,
graph primitives, string processing -- each run on two input
distributions (as the suite ships them).  Their parallelism gives them
higher memory-level parallelism than the GAPBS kernels, making them more
bandwidth- than latency-shaped, with exceptions: the tree-based geometry
kernels chase pointers.
"""

from __future__ import annotations

import zlib

from repro.workloads.suites.common import (
    BANDWIDTH_TEMPLATE,
    LATENCY_HEAVY_TEMPLATE,
    MIXED_TEMPLATE,
)

SUITE = "PBBS"

_BANDWIDTH_KERNELS = {
    "integerSort": ("uniform", "exponential"),
    "comparisonSort": ("uniform", "almostSorted"),
    "histogram": ("uniform", "skewed"),
    "removeDuplicates": ("uniform", "trigrams"),
    "wordCounts": ("trigrams", "wikipedia"),
    "suffixArray": ("dna", "wikipedia"),
    "invertedIndex": ("wikipedia", "trigrams"),
    "longestRepeatedSubstring": ("dna", "trigrams"),
}
_MIXED_KERNELS = {
    "BFS-pbbs": ("randLocal", "rMat"),
    "maximalMatching": ("randLocal", "rMat"),
    "maximalIndependentSet": ("randLocal", "rMat"),
    "spanningForest": ("randLocal", "rMat"),
    "minSpanningForest": ("randLocal", "rMat"),
    "convexHull": ("uniform-2d", "onSphere"),
    "delaunayTriangulation": ("uniform-2d", "kuzmin"),
}
_LATENCY_KERNELS = {
    "nearestNeighbors": ("uniform-3d", "kuzmin"),
    "rayCast": ("happy", "angel"),
    "rangeQuery": ("uniform-2d", "kuzmin"),
    "nBody": ("uniform-3d", "plummer"),
    "delaunayRefine": ("uniform-2d", "kuzmin"),
    "classify": ("covtype", "kdd"),
    "setCover": ("randLocal", "rMat"),
}


def _spread(name: str, modulus: int) -> int:
    """Stable small hash for per-name parameter spreading."""
    return zlib.crc32(name.encode("utf-8")) % modulus


def workloads() -> tuple:
    """All 44 PBBS kernel x input workload models."""
    specs = []
    for kernel, inputs in _BANDWIDTH_KERNELS.items():
        for inp in inputs:
            name = f"{kernel}-{inp}"
            specs.append(
                BANDWIDTH_TEMPLATE.instantiate(
                    name, SUITE,
                    l3_mpki=10.0 + 2.0 * _spread(name, 5),
                    working_set_gb=6.0 + _spread(name, 8),
                )
            )
    for kernel, inputs in _MIXED_KERNELS.items():
        for inp in inputs:
            specs.append(MIXED_TEMPLATE.instantiate(f"{kernel}-{inp}", SUITE))
    for kernel, inputs in _LATENCY_KERNELS.items():
        for inp in inputs:
            specs.append(
                LATENCY_HEAVY_TEMPLATE.instantiate(
                    f"{kernel}-{inp}", SUITE,
                    prefetch_friendliness=0.25, mlp=3.0,
                )
            )
    return tuple(sorted(specs, key=lambda w: w.name))
