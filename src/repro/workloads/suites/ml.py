"""ML/AI workloads: GPT-2, Llama-7B (llama.cpp), DLRM, MLPerf inference.

The paper's ML findings (§5.5): DLRM and GPT-2 slowdowns are ~90% DRAM
demand-read stalls (embedding/weight gathers defeat prefetchers), while
many Llama workloads show LLC-originated slowdowns -- llama.cpp's blocked
GEMV streams prefetch well at DRAM latency, but the prefetches turn late
under CXL and surface as cache stalls.
"""

from __future__ import annotations

from repro.workloads.base import LATENCY_CLASS, MIXED_CLASS
from repro.workloads.suites.common import (
    BANDWIDTH_TEMPLATE,
    LATENCY_HEAVY_TEMPLATE,
    MIXED_TEMPLATE,
)

SUITE = "ML"

_GPT2_SIZES = {
    # name -> (working set GB, l3_mpki)
    "gpt2-small": (0.6, 6.0),
    "gpt2-medium": (1.6, 7.5),
    "gpt2-large": (3.2, 8.5),
    "gpt2-xl": (6.5, 9.5),
}

_LLAMA_CONFIGS = (
    # (quantization, task): pp = prompt processing (compute-denser),
    # tg = token generation (memory-bandwidth-bound GEMV)
    ("q4_0", "pp"), ("q4_0", "tg"),
    ("q4_1", "pp"), ("q4_1", "tg"),
    ("q5_k", "pp"), ("q5_k", "tg"),
    ("q8_0", "pp"), ("q8_0", "tg"),
    ("f16", "pp"), ("f16", "tg"),
)

_QUANT_BYTES = {"q4_0": 0.5, "q4_1": 0.56, "q5_k": 0.69, "q8_0": 1.0, "f16": 2.0}

_DLRM_CONFIGS = ("dlrm-small", "dlrm-medium", "dlrm-large")

_MLPERF_MODELS = {
    "mlperf-resnet50": MIXED_TEMPLATE,
    "mlperf-retinanet": MIXED_TEMPLATE,
    "mlperf-bert-99": MIXED_TEMPLATE,
    "mlperf-bert-99.9": MIXED_TEMPLATE,
    "mlperf-3d-unet": BANDWIDTH_TEMPLATE,
    "mlperf-rnnt": MIXED_TEMPLATE,
    "mlperf-gptj": LATENCY_HEAVY_TEMPLATE,
    "mlperf-dlrm-v2": LATENCY_HEAVY_TEMPLATE,
    "mlperf-ssd-mobilenet": MIXED_TEMPLATE,
    "mlperf-mobilenet": MIXED_TEMPLATE,
    "mlperf-efficientnet": MIXED_TEMPLATE,
    "mlperf-stable-diffusion": BANDWIDTH_TEMPLATE,
}


def _gpt2(name: str, working_set: float, mpki: float):
    """GPT-2 inference: embedding + attention gathers, ~90% DRAM slowdown."""
    return LATENCY_HEAVY_TEMPLATE.instantiate(
        name, SUITE,
        base_cpi=0.6,
        l1_mpki=mpki * 5.0,
        l2_mpki=mpki * 2.2,
        l3_mpki=mpki,
        mlp=6.0,
        prefetch_friendliness=0.3,
        prefetch_lead_ns=250,
        tail_sensitivity=0.3,
        stores_pki=60,
        store_rfo_fraction=0.15,
        working_set_gb=working_set,
        latency_class=LATENCY_CLASS,
    )


def _llama(quant: str, task: str):
    """Llama-7B via llama.cpp: prefetch-heavy streams -> LLC slowdowns."""
    weight_gb = 7.0 * _QUANT_BYTES[quant] + 1.0
    tg = task == "tg"
    return MIXED_TEMPLATE.instantiate(
        f"llama-7b-{quant}-{task}", SUITE,
        base_cpi=0.5 if tg else 0.4,
        l1_mpki=40.0 if tg else 18.0,
        l2_mpki=18.0 if tg else 7.0,
        l3_mpki=(8.0 if tg else 2.5) * _QUANT_BYTES[quant] ** 0.5,
        mlp=10.0 if tg else 6.0,
        prefetch_friendliness=0.9,
        prefetch_lead_ns=260,  # blocked GEMV: short lead, turns late on CXL
        tail_sensitivity=0.1,
        stores_pki=40,
        store_rfo_fraction=0.1,
        writeback_ratio=0.1,
        working_set_gb=weight_gb,
        latency_class=MIXED_CLASS,
    )


def _dlrm(name: str):
    """DLRM: random embedding-table gathers, DRAM-demand dominated."""
    size = {"dlrm-small": 8.0, "dlrm-medium": 24.0, "dlrm-large": 64.0}[name]
    return LATENCY_HEAVY_TEMPLATE.instantiate(
        name, SUITE,
        base_cpi=0.55,
        l1_mpki=45.0,
        l2_mpki=20.0,
        l3_mpki=7.0,
        mlp=8.0,
        prefetch_friendliness=0.15,
        tail_sensitivity=0.25,
        stores_pki=50,
        store_rfo_fraction=0.1,
        working_set_gb=size,
        latency_class=LATENCY_CLASS,
    )


def workloads() -> tuple:
    """All 29 ML workload models."""
    specs = []
    for name, (ws, mpki) in _GPT2_SIZES.items():
        specs.append(_gpt2(name, ws, mpki))
    for quant, task in _LLAMA_CONFIGS:
        specs.append(_llama(quant, task))
    for name in _DLRM_CONFIGS:
        specs.append(_dlrm(name))
    for name, template in _MLPERF_MODELS.items():
        specs.append(template.instantiate(name, SUITE))
    return tuple(sorted(specs, key=lambda w: w.name))
