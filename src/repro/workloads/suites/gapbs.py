"""GAP Benchmark Suite: 6 graph kernels x 5 input graphs.

Graph analytics is the paper's archetype of DRAM-demand-dominated CXL
slowdown (Figure 14b): irregular neighbour expansion defeats prefetchers,
so nearly every LLC miss is an uncovered demand read.  Only the PageRank
runs on dense synthetic graphs (pr-kron, pr-twitter) show cache-related
slowdowns -- their streaming rank updates are prefetchable.

Input graphs differ in scale and locality: ``web`` (small-world, high
locality), ``twitter`` (power-law), ``urand`` (uniform random, worst
locality), ``kron`` (synthetic power-law, largest), ``road`` (high
diameter, small working set).
"""

from __future__ import annotations

from repro.workloads.base import LATENCY_CLASS, MIXED_CLASS
from repro.workloads.suites.common import (
    LATENCY_HEAVY_TEMPLATE,
    MIXED_TEMPLATE,
)

SUITE = "GAPBS"

KERNELS = ("bc", "bfs", "cc", "pr", "sssp", "tc")
GRAPHS = ("web", "twitter", "urand", "kron", "road")

_GRAPH_TRAITS = {
    # (l3_mpki multiplier, mlp, working_set_gb, tail_sensitivity)
    "web": (0.8, 3.0, 6.0, 0.6),
    "twitter": (1.2, 4.0, 12.0, 0.5),
    "urand": (1.6, 4.5, 14.0, 0.5),
    "kron": (1.4, 5.0, 20.0, 0.4),
    "road": (0.5, 2.0, 2.0, 0.8),
}

_KERNEL_TRAITS = {
    # (base l3_mpki, prefetch_friendliness, base_cpi)
    "bc": (4.0, 0.25, 0.7),
    "bfs": (5.0, 0.2, 0.65),
    "cc": (4.5, 0.3, 0.6),
    "pr": (3.5, 0.55, 0.55),
    "sssp": (5.5, 0.2, 0.75),
    "tc": (3.0, 0.35, 0.8),
}

_PREFETCHABLE_PR = {("pr", "kron"), ("pr", "twitter")}
"""PageRank on dense synthetic graphs: streaming updates, cache slowdowns."""


def workloads() -> tuple:
    """All 30 GAPBS kernel x graph workload models."""
    specs = []
    for kernel in KERNELS:
        base_mpki, friendliness, cpi = _KERNEL_TRAITS[kernel]
        for graph in GRAPHS:
            mult, mlp, ws, tail = _GRAPH_TRAITS[graph]
            name = f"{kernel}-{graph}"
            template = LATENCY_HEAVY_TEMPLATE
            overrides = dict(
                base_cpi=cpi,
                l1_mpki=base_mpki * mult * 6.0,
                l2_mpki=base_mpki * mult * 2.5,
                l3_mpki=base_mpki * mult,
                cache_sensitivity=0.15,
                mlp=mlp,
                prefetch_friendliness=friendliness,
                prefetch_lead_ns=220,
                tail_sensitivity=tail,
                stores_pki=50,
                store_rfo_fraction=0.15,
                writeback_ratio=0.3,
                working_set_gb=ws,
                latency_class=LATENCY_CLASS,
            )
            if (kernel, graph) in _PREFETCHABLE_PR:
                template = MIXED_TEMPLATE
                overrides.update(
                    prefetch_friendliness=0.85,
                    prefetch_lead_ns=300,
                    mlp=8.0,
                    latency_class=MIXED_CLASS,
                )
            specs.append(template.instantiate(name, SUITE, **overrides))
    return tuple(sorted(specs, key=lambda w: w.name))
