"""Per-suite workload generators.

Each module regenerates the memory-behaviour models for one benchmark suite
the paper evaluates.  Workloads the paper discusses individually
(520.omnetpp, 605.mcf, 603.bwaves, ...) are hand-anchored to their described
behaviour; the rest are drawn deterministically from suite-specific
parameter templates so the full population reproduces the paper's
sensitivity mix (~25% bandwidth-sensitive, >30% frontend-bound, a 7%
catastrophic tail on low-bandwidth devices).
"""

from repro.workloads.suites import (
    cloud,
    gapbs,
    ml,
    parsec,
    pbbs,
    phoronix,
    spec2017,
)

ALL_SUITE_MODULES = (spec2017, gapbs, parsec, pbbs, ml, cloud, phoronix)
"""All suite modules, in the paper's presentation order."""

__all__ = [
    "ALL_SUITE_MODULES",
    "spec2017",
    "gapbs",
    "parsec",
    "pbbs",
    "ml",
    "cloud",
    "phoronix",
]
