"""Shared machinery for suite generators: sensitivity templates and jitter.

The paper's 265-workload population spans four broad sensitivity classes
(§3.1): latency-sensitive (many cloud workloads), bandwidth-sensitive
(about one quarter, mostly HPC), compute/frontend-bound, and mixtures.
Each template below captures one class's parameter ranges; a generator
instantiates a template with deterministic per-name jitter so every
workload is unique but reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.rng import DEFAULT_SEED, generator_for
from repro.workloads.base import (
    BANDWIDTH_CLASS,
    COMPUTE_CLASS,
    LATENCY_CLASS,
    MIXED_CLASS,
    WorkloadSpec,
)


@dataclass(frozen=True)
class ParamRange:
    """A (low, high) range sampled uniformly by the jitter generator."""

    low: float
    high: float

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value from the range."""
        if self.low == self.high:
            return self.low
        return float(rng.uniform(self.low, self.high))


@dataclass(frozen=True)
class Template:
    """Parameter ranges for one sensitivity class within a suite."""

    latency_class: str
    ranges: Mapping[str, ParamRange]
    fixed: Mapping[str, object] = field(default_factory=dict)

    def instantiate(self, name: str, suite: str, **overrides) -> WorkloadSpec:
        """Build a spec with per-name deterministic jitter.

        Explicit ``overrides`` win over sampled and fixed values, letting
        anchored workloads pin the fields the paper describes.
        """
        rng = generator_for(DEFAULT_SEED, "workload", suite, name)
        params = {key: rng_range.sample(rng) for key, rng_range in self.ranges.items()}
        params.update(self.fixed)
        params.update(overrides)
        # Enforce the hierarchy invariant after independent sampling.
        if "l2_mpki" in params and "l1_mpki" in params:
            params["l2_mpki"] = min(params["l2_mpki"], params["l1_mpki"])
        if "l3_mpki" in params and "l2_mpki" in params:
            params["l3_mpki"] = min(params["l3_mpki"], params["l2_mpki"])
        latency_class = params.pop("latency_class", self.latency_class)
        return WorkloadSpec(
            name=name, suite=suite, latency_class=latency_class, **params
        )


def _r(low: float, high: float) -> ParamRange:
    return ParamRange(low, high)


COMPUTE_TEMPLATE = Template(
    latency_class=COMPUTE_CLASS,
    ranges={
        "base_cpi": _r(0.35, 0.9),
        "frontend_stall_frac": _r(0.2, 0.45),
        "loads_pki": _r(150, 320),
        "stores_pki": _r(20, 70),
        "l1_mpki": _r(2.0, 12.0),
        "l2_mpki": _r(0.5, 3.0),
        "l3_mpki": _r(0.02, 0.2),
        "cache_sensitivity": _r(0.0, 0.1),
        "mlp": _r(2.0, 6.0),
        "prefetch_friendliness": _r(0.4, 0.8),
        "prefetch_lead_ns": _r(250, 450),
        "tail_sensitivity": _r(0.0, 0.3),
        "burst_ratio": _r(1.0, 2.0),
        "burst_fraction": _r(0.0, 0.05),
        "store_rfo_fraction": _r(0.05, 0.2),
        "writeback_ratio": _r(0.1, 0.4),
        "serialization_pki": _r(0.05, 0.4),
        "working_set_gb": _r(0.5, 8.0),
    },
)
"""Compute/frontend-bound: few LLC misses, minimal CXL slowdown."""

LATENCY_LIGHT_TEMPLATE = Template(
    latency_class=LATENCY_CLASS,
    ranges={
        "base_cpi": _r(0.45, 0.95),
        "frontend_stall_frac": _r(0.1, 0.3),
        "loads_pki": _r(200, 380),
        "stores_pki": _r(40, 120),
        "l1_mpki": _r(8.0, 25.0),
        "l2_mpki": _r(2.0, 8.0),
        "l3_mpki": _r(0.03, 0.22),
        "cache_sensitivity": _r(0.05, 0.25),
        "mlp": _r(1.5, 4.0),
        "prefetch_friendliness": _r(0.3, 0.7),
        "prefetch_lead_ns": _r(180, 350),
        "tail_sensitivity": _r(0.3, 0.8),
        "burst_ratio": _r(1.5, 4.0),
        "burst_fraction": _r(0.02, 0.15),
        "store_rfo_fraction": _r(0.1, 0.3),
        "writeback_ratio": _r(0.2, 0.5),
        "serialization_pki": _r(0.1, 0.6),
        "working_set_gb": _r(2.0, 30.0),
    },
)
"""Lightly latency-sensitive: pointer-rich but mostly cache-resident."""

LATENCY_HEAVY_TEMPLATE = Template(
    latency_class=LATENCY_CLASS,
    ranges={
        "base_cpi": _r(0.55, 1.1),
        "frontend_stall_frac": _r(0.05, 0.2),
        "loads_pki": _r(250, 420),
        "stores_pki": _r(40, 140),
        "l1_mpki": _r(20.0, 45.0),
        "l2_mpki": _r(8.0, 20.0),
        "l3_mpki": _r(0.5, 3.0),
        "cache_sensitivity": _r(0.1, 0.35),
        "mlp": _r(1.2, 3.5),
        "prefetch_friendliness": _r(0.15, 0.5),
        "prefetch_lead_ns": _r(150, 300),
        "tail_sensitivity": _r(0.4, 1.0),
        "burst_ratio": _r(1.5, 5.0),
        "burst_fraction": _r(0.05, 0.2),
        "store_rfo_fraction": _r(0.1, 0.35),
        "writeback_ratio": _r(0.2, 0.6),
        "serialization_pki": _r(0.1, 0.8),
        "working_set_gb": _r(4.0, 80.0),
    },
)
"""Strongly latency-sensitive: dependent misses dominate runtime."""

BANDWIDTH_TEMPLATE = Template(
    latency_class=BANDWIDTH_CLASS,
    ranges={
        "base_cpi": _r(0.4, 0.7),
        "frontend_stall_frac": _r(0.05, 0.15),
        "loads_pki": _r(280, 450),
        "stores_pki": _r(80, 180),
        "l1_mpki": _r(40.0, 70.0),
        "l2_mpki": _r(20.0, 40.0),
        "l3_mpki": _r(14.0, 34.0),
        "cache_sensitivity": _r(0.0, 0.1),
        "mlp": _r(8.0, 16.0),
        "prefetch_friendliness": _r(0.8, 0.95),
        "prefetch_lead_ns": _r(180, 300),
        "tail_sensitivity": _r(0.0, 0.2),
        "burst_ratio": _r(1.0, 1.5),
        "burst_fraction": _r(0.0, 0.1),
        "store_rfo_fraction": _r(0.3, 0.5),
        "writeback_ratio": _r(0.4, 0.8),
        "serialization_pki": _r(0.02, 0.2),
        "working_set_gb": _r(8.0, 60.0),
    },
    fixed={"threads": 4},
)
"""Bandwidth-bound streaming (HPC): saturates low-bandwidth CXL devices."""

MIXED_TEMPLATE = Template(
    latency_class=MIXED_CLASS,
    ranges={
        "base_cpi": _r(0.45, 0.9),
        "frontend_stall_frac": _r(0.1, 0.35),
        "loads_pki": _r(200, 400),
        "stores_pki": _r(50, 150),
        "l1_mpki": _r(12.0, 40.0),
        "l2_mpki": _r(4.0, 15.0),
        "l3_mpki": _r(0.05, 0.4),
        "cache_sensitivity": _r(0.05, 0.3),
        "mlp": _r(3.0, 10.0),
        "prefetch_friendliness": _r(0.5, 0.9),
        "prefetch_lead_ns": _r(180, 380),
        "tail_sensitivity": _r(0.2, 0.7),
        "burst_ratio": _r(1.2, 3.5),
        "burst_fraction": _r(0.02, 0.15),
        "store_rfo_fraction": _r(0.15, 0.4),
        "writeback_ratio": _r(0.2, 0.6),
        "serialization_pki": _r(0.1, 0.7),
        "working_set_gb": _r(2.0, 50.0),
    },
)
"""Mixed latency/bandwidth behaviour."""

TEMPLATES = {
    COMPUTE_CLASS: COMPUTE_TEMPLATE,
    LATENCY_CLASS: LATENCY_HEAVY_TEMPLATE,
    BANDWIDTH_CLASS: BANDWIDTH_TEMPLATE,
    MIXED_CLASS: MIXED_TEMPLATE,
}
"""Default template per sensitivity class."""
