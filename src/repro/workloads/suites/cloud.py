"""Cloud workloads: YCSB on Redis/VoltDB/Memcached, CloudSuite, Spark.

Cloud services are the paper's most latency-sensitive population
(Figure 9b shows YCSB slowdowns growing super-linearly with CXL latency):
request handling chases pointers through indexes and object headers with
little memory-level parallelism, and device-level tail latencies propagate
directly into request tails (Figure 7c, Redis YCSB-C on CXL-C).

Generators:

* YCSB core workloads A-F against Redis, VoltDB, and Memcached (18).
* CloudSuite 4.0 benchmarks at two client-load levels (16).
* Spark/HiBench data-analytics jobs (19) -- these are the bandwidth-leaning
  exception within the cloud population.
"""

from __future__ import annotations

from repro.workloads.base import LATENCY_CLASS
from repro.workloads.suites.common import (
    BANDWIDTH_TEMPLATE,
    LATENCY_HEAVY_TEMPLATE,
    LATENCY_LIGHT_TEMPLATE,
    MIXED_TEMPLATE,
)

SUITE = "Cloud"

YCSB_WORKLOADS = {
    # name -> (read fraction of ops, description)
    "A": (0.5, "update heavy (50/50 read/update)"),
    "B": (0.95, "read mostly (95/5)"),
    "C": (1.0, "read only"),
    "D": (0.95, "read latest (95/5, skewed to recent)"),
    "E": (0.95, "short ranges (scan heavy)"),
    "F": (0.5, "read-modify-write"),
}
"""The six YCSB core workloads."""

_STORES = {
    # per-store behaviour: (l3_mpki, mlp, base_cpi, tail_sensitivity)
    "redis": (1.1, 2.2, 0.8, 0.9),
    "voltdb": (1.4, 2.4, 0.9, 0.8),
    "memcached": (0.9, 2.0, 0.7, 0.9),
}

_CLOUDSUITE = (
    "data-serving",
    "data-caching",
    "data-analytics",
    "graph-analytics",
    "in-memory-analytics",
    "media-streaming",
    "web-search",
    "web-serving",
)
_CLOUDSUITE_LOADS = ("base", "peak")

_HIBENCH = (
    "micro-wordcount", "micro-sort", "micro-terasort", "micro-sleep",
    "micro-repartition", "sql-scan", "sql-join", "sql-aggregation",
    "ml-kmeans", "ml-bayes", "ml-lr", "ml-als", "ml-pca", "ml-gbt",
    "ml-rf", "ml-svd", "websearch-pagerank", "websearch-nutchindexing",
    "graph-nweight",
)
_HIBENCH_BANDWIDTH = {
    "micro-sort", "micro-terasort", "micro-repartition", "sql-scan",
    "websearch-pagerank",
}
_HIBENCH_LIGHT = {"micro-sleep", "micro-wordcount", "sql-aggregation"}


def _ycsb(store: str, letter: str):
    """One YCSB workload against one in-memory store."""
    mpki, mlp, cpi, tail = _STORES[store]
    read_frac, description = YCSB_WORKLOADS[letter]
    # Update-heavy workloads push more RFOs; scans raise the miss rate.
    store_rfo = 0.1 + 0.3 * (1.0 - read_frac)
    scan_boost = 1.5 if letter == "E" else 1.0
    return LATENCY_HEAVY_TEMPLATE.instantiate(
        f"{store}-ycsb-{letter.lower()}", SUITE,
        base_cpi=cpi,
        frontend_stall_frac=0.25,  # request dispatch is frontend-heavy
        l1_mpki=mpki * 9.0,
        l2_mpki=mpki * 3.0,
        l3_mpki=mpki * scan_boost,
        cache_sensitivity=0.2,
        mlp=mlp,
        prefetch_friendliness=0.35,
        prefetch_lead_ns=220,
        tail_sensitivity=tail,
        burst_ratio=3.0,
        burst_fraction=0.1,
        stores_pki=40 + 120 * (1.0 - read_frac),
        store_rfo_fraction=store_rfo,
        writeback_ratio=0.3,
        working_set_gb=12.0,
        latency_class=LATENCY_CLASS,
        description=description,
    )


def _cloudsuite(name: str, load: str):
    """One CloudSuite benchmark at one client-load level."""
    bandwidth_leaning = name in ("data-analytics", "media-streaming")
    template = MIXED_TEMPLATE if bandwidth_leaning else LATENCY_LIGHT_TEMPLATE
    boost = 1.4 if load == "peak" else 1.0
    base = template.instantiate(f"cloudsuite-{name}-{load}", SUITE)
    # Peak load raises intensity and burstiness relative to base load.
    from dataclasses import replace

    return replace(
        base,
        l3_mpki=min(base.l2_mpki, base.l3_mpki * boost),
        burst_fraction=min(1.0, base.burst_fraction * boost),
        tail_sensitivity=min(1.0, base.tail_sensitivity + 0.2),
    )


def _hibench(name: str):
    """One Spark/HiBench job."""
    if name in _HIBENCH_BANDWIDTH:
        return BANDWIDTH_TEMPLATE.instantiate(
            f"spark-{name}", SUITE,
            l3_mpki=14.0, working_set_gb=30.0, tail_sensitivity=0.1,
        )
    if name in _HIBENCH_LIGHT:
        return LATENCY_LIGHT_TEMPLATE.instantiate(
            f"spark-{name}", SUITE, l3_mpki=0.6,
        )
    return MIXED_TEMPLATE.instantiate(f"spark-{name}", SUITE)


def workloads() -> tuple:
    """All 53 cloud workload models (18 YCSB + 16 CloudSuite + 19 Spark)."""
    specs = []
    for store in _STORES:
        for letter in YCSB_WORKLOADS:
            specs.append(_ycsb(store, letter))
    for name in _CLOUDSUITE:
        for load in _CLOUDSUITE_LOADS:
            specs.append(_cloudsuite(name, load))
    for name in _HIBENCH:
        specs.append(_hibench(name))
    return tuple(sorted(specs, key=lambda w: w.name))
