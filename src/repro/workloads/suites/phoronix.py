"""Phoronix Test Suite: a broad cross-section of application benchmarks.

Phoronix contributes the long, diverse tail of the paper's population --
databases, web servers, compression, codecs, compilers, crypto, renderers,
and memory microbenchmarks.  Most are compute-leaning (they exist to test
CPUs), a sizeable minority are latency-sensitive services, and a few memory
streamers are bandwidth-bound.
"""

from __future__ import annotations

from repro.workloads.suites.common import (
    BANDWIDTH_TEMPLATE,
    COMPUTE_TEMPLATE,
    LATENCY_HEAVY_TEMPLATE,
    LATENCY_LIGHT_TEMPLATE,
    MIXED_TEMPLATE,
)

SUITE = "Phoronix"

_COMPUTE_TESTS = (
    "compress-7zip", "compress-zstd", "compress-lz4", "compress-xz",
    "openssl-rsa", "openssl-sha256", "x264-pts", "x265-pts", "svt-av1",
    "dav1d", "blender-pts", "c-ray", "povray-pts", "build-linux-kernel",
    "build-llvm", "build-gcc", "coremark", "gmpbench", "john-the-ripper",
    "namd-pts", "gromacs",
)
_LATENCY_TESTS = (
    "pgbench-ro", "pgbench-rw", "mariadb-oltp", "sqlite-pts",
    "rocksdb-readrandom", "rocksdb-readwhilewriting", "leveldb-readrandom",
    "redis-pts-get", "redis-pts-set", "memcached-pts", "keydb-pts",
    "nginx-pts", "apache-pts", "etcd-pts",
)
_MIXED_TESTS = (
    "ffmpeg-pts", "git-pts", "darktable", "gimp-pts", "inkscape-pts",
    "librewolf-speedometer", "node-web-tooling", "openjdk-dacapo",
    "php-pts", "pybench-pts", "numpy-pts",
)
_BANDWIDTH_TESTS = (
    "stream-copy", "stream-triad", "ramspeed-int", "ramspeed-fp",
    "cachebench-rmw", "tinymembench", "mbw-memcpy",
)


def workloads() -> tuple:
    """All 53 Phoronix workload models."""
    specs = []
    for name in _COMPUTE_TESTS:
        specs.append(COMPUTE_TEMPLATE.instantiate(name, SUITE))
    for name in _LATENCY_TESTS:
        template = (
            LATENCY_HEAVY_TEMPLATE
            if "rocksdb" in name or "redis" in name or "pgbench" in name
            else LATENCY_LIGHT_TEMPLATE
        )
        specs.append(
            template.instantiate(
                name, SUITE, tail_sensitivity=0.7, mlp=2.0,
                prefetch_friendliness=0.25,
            )
        )
    for name in _MIXED_TESTS:
        specs.append(MIXED_TEMPLATE.instantiate(name, SUITE))
    for name in _BANDWIDTH_TESTS:
        specs.append(
            BANDWIDTH_TEMPLATE.instantiate(
                name, SUITE, l3_mpki=25.0, mlp=14.0,
                prefetch_friendliness=0.95, working_set_gb=4.0,
            )
        )
    return tuple(sorted(specs, key=lambda w: w.name))
