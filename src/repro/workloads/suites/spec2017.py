"""SPEC CPU 2017: all 43 benchmarks, with the paper's anchors pinned.

Anchored behaviours (paper section in parentheses):

* ``603.bwaves_s``, ``619.lbm_s``, ``649.fotonik3d_s``, ``654.roms_s`` --
  bandwidth-bound, demanding >24 GB/s, exceeding CXL-A/B/C capacity and
  suffering 1.5-5.8x slowdowns there (Figure 8b).
* ``520.omnetpp_r`` / ``620.omnetpp_s`` -- discrete-event simulation,
  <1 GB/s average traffic, tail-dependent; <5% slowdown on every local CXL
  device but 2.9x under CXL+NUMA (Figure 8c/d).
* ``605.mcf_s`` -- LLC-miss dominated with bursty phases; the Spa tuning
  use case relocates its two 2 GB hot objects (§5.7, Figure 16b).
* ``602.gcc_s`` -- heavy slowdown in the first two thirds of execution
  (Figure 16a), store-buffer pressure (§5.5).
* ``631.deepsjeng_s`` -- mild oscillating slowdown (Figure 16c).
* ``519.lbm_r`` -- store-buffer (RFO) dominated slowdown (§5.5).
* ``508.namd_r`` -- <500 MB/s with occasional 3.4 GB/s spikes; used for
  the Figure 7a latency-spike demonstration.
* ``503.bwaves_r`` -- slowdown dominated by prefetch (cache) stalls, in
  contrast to 605.mcf's LLC-miss stalls (§5.5).
"""

from __future__ import annotations

from repro.workloads.base import Phase, WorkloadSpec
from repro.workloads.suites.common import (
    BANDWIDTH_TEMPLATE,
    COMPUTE_TEMPLATE,
    LATENCY_HEAVY_TEMPLATE,
    LATENCY_LIGHT_TEMPLATE,
    MIXED_TEMPLATE,
)

SUITE = "SPEC CPU 2017"

_OMNETPP = dict(
    base_cpi=0.7,
    frontend_stall_frac=0.12,
    loads_pki=300,
    stores_pki=60,
    l1_mpki=25.0,
    l2_mpki=8.0,
    l3_mpki=2.0,
    cache_sensitivity=0.2,
    mlp=2.0,
    prefetch_friendliness=0.95,
    prefetch_lead_ns=500,
    tail_sensitivity=1.0,
    burst_ratio=4.0,
    burst_fraction=0.3,
    store_rfo_fraction=0.12,
    writeback_ratio=0.3,
    working_set_gb=2.0,
)

_BANDWIDTH_SPEED = dict(
    threads=3,
    base_cpi=0.45,
    l1_mpki=80.0,
    l2_mpki=55.0,
    l3_mpki=32.0,
    mlp=14.0,
    prefetch_friendliness=0.92,
    prefetch_lead_ns=600,
    tail_sensitivity=0.05,
    burst_ratio=1.1,
    burst_fraction=0.02,
    store_rfo_fraction=0.45,
    writeback_ratio=0.8,
    working_set_gb=12.0,
)

_MCF_PHASES = (
    Phase(0.12, {"l3_mpki": 4.5, "mlp": 0.7}, label="hot-1"),
    Phase(0.18, {"l3_mpki": 0.3}, label="cool-1"),
    Phase(0.15, {"l3_mpki": 3.8, "mlp": 0.75}, label="hot-2"),
    Phase(0.25, {"l3_mpki": 0.35}, label="cool-2"),
    Phase(0.14, {"l3_mpki": 3.2, "mlp": 0.8}, label="hot-3"),
    Phase(0.16, {"l3_mpki": 0.3}, label="cool-3"),
)

_GCC_PHASES = (
    Phase(0.65, {"l3_mpki": 3.0, "stores_pki": 1.8}, label="compile"),
    Phase(0.35, {"l3_mpki": 0.25, "stores_pki": 0.5}, label="link"),
)

_DEEPSJENG_PHASES = (
    Phase(0.3, {"l3_mpki": 1.3}, label="opening"),
    Phase(0.4, {"l3_mpki": 0.8}, label="midgame"),
    Phase(0.3, {"l3_mpki": 1.15}, label="endgame"),
)

_ANCHORS = {
    # -- bandwidth-bound fpspeed quartet (Figure 8b tail) ------------------
    "603.bwaves_s": (BANDWIDTH_TEMPLATE, dict(_BANDWIDTH_SPEED)),
    "619.lbm_s": (
        BANDWIDTH_TEMPLATE,
        dict(_BANDWIDTH_SPEED, stores_pki=220, store_rfo_fraction=0.6,
             writeback_ratio=0.95, l3_mpki=28.0),
    ),
    "649.fotonik3d_s": (
        BANDWIDTH_TEMPLATE,
        dict(_BANDWIDTH_SPEED, l3_mpki=30.0, prefetch_friendliness=0.95,
             prefetch_lead_ns=450),
    ),
    "654.roms_s": (BANDWIDTH_TEMPLATE, dict(_BANDWIDTH_SPEED, l3_mpki=26.0)),
    # -- rate versions: still streaming-heavy, below device saturation -----
    "503.bwaves_r": (
        BANDWIDTH_TEMPLATE,
        dict(base_cpi=0.5, l1_mpki=55.0, l2_mpki=30.0, l3_mpki=14.0, mlp=12.0,
             prefetch_friendliness=0.93, prefetch_lead_ns=300,
             tail_sensitivity=0.05, working_set_gb=10.0,
             store_rfo_fraction=0.3, writeback_ratio=0.5),
    ),
    "519.lbm_r": (
        BANDWIDTH_TEMPLATE,
        dict(base_cpi=0.5, l1_mpki=60.0, l2_mpki=35.0, l3_mpki=16.0,
             stores_pki=200, store_rfo_fraction=0.5, writeback_ratio=0.8,
             mlp=10.0, prefetch_friendliness=0.9, working_set_gb=8.0),
    ),
    "549.fotonik3d_r": (
        BANDWIDTH_TEMPLATE,
        dict(l3_mpki=15.0, l2_mpki=30.0, l1_mpki=50.0, mlp=11.0,
             prefetch_friendliness=0.94, prefetch_lead_ns=320,
             working_set_gb=10.0),
    ),
    "554.roms_r": (
        BANDWIDTH_TEMPLATE,
        dict(l3_mpki=13.0, l2_mpki=28.0, l1_mpki=48.0, mlp=11.0,
             prefetch_friendliness=0.92, prefetch_lead_ns=330,
             working_set_gb=10.0),
    ),
    # -- the tail-anomaly pair ---------------------------------------------
    "520.omnetpp_r": (LATENCY_LIGHT_TEMPLATE, dict(_OMNETPP)),
    "620.omnetpp_s": (
        LATENCY_LIGHT_TEMPLATE,
        dict(_OMNETPP, l3_mpki=2.2, working_set_gb=4.0),
    ),
    # -- phase-structured workloads (Figure 16) -----------------------------
    "605.mcf_s": (
        LATENCY_HEAVY_TEMPLATE,
        dict(base_cpi=0.8, l1_mpki=40.0, l2_mpki=16.0, l3_mpki=1.0,
             cache_sensitivity=0.25, mlp=3.2, prefetch_friendliness=0.35,
             prefetch_lead_ns=250, tail_sensitivity=0.5, burst_ratio=2.5,
             burst_fraction=0.1, stores_pki=70, store_rfo_fraction=0.15,
             working_set_gb=6.0, phases=_MCF_PHASES),
    ),
    "505.mcf_r": (
        LATENCY_HEAVY_TEMPLATE,
        dict(base_cpi=0.8, l1_mpki=38.0, l2_mpki=15.0, l3_mpki=1.5,
             mlp=3.0, prefetch_friendliness=0.4, tail_sensitivity=0.5,
             stores_pki=70, store_rfo_fraction=0.15, working_set_gb=4.0),
    ),
    "602.gcc_s": (
        MIXED_TEMPLATE,
        dict(base_cpi=0.65, l1_mpki=28.0, l2_mpki=9.0, l3_mpki=1.1,
             mlp=3.0, prefetch_friendliness=0.5, tail_sensitivity=0.4,
             stores_pki=160, store_rfo_fraction=0.35, writeback_ratio=0.5,
             working_set_gb=6.0, phases=_GCC_PHASES),
    ),
    "631.deepsjeng_s": (
        MIXED_TEMPLATE,
        dict(base_cpi=0.6, l1_mpki=18.0, l2_mpki=6.0, l3_mpki=0.7,
             mlp=2.5, prefetch_friendliness=0.45, tail_sensitivity=0.35,
             stores_pki=90, store_rfo_fraction=0.2, working_set_gb=7.0,
             phases=_DEEPSJENG_PHASES),
    ),
    # -- Figure 7a: quiet with rare spikes -----------------------------------
    "508.namd_r": (
        COMPUTE_TEMPLATE,
        dict(base_cpi=0.45, l1_mpki=6.0, l2_mpki=1.2, l3_mpki=0.12,
             mlp=4.0, burst_ratio=8.0, burst_fraction=0.02,
             working_set_gb=1.0),
    ),
    "607.cactuBSSN_s": (
        MIXED_TEMPLATE,
        dict(l1_mpki=35.0, l2_mpki=14.0, l3_mpki=4.5,
             prefetch_friendliness=0.85, prefetch_lead_ns=280, mlp=7.0,
             tail_sensitivity=0.1, working_set_gb=9.0),
    ),
}
"""Hand-anchored SPEC workloads: (template, overrides)."""

_REMAINING = {
    # intrate
    "500.perlbench_r": COMPUTE_TEMPLATE,
    "502.gcc_r": MIXED_TEMPLATE,
    "523.xalancbmk_r": LATENCY_LIGHT_TEMPLATE,
    "525.x264_r": COMPUTE_TEMPLATE,
    "531.deepsjeng_r": COMPUTE_TEMPLATE,
    "541.leela_r": COMPUTE_TEMPLATE,
    "548.exchange2_r": COMPUTE_TEMPLATE,
    "557.xz_r": MIXED_TEMPLATE,
    # fprate
    "507.cactuBSSN_r": MIXED_TEMPLATE,
    "510.parest_r": MIXED_TEMPLATE,
    "511.povray_r": COMPUTE_TEMPLATE,
    "521.wrf_r": MIXED_TEMPLATE,
    "526.blender_r": COMPUTE_TEMPLATE,
    "527.cam4_r": MIXED_TEMPLATE,
    "538.imagick_r": COMPUTE_TEMPLATE,
    "544.nab_r": COMPUTE_TEMPLATE,
    # intspeed
    "600.perlbench_s": COMPUTE_TEMPLATE,
    "623.xalancbmk_s": LATENCY_LIGHT_TEMPLATE,
    "625.x264_s": COMPUTE_TEMPLATE,
    "641.leela_s": COMPUTE_TEMPLATE,
    "648.exchange2_s": COMPUTE_TEMPLATE,
    "657.xz_s": MIXED_TEMPLATE,
    # fpspeed
    "621.wrf_s": MIXED_TEMPLATE,
    "627.cam4_s": MIXED_TEMPLATE,
    "628.pop2_s": MIXED_TEMPLATE,
    "638.imagick_s": COMPUTE_TEMPLATE,
    "644.nab_s": COMPUTE_TEMPLATE,
}
"""Un-anchored SPEC workloads: template only, jittered per name."""


def workloads() -> tuple:
    """All 43 SPEC CPU 2017 workload models."""
    specs = []
    for name, (template, overrides) in _ANCHORS.items():
        specs.append(template.instantiate(name, SUITE, **overrides))
    for name, template in _REMAINING.items():
        specs.append(template.instantiate(name, SUITE))
    return tuple(sorted(specs, key=lambda w: w.name))
