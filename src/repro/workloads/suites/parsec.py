"""PARSEC 3.0: the 13 multithreaded shared-memory benchmarks.

PARSEC spans the sensitivity spectrum: ``streamcluster`` and ``canneal``
are memory-hungry (streaming and pointer-chasing respectively), while
``blackscholes`` or ``swaptions`` barely touch DRAM.  The suite's
working sets are small enough that all 13 fit on every testbed device.
"""

from __future__ import annotations

from repro.workloads.suites.common import (
    BANDWIDTH_TEMPLATE,
    COMPUTE_TEMPLATE,
    LATENCY_HEAVY_TEMPLATE,
    LATENCY_LIGHT_TEMPLATE,
    MIXED_TEMPLATE,
)

SUITE = "PARSEC"

_BENCHMARKS = {
    "blackscholes": (COMPUTE_TEMPLATE, dict(working_set_gb=0.6)),
    "bodytrack": (COMPUTE_TEMPLATE, dict(working_set_gb=1.0)),
    "canneal": (
        LATENCY_HEAVY_TEMPLATE,
        dict(l3_mpki=4.0, l2_mpki=12.0, l1_mpki=30.0, mlp=2.0,
             prefetch_friendliness=0.2, tail_sensitivity=0.7,
             working_set_gb=2.5),
    ),
    "dedup": (MIXED_TEMPLATE, dict(working_set_gb=3.0)),
    "facesim": (MIXED_TEMPLATE, dict(working_set_gb=1.5)),
    "ferret": (LATENCY_LIGHT_TEMPLATE, dict(working_set_gb=2.0)),
    "fluidanimate": (
        MIXED_TEMPLATE,
        dict(l3_mpki=2.5, prefetch_friendliness=0.7, working_set_gb=1.2),
    ),
    "freqmine": (LATENCY_LIGHT_TEMPLATE, dict(working_set_gb=2.0)),
    "raytrace": (COMPUTE_TEMPLATE, dict(working_set_gb=1.5)),
    "streamcluster": (
        BANDWIDTH_TEMPLATE,
        dict(l3_mpki=18.0, l2_mpki=30.0, l1_mpki=50.0, mlp=10.0,
             prefetch_friendliness=0.9, tail_sensitivity=0.05,
             working_set_gb=1.5, store_rfo_fraction=0.3,
             writeback_ratio=0.5),
    ),
    "swaptions": (COMPUTE_TEMPLATE, dict(working_set_gb=0.5)),
    "vips": (COMPUTE_TEMPLATE, dict(working_set_gb=1.5)),
    "x264": (COMPUTE_TEMPLATE, dict(working_set_gb=1.0)),
}


def workloads() -> tuple:
    """All 13 PARSEC workload models."""
    return tuple(
        sorted(
            (
                template.instantiate(name, SUITE, **overrides)
                for name, (template, overrides) in _BENCHMARKS.items()
            ),
            key=lambda w: w.name,
        )
    )
