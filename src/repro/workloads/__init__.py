"""Workload substrate: specifications, synthetic kernels, suites, registry.

The paper characterizes 265 real workloads drawn from SPEC CPU 2017, GAPBS,
PARSEC, PBBS, ML/AI (GPT-2, Llama, DLRM, MLPerf), cloud systems (Redis,
VoltDB, CloudSuite, Spark, Phoronix), and more.  Melody's analysis consumes
each workload's *memory behaviour* -- intensity, locality, parallelism,
read/write mix, prefetchability, burstiness, phase structure -- which is
exactly what :class:`~repro.workloads.base.WorkloadSpec` captures.  The
suite modules regenerate a named model for every workload, and
:mod:`repro.workloads.registry` assembles the full 265-entry population.
"""

from repro.workloads.base import Phase, WorkloadSpec
from repro.workloads.registry import (
    REGISTRY_SIZE,
    all_workloads,
    workload_by_name,
    workloads_by_suite,
    workloads_fitting,
)

__all__ = [
    "Phase",
    "WorkloadSpec",
    "REGISTRY_SIZE",
    "all_workloads",
    "workload_by_name",
    "workloads_by_suite",
    "workloads_fitting",
]
