"""Synthetic memory-access trace generators.

The workload specs in this package describe programs by their *aggregate*
memory behaviour (miss rates, MLP, prefetchability).  This module provides
the level below: actual address streams with the canonical access patterns
those aggregates arise from --

* ``sequential_stream`` -- unit-stride scans (the prefetcher's best case),
* ``strided_stream`` -- constant large strides (detectable but sparser),
* ``random_uniform`` -- uniform random touches over a working set,
* ``zipf_accesses`` -- skewed hot/cold reuse (cache-friendly),
* ``pointer_chase`` -- dependent chains (serialized misses, MLP = 1),
* ``mixed_trace`` -- weighted interleavings of the above.

Traces feed :mod:`repro.cpu.cachesim`, which derives the spec-level
parameters (per-level MPKI, prefetch coverage) from first principles --
grounding the registry's numbers in microarchitectural simulation instead
of assertion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.rng import DEFAULT_SEED, generator_for
from repro.units import CACHELINE_BYTES


@dataclass(frozen=True)
class AccessTrace:
    """A memory-access trace at cacheline granularity.

    ``addresses`` are byte addresses; ``dependent[i]`` marks accesses whose
    address was produced by the previous load (pointer chasing) -- the
    cache simulator uses it to compute effective MLP, and prefetchers
    cannot run ahead of it.
    """

    name: str
    addresses: np.ndarray  # int64 byte addresses
    dependent: np.ndarray  # bool per access
    is_write: np.ndarray  # bool per access

    def __post_init__(self) -> None:
        if not (
            len(self.addresses) == len(self.dependent) == len(self.is_write)
        ):
            raise WorkloadError(f"{self.name}: trace arrays length mismatch")
        if len(self.addresses) == 0:
            raise WorkloadError(f"{self.name}: empty trace")

    @property
    def length(self) -> int:
        """Number of accesses."""
        return len(self.addresses)

    @property
    def lines(self) -> np.ndarray:
        """Cacheline indices (addresses / 64)."""
        return self.addresses // CACHELINE_BYTES

    @property
    def footprint_bytes(self) -> int:
        """Distinct cachelines touched x line size."""
        return int(np.unique(self.lines).size) * CACHELINE_BYTES

    def concat(self, other: "AccessTrace", name: str = None) -> "AccessTrace":
        """Concatenate two traces."""
        return AccessTrace(
            name=name or f"{self.name}+{other.name}",
            addresses=np.concatenate([self.addresses, other.addresses]),
            dependent=np.concatenate([self.dependent, other.dependent]),
            is_write=np.concatenate([self.is_write, other.is_write]),
        )


def _validated(n_accesses: int, working_set_bytes: int) -> None:
    if n_accesses <= 0:
        raise WorkloadError(f"n_accesses must be positive: {n_accesses}")
    if working_set_bytes < CACHELINE_BYTES:
        raise WorkloadError(
            f"working set below one cacheline: {working_set_bytes}"
        )


def sequential_stream(
    n_accesses: int,
    working_set_bytes: int,
    element_bytes: int = 8,
    write_fraction: float = 0.0,
    seed: int = DEFAULT_SEED,
) -> AccessTrace:
    """Unit-stride scan over ``element_bytes`` elements, wrapping around.

    With the default 8-byte elements each cacheline is touched 8 times in
    a row -- the spatial-locality structure real streaming kernels have,
    and what gives the prefetcher time to run ahead.
    """
    _validated(n_accesses, working_set_bytes)
    if not 1 <= element_bytes <= CACHELINE_BYTES:
        raise WorkloadError(f"element size out of range: {element_bytes}")
    addresses = (
        np.arange(n_accesses, dtype=np.int64) * element_bytes
    ) % working_set_bytes
    rng = generator_for(seed, "trace-seq", str(n_accesses))
    return AccessTrace(
        name="sequential",
        addresses=addresses,
        dependent=np.zeros(n_accesses, dtype=bool),
        is_write=rng.random(n_accesses) < write_fraction,
    )


def strided_stream(
    n_accesses: int,
    working_set_bytes: int,
    stride_bytes: int = 256,
    write_fraction: float = 0.0,
    seed: int = DEFAULT_SEED,
) -> AccessTrace:
    """Constant-stride scan (stride in bytes, typically > one line)."""
    _validated(n_accesses, working_set_bytes)
    if stride_bytes < CACHELINE_BYTES:
        raise WorkloadError(f"stride below one line: {stride_bytes}")
    offsets = (
        np.arange(n_accesses, dtype=np.int64) * stride_bytes
    ) % working_set_bytes
    rng = generator_for(seed, "trace-stride", str(stride_bytes))
    return AccessTrace(
        name=f"stride-{stride_bytes}",
        addresses=(offsets // CACHELINE_BYTES) * CACHELINE_BYTES,
        dependent=np.zeros(n_accesses, dtype=bool),
        is_write=rng.random(n_accesses) < write_fraction,
    )


def random_uniform(
    n_accesses: int,
    working_set_bytes: int,
    write_fraction: float = 0.0,
    seed: int = DEFAULT_SEED,
) -> AccessTrace:
    """Uniform random line touches (worst-case locality, independent)."""
    _validated(n_accesses, working_set_bytes)
    n_lines = working_set_bytes // CACHELINE_BYTES
    rng = generator_for(seed, "trace-rand", str(n_accesses))
    lines = rng.integers(0, n_lines, n_accesses, dtype=np.int64)
    return AccessTrace(
        name="random",
        addresses=lines * CACHELINE_BYTES,
        dependent=np.zeros(n_accesses, dtype=bool),
        is_write=rng.random(n_accesses) < write_fraction,
    )


def zipf_accesses(
    n_accesses: int,
    working_set_bytes: int,
    skew: float = 1.1,
    write_fraction: float = 0.0,
    seed: int = DEFAULT_SEED,
) -> AccessTrace:
    """Zipf-skewed reuse: a hot head of lines absorbs most accesses."""
    _validated(n_accesses, working_set_bytes)
    if skew <= 1.0:
        raise WorkloadError(f"zipf skew must exceed 1: {skew}")
    n_lines = working_set_bytes // CACHELINE_BYTES
    rng = generator_for(seed, "trace-zipf", f"{skew}")
    ranks = rng.zipf(skew, n_accesses).astype(np.int64)
    ranks = np.clip(ranks - 1, 0, n_lines - 1)
    # Permute rank -> line so hot lines are scattered across the set space.
    perm = generator_for(seed, "trace-zipf-perm", f"{n_lines}").permutation(
        n_lines
    )
    lines = perm[ranks]
    return AccessTrace(
        name=f"zipf-{skew:g}",
        addresses=lines * CACHELINE_BYTES,
        dependent=np.zeros(n_accesses, dtype=bool),
        is_write=rng.random(n_accesses) < write_fraction,
    )


def pointer_chase(
    n_accesses: int,
    working_set_bytes: int,
    seed: int = DEFAULT_SEED,
) -> AccessTrace:
    """A dependent chain through a random permutation (MIO's pattern).

    Every access is marked dependent: its address came from the previous
    load, so misses serialize and prefetchers cannot predict it.
    """
    _validated(n_accesses, working_set_bytes)
    n_lines = working_set_bytes // CACHELINE_BYTES
    rng = generator_for(seed, "trace-chase", str(n_lines))
    # Build one random cycle over all lines (a permutation with a single
    # cycle), then walk it.
    order = rng.permutation(n_lines).astype(np.int64)
    next_line = np.empty(n_lines, dtype=np.int64)
    next_line[order[:-1]] = order[1:]
    next_line[order[-1]] = order[0]
    lines = np.empty(n_accesses, dtype=np.int64)
    current = order[0]
    for i in range(n_accesses):
        lines[i] = current
        current = next_line[current]
    return AccessTrace(
        name="pointer-chase",
        addresses=lines * CACHELINE_BYTES,
        dependent=np.ones(n_accesses, dtype=bool),
        is_write=np.zeros(n_accesses, dtype=bool),
    )


def mixed_trace(
    components,
    seed: int = DEFAULT_SEED,
    name: str = "mixed",
) -> AccessTrace:
    """Random interleaving of component traces by weight.

    ``components`` is a sequence of ``(trace, weight)``; each output access
    is drawn from one component's stream (consumed in order), approximating
    a program whose inner loops alternate between patterns.
    """
    components = list(components)
    if not components:
        raise WorkloadError("mixed trace needs at least one component")
    weights = np.array([w for _, w in components], dtype=float)
    if (weights <= 0).any():
        raise WorkloadError("component weights must be positive")
    weights = weights / weights.sum()
    total = sum(t.length for t, _ in components)
    rng = generator_for(seed, "trace-mix", name)
    picks = rng.choice(len(components), size=total, p=weights)
    cursors = [0] * len(components)
    addresses = np.empty(total, dtype=np.int64)
    dependent = np.empty(total, dtype=bool)
    is_write = np.empty(total, dtype=bool)
    count = 0
    for pick in picks:
        trace = components[pick][0]
        cursor = cursors[pick]
        if cursor >= trace.length:
            continue
        addresses[count] = trace.addresses[cursor]
        dependent[count] = trace.dependent[cursor]
        is_write[count] = trace.is_write[cursor]
        cursors[pick] = cursor + 1
        count += 1
    if count == 0:
        raise WorkloadError("mixed trace produced no accesses")
    return AccessTrace(
        name=name,
        addresses=addresses[:count],
        dependent=dependent[:count],
        is_write=is_write[:count],
    )
