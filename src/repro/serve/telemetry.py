"""Per-request telemetry: the glue between serve and ``repro.obs``.

One :class:`RequestTelemetry` rides along with every HTTP request from
parse to response.  It carries the request's :class:`TraceContext`
(accepted from a ``traceparent`` header or freshly generated), collects
the serve-layer **span records** (parse, queue-wait, coalesce, execute,
per-point cells) that become the ``/debug/requests/<id>`` span tree, and
assembles the flat field set of the request's **wide event**.

Clocks: span records store ``start_s`` relative to the server's start
(readable in debug output); when merged into the master
:class:`~repro.obs.trace.TraceBuffer` they are converted back to raw
``time.perf_counter()`` nanoseconds -- the same base the campaign
runtime's ``CLOCK_WALL`` batch spans use -- so serve, runtime, and
simulator spans line up on one Perfetto timeline.

Everything here is observational: ids come from ``os.urandom`` (never a
model RNG), timings are read, results are untouched.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.obs.trace import CLOCK_SIM, CLOCK_WALL, TraceBuffer, TraceContext


def span_record(
    name: str,
    cat: str,
    start: float,
    end: float,
    zero: float,
    parent_id: Optional[str] = None,
    span_id: Optional[str] = None,
    **args: object,
) -> Dict[str, object]:
    """One flat serve-layer span record (times in perf_counter seconds,
    stored relative to the server's start ``zero``)."""
    record: Dict[str, object] = {
        "span_id": span_id if span_id is not None else os.urandom(8).hex(),
        "parent_id": parent_id,
        "name": name,
        "cat": cat,
        "start_s": round(start - zero, 6),
        "dur_s": round(max(end - start, 0.0), 6),
    }
    if args:
        record["args"] = dict(args)
    return record


def level_for_status(status: int) -> str:
    """Wide-event severity from HTTP status (5xx error, 4xx warn)."""
    if status >= 500 or status == 0:
        return "error"
    if status >= 400:
        return "warn"
    return "info"


class RequestTelemetry:
    """Everything observability knows about one in-flight request."""

    def __init__(
        self,
        ctx: TraceContext,
        zero: float,
        peer: str = "",
        parse_s: float = 0.0,
    ):
        self.request_id = os.urandom(8).hex()
        self.ctx = ctx
        self.zero = zero
        self.peer = peer
        self.started = time.perf_counter()
        self.parse_s = float(parse_s)
        self.status = 0
        self.tenant = "anon"
        self.role = "none"
        self.coalesced = False
        self.query_key: Optional[str] = None
        self.queue_wait_s = 0.0
        self.exec_s = 0.0
        self.bytes_sent = 0
        self.wall_track: Optional[int] = None  # allocated by the app
        self.extra: Dict[str, object] = {}
        self.spans: List[Dict[str, object]] = []
        if self.parse_s > 0:
            self.add_span(
                "http.parse", "serve",
                self.started - self.parse_s, self.started,
            )

    # -- span records -----------------------------------------------------

    def add_span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        **args: object,
    ) -> str:
        """Record one serve-layer span (``start``/``end`` in perf_counter
        seconds); returns its span id for use as a child's parent."""
        record = span_record(
            name, cat, start, end, self.zero,
            parent_id=parent_id if parent_id is not None
            else self.ctx.span_id,
            span_id=span_id,
            **args,
        )
        self.spans.append(record)
        return str(record["span_id"])

    @contextmanager
    def span(
        self, name: str, cat: str, parent_id: Optional[str] = None,
        **args: object,
    ) -> Iterator[None]:
        """Time a block as one span record."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_span(
                name, cat, start, time.perf_counter(),
                parent_id=parent_id, **args,
            )

    def close(self, total_s: float) -> None:
        """Seal the record with the root ``request`` span.

        The root carries the request's own span id, so child records
        (which default their ``parent_id`` to it) nest underneath, and
        its ``parent_id`` is the *caller's* span from ``traceparent`` --
        the cross-process link.
        """
        self.spans.insert(0, {
            "span_id": self.ctx.span_id,
            "parent_id": self.ctx.parent_id,
            "name": "request",
            "cat": "serve",
            "start_s": round(self.started - self.parse_s - self.zero, 6),
            "dur_s": round(total_s + self.parse_s, 6),
        })

    # -- exports ----------------------------------------------------------

    def wide_fields(
        self, method: str, path: str, total_s: float
    ) -> Dict[str, object]:
        """The flat field set of this request's wide event."""
        fields: Dict[str, object] = {
            "request_id": self.request_id,
            "trace_id": self.ctx.trace_id,
            "span_id": self.ctx.span_id,
            "parent_id": self.ctx.parent_id,
            "tenant": self.tenant,
            "method": method,
            "path": path,
            "peer": self.peer,
            "status": self.status,
            "role": self.role,
            "coalesced": self.coalesced,
            "query_key": self.query_key,
            "parse_s": round(self.parse_s, 6),
            "queue_wait_s": round(self.queue_wait_s, 6),
            "exec_s": round(self.exec_s, 6),
            "total_s": round(total_s, 6),
            "bytes": self.bytes_sent,
        }
        fields.update(self.extra)
        return fields

    def merge_into(self, buffer: TraceBuffer, track: int) -> None:
        """Append the span records to a trace buffer as CLOCK_WALL spans."""
        for record in self.spans:
            args = dict(record.get("args", ()))
            args.update(
                trace_id=self.ctx.trace_id,
                request_id=self.request_id,
                span_id=record["span_id"],
            )
            if record.get("parent_id"):
                args["parent_id"] = record["parent_id"]
            buffer.add(
                str(record["name"]),
                str(record["cat"]),
                start_ns=(self.zero + float(record["start_s"])) * 1e9,
                dur_ns=float(record["dur_s"]) * 1e9,
                track=track,
                clock=CLOCK_WALL,
                **args,
            )


def merge_job_buffer(
    master: TraceBuffer,
    job_buffer: TraceBuffer,
    trace_id: str,
    request_id: str,
    wall_track: int,
    sim_track_base: int,
) -> int:
    """Fold one job's private trace buffer into the master export.

    Runtime ``CLOCK_WALL`` spans land on the leader request's wall
    track; ``CLOCK_SIM`` per-request tracks are shifted by
    ``sim_track_base`` so concurrent jobs never collide.  Every span is
    annotated with the owning trace/request id.  Returns the number of
    sim tracks consumed (the caller advances its allocator by this).
    """
    sim_tracks = job_buffer.tracks(CLOCK_SIM)
    remap = {old: sim_track_base + i for i, old in enumerate(sim_tracks)}
    for span in job_buffer.spans:
        args = dict(span.args)
        args.setdefault("trace_id", trace_id)
        args.setdefault("request_id", request_id)
        if span.clock == CLOCK_SIM:
            track = remap[span.track]
        else:
            track = wall_track
        master.add(
            span.name, span.cat, span.start_ns, span.dur_ns,
            track=track, clock=span.clock, **args,
        )
    return len(sim_tracks)
