"""The ``repro serve`` application: event loop, worker pool, lifecycle.

Architecture (one paragraph): a single asyncio event loop owns every
piece of shared mutable state -- the coalescer's in-flight map, the
admission counters, the per-job event fan-out -- so none of it needs
locks.  Actual characterization work happens in a small
:class:`~concurrent.futures.ThreadPoolExecutor`: each leader job builds
a throwaway :class:`~repro.runtime.executor.CampaignEngine` (``jobs=1``,
inline resilient mode) over the server's one shared
:class:`~repro.runtime.cache.RunCache`, installs the query's fault plan
and chaos policy into its own context (ContextVars, so neighbours are
untouched), and runs the sweep point by point, posting progress back to
the loop with ``call_soon_threadsafe``.  The thread-safe pieces the
worker threads *do* share -- the run cache and the metrics registry --
are exactly the ones the concurrency sweep hardened (see DESIGN.md).

Lifecycle: ``SIGTERM``/``SIGINT`` stop the accept loop, in-flight jobs
get ``drain_s`` seconds to finish, open connections are then closed,
and the process exits 0.  A poisoned query (chaos, doomed cells)
degrades its own response document; it cannot take the server down.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Union

from repro.errors import ConfigurationError
from repro.obs.events import (
    LEVELS,
    EventLogger,
    NullEventLogger,
    build_event,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    metrics,
)
from repro.obs.slo import SloTracker
from repro.obs.trace import TraceBuffer, TraceContext, thread_tracing
from repro.runtime.cache import RunCache
from repro.serve.admission import AdmissionController
from repro.serve.coalescer import Coalescer, Job
from repro.serve.handlers import (
    error_body,
    handle_request,
    respond_draining,
)
from repro.serve.protocol import ProtocolError, Request, read_request, \
    write_response
from repro.serve.query import Query, build_engine, execute_query, \
    render_document
from repro.serve.telemetry import (
    RequestTelemetry,
    level_for_status,
    merge_job_buffer,
    span_record,
)


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one server instance (the CLI flags, as data)."""

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 4
    max_inflight: int = 0
    """Leader jobs executing at once; 0 means "same as workers"."""
    max_queue: int = 32
    per_tenant: int = 16
    cell_retries: int = 2
    cell_timeout: Optional[float] = None
    cache_dir: Optional[str] = None
    allow_chaos: bool = False
    drain_s: float = 5.0
    log_level: str = "info"
    """Wide-event log threshold (``off`` disables the ndjson log; the
    flight recorder and SLO tracker keep working regardless)."""
    event_log: Optional[str] = None
    """Append the ndjson event log here instead of stdout."""
    event_sample: int = 1
    """Keep every Nth request wide event (lifecycle events always kept)."""
    trace_path: Optional[str] = None
    """Write a merged Perfetto trace (serve + runtime + simulator spans)
    here on shutdown; also enables per-job simulator tracing."""
    trace_sample: int = 1
    """Per-job simulator trace sampling (every Nth simulated request)."""
    flight_capacity: int = 256
    """How many recent requests ``/debug/requests`` remembers."""
    slo_window_s: float = 300.0
    """Rolling window of the latency/error-budget SLO tracker."""

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                "port must be 0-65535 (0 picks an ephemeral port)"
            )
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.max_inflight < 0:
            raise ConfigurationError("max_inflight must be >= 0")
        if self.max_queue < 1 or self.per_tenant < 1:
            raise ConfigurationError("admission limits must be >= 1")
        if self.cell_retries < 1:
            raise ConfigurationError("cell_retries must be >= 1")
        if self.drain_s < 0:
            raise ConfigurationError("drain_s must be >= 0")
        if self.log_level != "off" and self.log_level not in LEVELS:
            raise ConfigurationError(
                f"log_level must be one of {sorted(LEVELS)} or 'off', "
                f"got {self.log_level!r}"
            )
        if self.event_sample < 1 or self.trace_sample < 1:
            raise ConfigurationError("sampling rates must be >= 1")
        if self.flight_capacity < 1:
            raise ConfigurationError("flight_capacity must be >= 1")
        if self.slo_window_s <= 0:
            raise ConfigurationError("slo_window_s must be > 0")

    @property
    def effective_inflight(self) -> int:
        return self.max_inflight or self.workers


class ServeApp:
    """One characterization-as-a-service instance."""

    def __init__(self, config: ServeConfig = ServeConfig()):
        self.config = config
        self.cache = RunCache(config.cache_dir)
        self.coalescer = Coalescer()
        self.admission = AdmissionController(
            max_inflight=config.effective_inflight,
            max_queue=config.max_queue,
            per_tenant=config.per_tenant,
        )
        self.registry = MetricsRegistry()
        self.events: Union[EventLogger, NullEventLogger] = NullEventLogger()
        self.flight = FlightRecorder(config.flight_capacity)
        self.slo = SloTracker(window_s=config.slo_window_s)
        self.trace: Optional[TraceBuffer] = (
            TraceBuffer() if config.trace_path is not None else None
        )
        self.requests = 0
        self.port: Optional[int] = None
        self._started_at = time.monotonic()
        self._epoch = time.perf_counter()
        self._previous_registry = None
        self._event_file = None
        self._next_wall_track = 1
        self._next_sim_track = 0
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._stop = asyncio.Event()

    # -- request observability ---------------------------------------------

    def telemetry_for(self, request: Request) -> RequestTelemetry:
        """One request's telemetry: trace context + span collector.

        A valid ``traceparent`` header continues the caller's trace
        (their span becomes our parent); anything else starts a fresh
        one.  Ids come from ``os.urandom`` -- observational only.
        """
        ctx = TraceContext.from_traceparent(request.header("traceparent"))
        if ctx is None:
            ctx = TraceContext.generate()
        return RequestTelemetry(
            ctx=ctx,
            zero=self._epoch,
            peer=request.peer,
            parse_s=request.parse_s,
        )

    def wall_track_for(self, telemetry: RequestTelemetry) -> int:
        """The request's row in the merged wall-clock trace timeline."""
        if telemetry.wall_track is None:
            telemetry.wall_track = self._next_wall_track
            self._next_wall_track += 1
        return telemetry.wall_track

    def observe_request(
        self, request: Request, telemetry: RequestTelemetry
    ) -> None:
        """Seal one finished request: wide event, flight, SLO, metrics.

        This is the single exit point of every request, whatever route
        or error path it took.  Everything here reads timings and
        statuses -- the response bytes are already on the wire.
        """
        total_s = time.perf_counter() - telemetry.started
        telemetry.close(total_s)
        record = build_event(
            "request",
            level=level_for_status(telemetry.status),
            **telemetry.wide_fields(request.method, request.path, total_s),
        )
        self.events.write(record, sampled=True)
        self.flight.record(record, telemetry.spans)
        error = telemetry.status >= 500 or telemetry.status == 0
        endpoint = f"{request.method} {request.path}"
        self.slo.observe(endpoint, total_s, error=error)
        self.slo.observe(
            f"tenant:{telemetry.tenant}", total_s, error=error
        )
        registry = metrics()
        if registry.enabled:
            registry.histogram(
                "serve.request_seconds",
                path=request.path, status=str(telemetry.status),
            ).observe(total_s)
            if telemetry.exec_s > 0:
                registry.histogram(
                    "serve.exec_seconds", path=request.path
                ).observe(telemetry.exec_s)
        if self.trace is not None:
            telemetry.merge_into(self.trace, self.wall_track_for(telemetry))

    # -- job execution -----------------------------------------------------

    def _run_query(
        self, query: Query, on_point, buffer, parent_span_id: str,
        cell_spans: List[Dict[str, object]],
    ) -> tuple:
        """Worker-thread body: execute one query, render its bytes.

        A fresh engine per job keeps failure state (quarantine ledger,
        retry policy) job-local while the shared cache still makes every
        job's results visible to the next one.  ``buffer`` (when the
        server traces) becomes this thread's private
        :class:`TraceBuffer` -- concurrent jobs never interleave spans --
        and each finished point leaves one ``cell[i]`` span record.
        """
        engine = build_engine(
            cache=self.cache,
            retries=self.config.cell_retries,
            timeout_s=self.config.cell_timeout,
        )
        mark = [time.perf_counter()]

        def timed_on_point(index: int, doc: dict) -> None:
            now = time.perf_counter()
            cell_spans.append(span_record(
                f"cell[{index}]", "serve.cell", mark[0], now, self._epoch,
                parent_id=parent_span_id,
                offered_gbps=doc["offered_gbps"],
                ok="error" not in doc,
            ))
            mark[0] = now
            on_point(index, doc)

        with contextlib.ExitStack() as stack:
            if buffer is not None:
                stack.enter_context(thread_tracing(buffer))
            document = execute_query(query, engine, timed_on_point)
        stats = engine.stats
        meta = {
            "cells_run": stats.cells_run,
            "cells_cached": stats.cells_cached,
            "cells_from_store": stats.cells_from_store,
            "cells_retried": stats.cells_retried,
            "cells_quarantined": stats.cells_quarantined,
            "errors": document["errors"],
        }
        return render_document(document), meta

    async def execute_job(
        self, query: Query, job: Job, telemetry: RequestTelemetry
    ) -> bytes:
        """Leader coroutine: slot, worker thread, progress, telemetry."""
        job.leader_request_id = telemetry.request_id
        job.leader_trace_id = telemetry.ctx.trace_id
        queued = time.perf_counter()
        await self.admission.acquire_slot()
        queue_wait = time.perf_counter() - queued
        telemetry.add_span("queue.wait", "serve", queued, queued + queue_wait)
        loop = asyncio.get_running_loop()
        total = len(query.points)
        exec_ctx = telemetry.ctx.child()

        def on_point(index: int, doc: dict) -> None:
            # Called from the worker thread after each finished point.
            loop.call_soon_threadsafe(job.post, {
                "event": "point",
                "index": index,
                "of": total,
                "offered_gbps": doc["offered_gbps"],
                "ok": "error" not in doc,
            })
            if self.events.enabled:
                self.events.emit(
                    "cell", level="debug", sampled=True,
                    request_id=telemetry.request_id,
                    trace_id=telemetry.ctx.trace_id,
                    query_key=job.key,
                    device=query.device,
                    index=index, of=total,
                    offered_gbps=doc["offered_gbps"],
                    ok="error" not in doc,
                )

        buffer = (
            TraceBuffer(sample_every=self.config.trace_sample)
            if self.trace is not None else None
        )
        cell_spans: List[Dict[str, object]] = []
        meta: Dict[str, object] = {}
        start = time.perf_counter()
        try:
            body, meta = await loop.run_in_executor(
                self._executor, self._run_query, query, on_point,
                buffer, exec_ctx.span_id, cell_spans,
            )
            return body
        finally:
            self.admission.release_slot()
            exec_s = time.perf_counter() - start
            telemetry.queue_wait_s = queue_wait
            telemetry.exec_s = exec_s
            telemetry.extra.update(meta)
            telemetry.add_span(
                "execute", "serve", start, start + exec_s,
                span_id=exec_ctx.span_id, query_key=job.key,
            )
            telemetry.spans.extend(cell_spans)
            job.meta = {
                "queue_wait_s": round(queue_wait, 6),
                "exec_s": round(exec_s, 6),
                **meta,
            }
            if buffer is not None and self.trace is not None:
                self._next_sim_track += merge_job_buffer(
                    self.trace, buffer,
                    trace_id=telemetry.ctx.trace_id,
                    request_id=telemetry.request_id,
                    wall_track=self.wall_track_for(telemetry),
                    sim_track_base=self._next_sim_track,
                )
            registry = metrics()
            if registry.enabled:
                registry.histogram("serve.job_seconds").observe(exec_s)

    # -- operational snapshot ----------------------------------------------

    def stats_document(self) -> dict:
        """The ``GET /stats`` payload."""
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "requests": self.requests,
            "jobs": {
                "inflight": len(self.coalescer),
                "started": self.coalescer.leads,
                "coalesced": self.coalescer.coalesced,
            },
            "admission": {
                "active": self.admission.active,
                "queued": self.admission.queued,
                "rejected": self.admission.rejected,
                "max_inflight": self.admission.max_inflight,
                "max_queue": self.admission.max_queue,
                "per_tenant": self.admission.per_tenant,
            },
            "cache": {
                "entries": len(self.cache),
                "memory_hits": self.cache.memory_hits,
                "disk_hits": self.cache.disk_hits,
                "store_hits": self.cache.store_hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "store": (
                    self.cache.store.stats()
                    if self.cache.store is not None else None
                ),
            },
            "slo": self.slo.snapshot(),
            "flight": self.flight.stats(),
            "events": self.events.stats(),
        }

    # -- connection handling -----------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader, peer=peer)
                except ProtocolError as exc:
                    self.events.emit(
                        "protocol.error", level="warn",
                        peer=peer, status=exc.status, message=str(exc),
                    )
                    write_response(
                        writer, exc.status,
                        error_body(exc.status, str(exc)),
                        keep_alive=False,
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                if self._stop.is_set():
                    # Shutdown began while this request was in flight on
                    # the wire: answer 503 + Retry-After instead of
                    # resetting the connection under the client.
                    await respond_draining(self, request, writer)
                    await writer.drain()
                    return
                keep = await handle_request(self, request, writer)
                await writer.drain()
                if not keep or not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError) as exc:
            # Client went away mid-exchange; nothing to answer, but the
            # disappearance itself is a debug-level fact worth keeping.
            self.events.emit(
                "conn.error", level="debug",
                peer=peer, reason=type(exc).__name__,
            )
        except asyncio.CancelledError:
            # Shutdown cancelled this handler; exiting quietly here (not
            # re-raising) keeps asyncio's stream-protocol callback from
            # logging a spurious traceback per idle connection.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, install the registry, spin up the workers."""
        self._previous_registry = metrics()
        enable_metrics(self.registry)
        if self.config.log_level != "off":
            sink = sys.stdout
            if self.config.event_log is not None:
                self._event_file = open(
                    self.config.event_log, "a", encoding="utf-8"
                )
                sink = self._event_file
            self.events = EventLogger(
                sink=sink,
                level=self.config.log_level,
                sample_every=self.config.event_sample,
            )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Drain jobs, close connections, restore the registry."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_s
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        leftovers = await self.coalescer.drain(self.config.drain_s)
        if self._executor is not None:
            self._executor.shutdown(
                wait=leftovers == 0, cancel_futures=True
            )
        # Grace window: a keep-alive client whose next request is
        # already on the wire gets the 503-draining answer instead of a
        # reset.  Handlers exit on their own after responding (or when
        # their client closes); only stragglers are cancelled below.
        remaining = deadline - loop.time()
        if self._conn_tasks and remaining > 0:
            await asyncio.wait(list(self._conn_tasks), timeout=remaining)
        for writer in list(self._connections):
            writer.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=1.0)
        if self.trace is not None and self.config.trace_path is not None:
            self.trace.write(self.config.trace_path)
        if isinstance(self._previous_registry, MetricsRegistry):
            enable_metrics(self._previous_registry)
        else:
            disable_metrics()

    def _close_event_log(self) -> None:
        """Release the event-log file (after the last lifecycle event)."""
        if self._event_file is not None:
            with contextlib.suppress(Exception):
                self._event_file.close()
            self._event_file = None

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (signal handlers land here)."""
        self._stop.set()

    async def serve(self) -> None:
        """Run until SIGTERM/SIGINT (or :meth:`request_shutdown`)."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, self.request_shutdown)
        self.events.emit(
            "server.start",
            host=self.config.host,
            port=self.port,
            url=f"http://{self.config.host}:{self.port}",
            workers=self.config.workers,
            slots=self.admission.max_inflight,
            queue=self.admission.max_queue,
        )
        try:
            await self._stop.wait()
        finally:
            await self.stop()
            stats = self.stats_document()
            self.events.emit(
                "server.stop",
                requests=stats["requests"],
                jobs=stats["jobs"]["started"],
                coalesced=stats["jobs"]["coalesced"],
            )
            self._close_event_log()

    def run(self) -> int:
        """Blocking entry point (the CLI's ``repro serve``)."""
        asyncio.run(self.serve())
        return 0


def render_oneshot_banner(body: bytes) -> str:  # pragma: no cover - trivial
    """Human summary of a ``--oneshot`` result (stderr side channel)."""
    import json as _json

    doc = _json.loads(body)
    return (
        f"query {doc.get('query_key', '?')[:12]}: "
        f"{len(doc.get('points', []))} point(s), "
        f"{doc.get('errors', 0)} error(s)"
    )
