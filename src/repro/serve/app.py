"""The ``repro serve`` application: event loop, worker pool, lifecycle.

Architecture (one paragraph): a single asyncio event loop owns every
piece of shared mutable state -- the coalescer's in-flight map, the
admission counters, the per-job event fan-out -- so none of it needs
locks.  Actual characterization work happens in a small
:class:`~concurrent.futures.ThreadPoolExecutor`: each leader job builds
a throwaway :class:`~repro.runtime.executor.CampaignEngine` (``jobs=1``,
inline resilient mode) over the server's one shared
:class:`~repro.runtime.cache.RunCache`, installs the query's fault plan
and chaos policy into its own context (ContextVars, so neighbours are
untouched), and runs the sweep point by point, posting progress back to
the loop with ``call_soon_threadsafe``.  The thread-safe pieces the
worker threads *do* share -- the run cache and the metrics registry --
are exactly the ones the concurrency sweep hardened (see DESIGN.md).

Lifecycle: ``SIGTERM``/``SIGINT`` stop the accept loop, in-flight jobs
get ``drain_s`` seconds to finish, open connections are then closed,
and the process exits 0.  A poisoned query (chaos, doomed cells)
degrades its own response document; it cannot take the server down.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Set

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    metrics,
)
from repro.runtime.cache import RunCache
from repro.serve.admission import AdmissionController
from repro.serve.coalescer import Coalescer, Job
from repro.serve.handlers import error_body, handle_request
from repro.serve.protocol import ProtocolError, read_request, write_response
from repro.serve.query import Query, build_engine, execute_query, \
    render_document


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one server instance (the CLI flags, as data)."""

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 4
    max_inflight: int = 0
    """Leader jobs executing at once; 0 means "same as workers"."""
    max_queue: int = 32
    per_tenant: int = 16
    cell_retries: int = 2
    cell_timeout: Optional[float] = None
    cache_dir: Optional[str] = None
    allow_chaos: bool = False
    drain_s: float = 5.0

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                "port must be 0-65535 (0 picks an ephemeral port)"
            )
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.max_inflight < 0:
            raise ConfigurationError("max_inflight must be >= 0")
        if self.max_queue < 1 or self.per_tenant < 1:
            raise ConfigurationError("admission limits must be >= 1")
        if self.cell_retries < 1:
            raise ConfigurationError("cell_retries must be >= 1")
        if self.drain_s < 0:
            raise ConfigurationError("drain_s must be >= 0")

    @property
    def effective_inflight(self) -> int:
        return self.max_inflight or self.workers


class ServeApp:
    """One characterization-as-a-service instance."""

    def __init__(self, config: ServeConfig = ServeConfig()):
        self.config = config
        self.cache = RunCache(config.cache_dir)
        self.coalescer = Coalescer()
        self.admission = AdmissionController(
            max_inflight=config.effective_inflight,
            max_queue=config.max_queue,
            per_tenant=config.per_tenant,
        )
        self.registry = MetricsRegistry()
        self.requests = 0
        self.port: Optional[int] = None
        self._started_at = time.monotonic()
        self._previous_registry = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._stop = asyncio.Event()

    # -- job execution -----------------------------------------------------

    def _run_query(self, query: Query, on_point) -> bytes:
        """Worker-thread body: execute one query, render its bytes.

        A fresh engine per job keeps failure state (quarantine ledger,
        retry policy) job-local while the shared cache still makes every
        job's results visible to the next one.
        """
        engine = build_engine(
            cache=self.cache,
            retries=self.config.cell_retries,
            timeout_s=self.config.cell_timeout,
        )
        return render_document(execute_query(query, engine, on_point))

    async def execute_job(self, query: Query, job: Job) -> bytes:
        """Leader coroutine: slot, worker thread, progress, metrics."""
        await self.admission.acquire_slot()
        loop = asyncio.get_running_loop()
        total = len(query.points)

        def on_point(index: int, doc: dict) -> None:
            # Called from the worker thread after each finished point.
            loop.call_soon_threadsafe(job.post, {
                "event": "point",
                "index": index,
                "of": total,
                "offered_gbps": doc["offered_gbps"],
                "ok": "error" not in doc,
            })

        start = time.monotonic()
        try:
            return await loop.run_in_executor(
                self._executor, self._run_query, query, on_point
            )
        finally:
            self.admission.release_slot()
            registry = metrics()
            if registry.enabled:
                registry.histogram("serve.job_seconds").observe(
                    time.monotonic() - start
                )

    # -- operational snapshot ----------------------------------------------

    def stats_document(self) -> dict:
        """The ``GET /stats`` payload."""
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "requests": self.requests,
            "jobs": {
                "inflight": len(self.coalescer),
                "started": self.coalescer.leads,
                "coalesced": self.coalescer.coalesced,
            },
            "admission": {
                "active": self.admission.active,
                "queued": self.admission.queued,
                "rejected": self.admission.rejected,
                "max_inflight": self.admission.max_inflight,
                "max_queue": self.admission.max_queue,
                "per_tenant": self.admission.per_tenant,
            },
            "cache": {
                "entries": len(self.cache),
                "memory_hits": self.cache.memory_hits,
                "disk_hits": self.cache.disk_hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
            },
        }

    # -- connection handling -----------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while not self._stop.is_set():
                try:
                    request = await read_request(reader, peer=peer)
                except ProtocolError as exc:
                    write_response(
                        writer, exc.status,
                        error_body(exc.status, str(exc)),
                        keep_alive=False,
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                keep = await handle_request(self, request, writer)
                await writer.drain()
                if not keep or not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            # Shutdown cancelled this handler; exiting quietly here (not
            # re-raising) keeps asyncio's stream-protocol callback from
            # logging a spurious traceback per idle connection.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, install the registry, spin up the workers."""
        self._previous_registry = metrics()
        enable_metrics(self.registry)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Drain jobs, close connections, restore the registry."""
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        leftovers = await self.coalescer.drain(self.config.drain_s)
        if self._executor is not None:
            self._executor.shutdown(
                wait=leftovers == 0, cancel_futures=True
            )
        for writer in list(self._connections):
            writer.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=1.0)
        if isinstance(self._previous_registry, MetricsRegistry):
            enable_metrics(self._previous_registry)
        else:
            disable_metrics()

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (signal handlers land here)."""
        self._stop.set()

    async def serve(self) -> None:
        """Run until SIGTERM/SIGINT (or :meth:`request_shutdown`)."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, self.request_shutdown)
        print(
            f"serving on http://{self.config.host}:{self.port} "
            f"({self.config.workers} workers, "
            f"{self.admission.max_inflight} slots, "
            f"queue {self.admission.max_queue})",
            flush=True,
        )
        try:
            await self._stop.wait()
        finally:
            await self.stop()
            stats = self.stats_document()
            print(
                f"shutdown complete: {stats['requests']} requests, "
                f"{stats['jobs']['started']} jobs, "
                f"{stats['jobs']['coalesced']} coalesced",
                flush=True,
            )

    def run(self) -> int:
        """Blocking entry point (the CLI's ``repro serve``)."""
        asyncio.run(self.serve())
        return 0


def render_oneshot_banner(body: bytes) -> str:  # pragma: no cover - trivial
    """Human summary of a ``--oneshot`` result (stderr side channel)."""
    import json as _json

    doc = _json.loads(body)
    return (
        f"query {doc.get('query_key', '?')[:12]}: "
        f"{len(doc.get('points', []))} point(s), "
        f"{doc.get('errors', 0)} error(s)"
    )
