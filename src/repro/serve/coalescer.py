"""Request coalescing: identical in-flight queries share one execution.

The run cache already collapses *sequential* duplicates; what it cannot
collapse is the thundering herd -- N clients asking for the same
characterization while the first one is still computing.  The coalescer
closes that gap on the event loop: the first arrival for a key becomes
the **leader** and owns the single :class:`asyncio.Task` that executes
the job; every later arrival (a **follower**) attaches to the same task
and receives the same rendered bytes.  N identical concurrent requests
therefore cost exactly one execution, and the ``serve.coalesced``
counter says how many rode along.

Everything here runs on the single event loop, so plain dicts need no
locks; the worker threads never touch this module directly -- they post
progress through ``loop.call_soon_threadsafe``.

Followers await through :func:`asyncio.shield`, so one subscriber
disconnecting cancels only its own wait, never the shared job.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, List, Set, Tuple

from repro.obs.metrics import metrics

_DONE = object()
"""Sentinel closing every subscriber queue when the job finishes."""


class Job:
    """One in-flight execution plus its progress-event fan-out.

    Events are kept for replay: a follower that attaches mid-job first
    receives everything that already happened, so every subscriber sees
    the full event history regardless of when it joined.
    """

    def __init__(self, key: str):
        self.key = key
        self.task: asyncio.Task = None  # set by the coalescer
        self.subscribers = 0
        self.leader_request_id: str = ""
        """Request id of the leader (followers' wide events link to it)."""
        self.leader_trace_id: str = ""
        """Trace id of the leader (follower spans link into its trace)."""
        self.meta: dict = {}
        """Execution facts set by the leader (queue wait, exec time,
        cache/retry counts); every subscriber's wide event reads them."""
        self._events: List[dict] = []
        self._queues: Set[asyncio.Queue] = set()

    def post(self, event: dict) -> None:
        """Record one progress event and wake the live subscribers.

        Must run on the event loop; worker threads get here via
        ``loop.call_soon_threadsafe``.
        """
        self._events.append(event)
        for queue in self._queues:
            queue.put_nowait(event)

    def finish(self) -> None:
        """Close every subscriber queue (the task is done)."""
        for queue in self._queues:
            queue.put_nowait(_DONE)

    def subscribe(self) -> asyncio.Queue:
        """A queue replaying past events, then streaming live ones."""
        queue: asyncio.Queue = asyncio.Queue()
        for event in self._events:
            queue.put_nowait(event)
        if self.task is not None and self.task.done():
            queue.put_nowait(_DONE)
        else:
            self._queues.add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        """Detach one subscriber queue."""
        self._queues.discard(queue)

    async def events(self, queue: asyncio.Queue):
        """Async iterator over ``queue`` until the job closes it."""
        while True:
            event = await queue.get()
            if event is _DONE:
                return
            yield event


class Coalescer:
    """The key -> in-flight :class:`Job` map."""

    def __init__(self):
        self._inflight: Dict[str, Job] = {}
        self.leads = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def submit(
        self, key: str, factory: Callable[[Job], Awaitable[bytes]]
    ) -> Tuple[Job, bool]:
        """The job for ``key``, creating it (as leader) when absent.

        ``factory(job)`` builds the leader's coroutine; it runs in a
        task owned by the coalescer, so it outlives any individual
        subscriber.  Returns ``(job, leader)``.
        """
        job = self._inflight.get(key)
        if job is not None:
            job.subscribers += 1
            self.coalesced += 1
            metrics().counter("serve.coalesced").inc()
            return job, False
        job = Job(key)
        job.subscribers = 1
        job.task = asyncio.get_running_loop().create_task(factory(job))
        job.task.add_done_callback(lambda task: self._done(key, job))
        self._inflight[key] = job
        self.leads += 1
        metrics().counter("serve.jobs_started").inc()
        return job, True

    def _done(self, key: str, job: Job) -> None:
        """Retire a finished job: unmap it, close streams, log failures.

        The exception (if any) is retrieved here so an all-subscribers-
        gone job never warns "exception was never retrieved"; each
        awaiting subscriber still observes it through the shield.
        """
        if self._inflight.get(key) is job:
            del self._inflight[key]
        job.finish()
        if not job.task.cancelled() and job.task.exception() is not None:
            metrics().counter("serve.jobs_failed").inc()

    async def wait(self, job: Job) -> bytes:
        """Await a job's rendered bytes without owning its lifetime."""
        return await asyncio.shield(job.task)

    async def drain(self, timeout_s: float) -> int:
        """Wait for in-flight jobs to finish (shutdown); returns leftovers."""
        tasks = [job.task for job in self._inflight.values()]
        if tasks:
            await asyncio.wait(tasks, timeout=timeout_s)
        return len(self._inflight)
