"""Admission control: bounded work in flight, overload answered with 429.

Three independent limits, all enforced on the event loop (single
threaded, so plain counters suffice):

* **execution slots** (``max_inflight``) -- how many *leader* jobs may
  occupy worker threads at once.  Followers of a coalesced job never
  consume a slot; that is the whole point of coalescing.
* **queue depth** (``max_queue``) -- how many leaders may wait for a
  slot.  Beyond it the request is rejected immediately with 429 and a
  ``Retry-After`` hint, because an unbounded queue converts overload
  into unbounded latency, which is strictly worse.
* **per-tenant requests** (``per_tenant``) -- how many requests (leader
  or follower) one tenant may have open, so a single chatty client
  cannot monopolize either the slots or the coalescer.

The queue is FIFO (futures in a deque), and queue waits feed the
``serve.queue_wait_seconds`` histogram so saturation is visible in
``/metrics`` long before clients see 429s.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Deque, Dict

from repro.obs.metrics import DEFAULT_QUEUE_WAIT_BUCKETS_S, metrics


class AdmissionError(Exception):
    """A request refused at the door (HTTP 429)."""

    def __init__(self, message: str, retry_after_s: int = 1):
        super().__init__(message)
        self.status = 429
        self.retry_after_s = retry_after_s


class AdmissionController:
    """Slot, queue-depth and per-tenant accounting for one server."""

    def __init__(
        self,
        max_inflight: int,
        max_queue: int,
        per_tenant: int,
    ):
        if min(max_inflight, max_queue, per_tenant) < 1:
            raise ValueError("admission limits must be >= 1")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.per_tenant = per_tenant
        self.active = 0
        self.rejected = 0
        self._waiters: Deque[asyncio.Future] = deque()
        self._tenants: Dict[str, int] = {}

    @property
    def queued(self) -> int:
        """Leaders currently waiting for an execution slot."""
        return len(self._waiters)

    # -- per-tenant request accounting ------------------------------------

    def admit_tenant(self, tenant: str) -> None:
        """Count one open request for ``tenant`` or refuse it."""
        open_requests = self._tenants.get(tenant, 0)
        if open_requests >= self.per_tenant:
            self.rejected += 1
            metrics().counter("serve.rejected", reason="tenant").inc()
            raise AdmissionError(
                f"tenant {tenant!r} already has {open_requests} open "
                f"request(s) (limit {self.per_tenant})"
            )
        self._tenants[tenant] = open_requests + 1

    def release_tenant(self, tenant: str) -> None:
        """Close one of ``tenant``'s requests."""
        remaining = self._tenants.get(tenant, 0) - 1
        if remaining > 0:
            self._tenants[tenant] = remaining
        else:
            self._tenants.pop(tenant, None)

    # -- execution slots (leaders only) -----------------------------------

    async def acquire_slot(self) -> None:
        """Take an execution slot, waiting in the bounded FIFO queue."""
        if self.active < self.max_inflight:
            self.active += 1
            return
        if len(self._waiters) >= self.max_queue:
            self.rejected += 1
            metrics().counter("serve.rejected", reason="queue").inc()
            raise AdmissionError(
                f"server at capacity ({self.active} running, "
                f"{len(self._waiters)} queued)"
            )
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        start = time.monotonic()
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                # The slot was handed over concurrently with the
                # cancellation; pass it on instead of leaking it.
                self.release_slot()
            else:
                self._waiters.remove(waiter)
            raise
        finally:
            registry = metrics()
            if registry.enabled:
                registry.histogram(
                    "serve.queue_wait_seconds",
                    buckets=DEFAULT_QUEUE_WAIT_BUCKETS_S,
                ).observe(time.monotonic() - start)
        # ``active`` was transferred by the releaser; nothing to bump.

    def release_slot(self) -> None:
        """Free a slot, handing it to the oldest waiter if there is one."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return  # slot transferred, ``active`` unchanged
        self.active -= 1
