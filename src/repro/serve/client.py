"""A minimal asyncio HTTP/1.1 client for the serve test/bench stack.

Only what talking to ``repro serve`` requires: fixed-length and chunked
response bodies, keep-alive connection reuse, and an incremental line
iterator for the ndjson progress stream.  Kept inside the package (not
a public API) so the tests, the benchmark and the CI smoke script all
exercise the server through one code path instead of three hand-rolled
socket loops.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import AsyncIterator, Dict, Optional, Tuple


@dataclass
class Response:
    """One complete HTTP response."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> object:
        """Decode the body as JSON."""
        return json.loads(self.body)


class ServeClient:
    """One keep-alive connection to a running server."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def connect(self) -> None:
        """Open (or reopen) the connection."""
        await self.close()
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        """Close the connection if open."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:  # noqa: BLE001 -- already torn down
                pass
        self._reader = self._writer = None

    async def _send(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Dict[str, str],
    ) -> None:
        if self._writer is None:
            await self.connect()
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {self.host}:{self.port}",
                 f"Content-Length: {len(body)}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        self._writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await self._writer.drain()

    async def _read_head(self) -> Tuple[int, Dict[str, str]]:
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _read_chunk(self) -> bytes:
        """One chunk of a chunked body; empty bytes on the terminator."""
        size_line = await self._reader.readline()
        size = int(size_line.strip().split(b";")[0], 16)
        if size == 0:
            await self._reader.readline()  # trailing CRLF
            return b""
        data = await self._reader.readexactly(size)
        await self._reader.readexactly(2)  # chunk CRLF
        return data

    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        """One full request/response exchange (chunked bodies drained)."""
        await self._send(method, path, body, headers or {})
        status, response_headers = await self._read_head()
        if response_headers.get("transfer-encoding", "") == "chunked":
            chunks = []
            while True:
                chunk = await self._read_chunk()
                if not chunk:
                    break
                chunks.append(chunk)
            payload = b"".join(chunks)
        else:
            length = int(response_headers.get("content-length", "0"))
            payload = await self._reader.readexactly(length)
        if response_headers.get("connection", "").lower() == "close":
            await self.close()
        return Response(status, response_headers, payload)

    async def stream_lines(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> AsyncIterator[dict]:
        """Yield each ndjson line of a streamed response as it arrives."""
        await self._send(method, path, body, headers or {})
        status, response_headers = await self._read_head()
        if response_headers.get("transfer-encoding", "") != "chunked":
            length = int(response_headers.get("content-length", "0"))
            payload = await self._reader.readexactly(length)
            for line in payload.splitlines():
                if line:
                    yield json.loads(line)
            return
        buffer = b""
        while True:
            chunk = await self._read_chunk()
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line:
                    yield json.loads(line)
        if buffer:
            yield json.loads(buffer)


async def fetch(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    headers: Optional[Dict[str, str]] = None,
) -> Response:
    """One-shot convenience: connect, exchange, disconnect."""
    async with ServeClient(host, port) as client:
        return await client.request(method, path, body, headers)
