"""`repro.serve`: characterization-as-a-service.

The campaign runtime batch-answers questions the CLI asks once; this
package turns the same runtime into a long-lived asyncio HTTP service
so many clients can ask concurrently -- with **request coalescing**
(identical in-flight queries share one execution and receive
byte-identical bytes), **admission control** (bounded slots, bounded
queue, per-tenant caps, 429 on overload), per-job **fault isolation**
(a poisoned query degrades its own response document, never the
server), and streamed ndjson progress.  Stdlib only: the HTTP/1.1
framing is hand-rolled in :mod:`repro.serve.protocol`.

Every request is end-to-end observable (:mod:`repro.serve.telemetry`):
one wide ndjson event per request, W3C ``traceparent`` propagation into
per-job simulator trace buffers, rolling-window SLOs on ``/stats`` and
``/metrics``, and a flight recorder behind ``GET /debug/requests`` --
all strictly read-only with respect to results.

See DESIGN.md ("Serving") for the coalescing and admission model and
the thread-safety contract this package leans on.
"""

from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.client import Response, ServeClient, fetch
from repro.serve.coalescer import Coalescer, Job
from repro.serve.protocol import (
    ChunkedResponse,
    ProtocolError,
    Request,
    read_request,
    write_response,
)
from repro.serve.query import (
    Query,
    QueryError,
    QueryPoint,
    build_engine,
    execute_query,
    parse_query,
    render_document,
    run_oneshot,
)
from repro.serve.telemetry import (
    RequestTelemetry,
    level_for_status,
    merge_job_buffer,
    span_record,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "ChunkedResponse",
    "Coalescer",
    "Job",
    "ProtocolError",
    "Query",
    "QueryError",
    "QueryPoint",
    "Request",
    "RequestTelemetry",
    "Response",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "build_engine",
    "execute_query",
    "fetch",
    "level_for_status",
    "merge_job_buffer",
    "parse_query",
    "read_request",
    "render_document",
    "run_oneshot",
    "span_record",
    "write_response",
]
