"""Characterization queries: the service's unit of work.

A query names a device and a list of operating points, plus an optional
fault plan (and, when the server allows it, an error-only chaos policy
for resilience drills).  Two properties make queries the coalescing
currency:

* :meth:`Query.key` is a **content hash** over the canonical JSON of the
  behaviour-determining fields -- two requests that mean the same
  characterization get the same key no matter how their JSON was
  spelled, so the coalescer can merge them onto one execution;
* :func:`render_document` is **deterministic** -- sorted keys, compact
  separators, shortest-round-trip floats -- so every subscriber of a
  coalesced job receives byte-identical payloads, and those bytes equal
  what a solo ``repro serve --oneshot`` run of the same query prints.
  The serve test suite and the benchmark both assert this identity
  before trusting any qps number.

Execution goes through a :class:`~repro.runtime.executor.CampaignEngine`
point by point (identical results to any batching -- the engine
guarantees that -- but it gives the server natural per-point progress
events).  A quarantined point degrades to an ``error`` object inside the
response document; it never fails the query, let alone the server.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MelodyError
from repro.faults.chaos import ChaosPolicy, chaos_injection
from repro.faults.plan import FaultPlan, fault_injection
from repro.rng import DEFAULT_SEED
from repro.runtime.cache import RunCache
from repro.runtime.executor import CampaignEngine, RetryPolicy, SimCell

MAX_POINTS = 64
"""Most operating points one query may sweep."""

MAX_REQUESTS_PER_POINT = 5_000_000
"""Largest simulated request count one point may ask for."""

DEFAULT_N_REQUESTS = 20_000
"""Simulated requests per point when the query does not say."""


class QueryError(MelodyError):
    """A request body that does not describe a valid query (HTTP 400)."""


@dataclass(frozen=True)
class QueryPoint:
    """One operating point of the sweep."""

    offered_gbps: float
    n_requests: int
    read_fraction: float

    def to_dict(self) -> Dict[str, object]:
        """Canonical form (feeds both the key and the response)."""
        return {
            "offered_gbps": self.offered_gbps,
            "n_requests": self.n_requests,
            "read_fraction": self.read_fraction,
        }


@dataclass(frozen=True)
class Query:
    """A parsed, validated characterization query."""

    device: str
    points: Tuple[QueryPoint, ...]
    seed: int = DEFAULT_SEED
    fault_plan: Optional[FaultPlan] = None
    chaos: Optional[ChaosPolicy] = None

    def key(self) -> str:
        """Content-addressed identity (the coalescing key)."""
        plan = self.fault_plan
        payload = {
            "device": self.device,
            "points": [p.to_dict() for p in self.points],
            "seed": self.seed,
            "fault_plan": (
                plan.key() if plan is not None and plan.enabled else None
            ),
            "chaos": (
                _chaos_fingerprint(self.chaos)
                if self.chaos is not None else None
            ),
        }
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]

    def cells(self) -> List[SimCell]:
        """One batchable sim cell per operating point."""
        return [
            SimCell(
                device=self.device,
                n_requests=point.n_requests,
                offered_gbps=point.offered_gbps,
                read_fraction=point.read_fraction,
                seed=self.seed,
            )
            for point in self.points
        ]


def _chaos_fingerprint(chaos: ChaosPolicy) -> Dict[str, object]:
    """The chaos fields that change what a sabotaged query returns."""
    return {
        "error_prob": chaos.error_prob,
        "max_sabotaged_attempt": chaos.max_sabotaged_attempt,
        "seed": chaos.seed,
    }


def _require_number(
    data: Dict[str, object], field: str, default: float,
    lo: float, hi: float,
) -> float:
    value = data.get(field, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"query field {field!r} must be a number")
    value = float(value)
    if not lo <= value <= hi:
        raise QueryError(
            f"query field {field!r} must be in [{lo:g}, {hi:g}], "
            f"got {value:g}"
        )
    return value


def _parse_point(
    raw: object, defaults: Dict[str, object], index: int
) -> QueryPoint:
    if not isinstance(raw, dict):
        raise QueryError(f"points[{index}] must be an object")
    unknown = set(raw) - {"offered_gbps", "n_requests", "read_fraction"}
    if unknown:
        raise QueryError(
            f"points[{index}] has unknown field(s): {sorted(unknown)}"
        )
    merged = dict(defaults)
    merged.update(raw)
    if "offered_gbps" not in merged:
        raise QueryError(f"points[{index}] needs 'offered_gbps'")
    offered = _require_number(merged, "offered_gbps", 0.0, 1e-3, 1e3)
    n_requests = _require_number(
        merged, "n_requests", DEFAULT_N_REQUESTS, 1, MAX_REQUESTS_PER_POINT
    )
    if n_requests != int(n_requests):
        raise QueryError("'n_requests' must be an integer")
    read_fraction = _require_number(merged, "read_fraction", 1.0, 0.0, 1.0)
    return QueryPoint(
        offered_gbps=offered,
        n_requests=int(n_requests),
        read_fraction=read_fraction,
    )


def _parse_chaos(raw: object, allow_chaos: bool) -> ChaosPolicy:
    """An error-only chaos policy from the query's ``chaos`` object.

    Only ``error`` sabotage is ever constructible from a query: a kill
    would ``os._exit`` the *server* (inline workers share its process)
    and a hang would pin a worker slot, so both are refused regardless
    of ``allow_chaos`` -- the field names are rejected outright.
    """
    if not allow_chaos:
        raise QueryError(
            "query chaos is disabled; start the server with --allow-chaos"
        )
    if not isinstance(raw, dict):
        raise QueryError("query field 'chaos' must be an object")
    unknown = set(raw) - {"error_prob", "max_sabotaged_attempt", "seed"}
    if unknown:
        raise QueryError(
            f"chaos has unknown or forbidden field(s): {sorted(unknown)} "
            "(only error injection is allowed from a query)"
        )
    error_prob = _require_number(raw, "error_prob", 1.0, 0.0, 1.0)
    attempts = _require_number(raw, "max_sabotaged_attempt", 1_000_000,
                               0, 1_000_000)
    seed = _require_number(raw, "seed", 0, 0, 2**31)
    try:
        return ChaosPolicy(
            error_prob=error_prob,
            max_sabotaged_attempt=int(attempts),
            seed=int(seed),
        )
    except MelodyError as exc:
        raise QueryError(f"invalid chaos policy: {exc}") from None


def parse_query(data: object, allow_chaos: bool = False) -> Query:
    """Validate a decoded JSON body into a :class:`Query`.

    Every rejection is a :class:`QueryError` naming the offending field;
    the HTTP layer maps those to 400 responses.
    """
    if isinstance(data, (bytes, str)):
        try:
            data = json.loads(data)
        except ValueError as exc:
            raise QueryError(f"request body is not JSON: {exc}") from None
    if not isinstance(data, dict):
        raise QueryError("query must be a JSON object")
    known = {
        "device", "points", "n_requests", "read_fraction", "seed",
        "fault_plan", "chaos",
    }
    unknown = set(data) - known
    if unknown:
        raise QueryError(f"unknown query field(s): {sorted(unknown)}")

    from repro.hw.cxl import CXL_DEVICES

    device = data.get("device")
    if not isinstance(device, str) or not device:
        raise QueryError("query needs a 'device' name")
    device = device.upper()
    if device not in CXL_DEVICES:
        raise QueryError(
            f"unknown device {device!r}; "
            f"expected one of {sorted(CXL_DEVICES)}"
        )

    raw_points = data.get("points")
    if not isinstance(raw_points, list) or not raw_points:
        raise QueryError("query needs a non-empty 'points' list")
    if len(raw_points) > MAX_POINTS:
        raise QueryError(
            f"too many points ({len(raw_points)} > {MAX_POINTS})"
        )
    defaults = {
        key: data[key]
        for key in ("n_requests", "read_fraction")
        if key in data
    }
    points = tuple(
        _parse_point(raw, defaults, index)
        for index, raw in enumerate(raw_points)
    )

    seed = _require_number(data, "seed", DEFAULT_SEED, 0, 2**31)
    if seed != int(seed):
        raise QueryError("'seed' must be an integer")

    plan = None
    if data.get("fault_plan") is not None:
        try:
            plan = FaultPlan.from_dict(data["fault_plan"])
        except MelodyError as exc:
            raise QueryError(f"invalid fault plan: {exc}") from None

    chaos = None
    if data.get("chaos") is not None:
        chaos = _parse_chaos(data["chaos"], allow_chaos)

    return Query(
        device=device,
        points=points,
        seed=int(seed),
        fault_plan=plan,
        chaos=chaos,
    )


# -- execution and rendering -----------------------------------------------


def build_engine(
    cache: Optional[RunCache] = None,
    retries: int = 2,
    timeout_s: Optional[float] = None,
) -> CampaignEngine:
    """The per-job engine the server (and ``--oneshot``) executes with.

    ``jobs=1`` keeps the process pool structurally unreachable from
    worker threads, and ``isolate=False`` runs resilient attempts inline
    -- retry/quarantine semantics without forking from a thread.  A
    per-cell ``timeout_s`` re-enables isolation (the engine forces it;
    only a killable subprocess can enforce a deadline).
    """
    return CampaignEngine(
        cache=cache if cache is not None else RunCache(),
        jobs=1,
        policy=RetryPolicy(max_attempts=retries, timeout_s=timeout_s),
        isolate=False,
    )


def _point_document(
    point: QueryPoint, result, failure
) -> Dict[str, object]:
    """The response object for one executed (or quarantined) point."""
    doc: Dict[str, object] = point.to_dict()
    if result is None:
        doc["error"] = {
            "reason": failure.reason if failure else "error",
            "message": failure.message if failure else "cell quarantined",
            "attempts": failure.attempts if failure else 0,
        }
        return doc
    doc.update(
        p50_ns=result.percentile(50),
        p90_ns=result.percentile(90),
        p99_ns=result.percentile(99),
        p999_ns=result.percentile(99.9),
        mean_ns=result.mean_ns,
        tail_gap_ns=result.tail_gap_ns(),
        bank_conflicts=result.bank_conflicts,
        refresh_collisions=result.refresh_collisions,
        link_retries=result.link_retries,
    )
    if result.fault_plan is not None:
        doc["faults"] = {
            "injected_retries": result.injected_retries,
            "poisoned_reads": result.poisoned_reads,
            "ecc_corrected": result.ecc_corrected,
            "throttled_requests": result.throttled_requests,
        }
    return doc


def execute_query(
    query: Query,
    engine: CampaignEngine,
    on_point: Optional[Callable[[int, Dict[str, object]], None]] = None,
) -> Dict[str, object]:
    """Run every point of ``query`` and assemble the response document.

    The query's fault plan and chaos policy install into the *current
    context* only (they are ContextVars), so concurrent jobs in other
    worker threads are untouched.  Cell keys are computed inside
    ``run_cells`` under that installation, which is what fault-keys the
    cache entries.  ``on_point`` fires after each point with its
    finished sub-document (the server's progress stream).
    """
    with ExitStack() as stack:
        if query.fault_plan is not None and query.fault_plan.enabled:
            stack.enter_context(fault_injection(query.fault_plan))
        if query.chaos is not None:
            stack.enter_context(chaos_injection(query.chaos))
        point_docs: List[Dict[str, object]] = []
        for index, (point, cell) in enumerate(
            zip(query.points, query.cells())
        ):
            before = len(engine.failed)
            result = engine.run_cells([cell])[0]
            failure = None
            if result is None:
                fresh = engine.failed[before:]
                failure = fresh[-1] if fresh else None
            doc = _point_document(point, result, failure)
            point_docs.append(doc)
            if on_point is not None:
                on_point(index, doc)
        # Promote this query's finished points into the columnar store
        # (no-op without --cache-dir).  Still inside the fault/chaos
        # installation: cell keys are fault-keyed exactly as run_cells
        # computed them.  Promotion is a side effect on the cache tier
        # only -- the response document and its bytes are unchanged.
        engine.cache.promote_store(
            query.key(), job_id="serve",
            keys=[cell.key() for cell in query.cells()],
        )
    plan = query.fault_plan
    return {
        "query_key": query.key(),
        "device": query.device,
        "seed": query.seed,
        "fault_plan": (
            plan.key() if plan is not None and plan.enabled else None
        ),
        "points": point_docs,
        "errors": sum(1 for doc in point_docs if "error" in doc),
    }


def render_document(document: Dict[str, object]) -> bytes:
    """Deterministic wire form: sorted keys, compact, one trailing LF.

    This is the byte-identity contract: the same document always renders
    to the same bytes, whoever renders it.
    """
    text = json.dumps(
        document, sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )
    return text.encode("utf-8") + b"\n"


def run_oneshot(
    data: object,
    cache_dir: Optional[str] = None,
    allow_chaos: bool = False,
    retries: int = 2,
    timeout_s: Optional[float] = None,
) -> bytes:
    """Parse, execute and render one query exactly as the server would.

    This is the identity comparator the tests and CI smoke use: the
    bytes printed by ``repro serve --oneshot`` must equal the bytes any
    coalesced subscriber received for the same query.
    """
    query = parse_query(data, allow_chaos=allow_chaos)
    engine = build_engine(
        cache=RunCache(cache_dir), retries=retries, timeout_s=timeout_s
    )
    return render_document(execute_query(query, engine))
