"""Route dispatch for ``repro serve``.

Four routes, all deliberately boring:

* ``GET /healthz``            -- liveness: always ``{"status":"ok"}``.
* ``GET /metrics``            -- Prometheus text exposition of the
  server's registry (server families plus everything the runtime and
  simulator emit while executing jobs).
* ``GET /stats``              -- JSON operational snapshot (coalescer,
  admission, cache and uptime counters).
* ``POST /v1/characterize``   -- the work route; ``?stream=1`` switches
  the response to chunked ndjson progress events ending in the result
  document.

Error responses share one JSON shape, ``{"error": {"status", "message"}}``,
rendered through the same deterministic encoder as results.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs.metrics import metrics
from repro.serve.admission import AdmissionError
from repro.serve.coalescer import Job
from repro.serve.protocol import ChunkedResponse, Request, write_response
from repro.serve.query import QueryError, parse_query, render_document


def error_body(status: int, message: str) -> bytes:
    """The uniform JSON error payload."""
    return render_document(
        {"error": {"status": status, "message": message}}
    )


async def handle_request(app, request: Request, writer) -> bool:
    """Dispatch one request; returns whether to keep the connection."""
    app.requests += 1
    route = (request.method, request.path)
    registry = metrics()
    if registry.enabled:
        registry.counter("serve.requests", path=request.path).inc()

    if route == ("GET", "/healthz"):
        write_response(writer, 200, render_document({"status": "ok"}))
        return True
    if route == ("GET", "/metrics"):
        write_response(
            writer, 200, app.registry.to_prometheus().encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )
        return True
    if route == ("GET", "/stats"):
        body = (
            json.dumps(app.stats_document(), sort_keys=True) + "\n"
        ).encode("utf-8")
        write_response(writer, 200, body)
        return True
    if route == ("POST", "/v1/characterize"):
        return await handle_characterize(app, request, writer)

    known = {"/healthz", "/metrics", "/stats", "/v1/characterize"}
    if request.path in known:
        write_response(
            writer, 405,
            error_body(405, f"{request.method} not allowed on "
                            f"{request.path}"),
        )
    else:
        write_response(
            writer, 404, error_body(404, f"no route {request.path!r}")
        )
    return True


async def handle_characterize(app, request: Request, writer) -> bool:
    """Admit, coalesce, execute, and answer one characterization query."""
    tenant = request.header("x-repro-tenant", "anon") or "anon"
    try:
        app.admission.admit_tenant(tenant)
    except AdmissionError as exc:
        write_response(
            writer, 429, error_body(429, str(exc)),
            extra=(("Retry-After", str(exc.retry_after_s)),),
        )
        return True
    try:
        try:
            query = parse_query(
                request.body, allow_chaos=app.config.allow_chaos
            )
        except QueryError as exc:
            write_response(writer, 400, error_body(400, str(exc)))
            return True
        job, leader = app.coalescer.submit(
            query.key(), lambda job: app.execute_job(query, job)
        )
        if request.query.get("stream") in ("1", "true", "yes"):
            return await _answer_streaming(app, job, leader, writer)
        return await _answer_plain(app, job, writer)
    finally:
        app.admission.release_tenant(tenant)


async def _answer_plain(app, job: Job, writer) -> bool:
    """Buffered mode: one JSON document once the job finishes."""
    try:
        body = await app.coalescer.wait(job)
    except AdmissionError as exc:
        write_response(
            writer, 429, error_body(429, str(exc)),
            extra=(("Retry-After", str(exc.retry_after_s)),),
        )
        return True
    except Exception as exc:  # noqa: BLE001 -- degrade to a 500, stay up
        write_response(
            writer, 500,
            error_body(500, f"{type(exc).__name__}: {exc}"),
        )
        return True
    write_response(writer, 200, body)
    return True


async def _answer_streaming(app, job: Job, leader: bool, writer) -> bool:
    """Streamed mode: chunked ndjson events, then the result document.

    Followers replay the job's past events first, so every subscriber
    sees the complete history; the final line is the rendered result --
    byte-identical across all subscribers and ``--oneshot``.
    """
    stream = ChunkedResponse(writer)
    queue = job.subscribe()
    try:
        await stream.send(render_document({
            "event": "accepted",
            "key": job.key,
            "role": "leader" if leader else "follower",
        }))
        async for event in job.events(queue):
            await stream.send(render_document(event))
        body = await app.coalescer.wait(job)
        await stream.send(body)
    except AdmissionError as exc:
        await stream.send(render_document({
            "event": "error", "status": 429, "message": str(exc),
        }))
    except asyncio.CancelledError:
        raise
    except Exception as exc:  # noqa: BLE001 -- degrade, stay up
        await stream.send(render_document({
            "event": "error", "status": 500,
            "message": f"{type(exc).__name__}: {exc}",
        }))
    finally:
        job.unsubscribe(queue)
        await stream.close()
    return True
