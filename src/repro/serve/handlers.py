"""Route dispatch for ``repro serve``.

Seven routes, all deliberately boring:

* ``GET /healthz``            -- liveness: always ``{"status":"ok"}``.
* ``GET /metrics``            -- Prometheus text exposition of the
  server's registry (server families plus everything the runtime and
  simulator emit while executing jobs), including the SLO gauges.
* ``GET /stats``              -- JSON operational snapshot (coalescer,
  admission, cache, SLO, flight-recorder and uptime counters).
* ``GET /debug/requests``     -- the flight recorder: wide events of
  the last N requests, newest first (``?limit=`` caps the count).
* ``GET /debug/requests/<id>`` -- one request's full record: its wide
  event plus the nested span tree (parse → queue → coalesce → execute →
  cells).
* ``POST /v1/characterize``   -- the work route; ``?stream=1`` switches
  the response to chunked ndjson progress events ending in the result
  document.
* ``GET /v1/query``           -- cross-campaign scans over the columnar
  result store (mirrors the ``repro query`` CLI filters); 404 when the
  server runs without ``--cache-dir``.

Observability discipline: every request, whatever route or error path
it takes, exits through :meth:`ServeApp.observe_request` exactly once --
that is what makes "one wide event per request" an invariant rather
than a convention.  Characterize responses echo the request's trace
position in a ``traceparent`` header so callers can stitch our spans
into their own traces.

Error responses share one JSON shape, ``{"error": {"status", "message"}}``,
rendered through the same deterministic encoder as results.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.obs.metrics import metrics
from repro.serve.admission import AdmissionError
from repro.serve.coalescer import Job
from repro.serve.protocol import ChunkedResponse, Request, write_response
from repro.serve.query import QueryError, parse_query, render_document
from repro.serve.telemetry import RequestTelemetry

_KNOWN_PATHS = {
    "/healthz", "/metrics", "/stats", "/debug/requests", "/v1/characterize",
    "/v1/query",
}

_DEBUG_PREFIX = "/debug/requests/"


def error_body(status: int, message: str) -> bytes:
    """The uniform JSON error payload."""
    return render_document(
        {"error": {"status": status, "message": message}}
    )


def _respond(
    writer, telemetry: RequestTelemetry, status: int, body: bytes, **kwargs
) -> None:
    """Write a fixed-length response and record it on the telemetry."""
    telemetry.status = status
    telemetry.bytes_sent = len(body)
    write_response(writer, status, body, **kwargs)


async def handle_request(app, request: Request, writer) -> bool:
    """Dispatch one request; returns whether to keep the connection."""
    app.requests += 1
    registry = metrics()
    if registry.enabled:
        registry.counter("serve.requests", path=request.path).inc()
    telemetry = app.telemetry_for(request)
    try:
        return await _dispatch(app, request, writer, telemetry)
    finally:
        app.observe_request(request, telemetry)


async def respond_draining(app, request: Request, writer) -> None:
    """Answer a request that arrived during shutdown drain: 503 + retry.

    A draining server used to just reset these connections; a parked
    client saw a ``ConnectionResetError`` with no way to tell a crash
    from a restart.  A ``503`` with ``Retry-After`` (the drain budget,
    rounded up) tells it exactly when to come back -- and still exits
    through :meth:`ServeApp.observe_request`, preserving the
    one-wide-event-per-request invariant.
    """
    import math

    app.requests += 1
    registry = metrics()
    if registry.enabled:
        registry.counter("serve.requests", path=request.path).inc()
        registry.counter("serve.draining_rejects").inc()
    telemetry = app.telemetry_for(request)
    try:
        retry_after = max(1, math.ceil(app.config.drain_s))
        _respond(
            writer, telemetry, 503,
            error_body(503, "server is draining; retry shortly"),
            extra=(("Retry-After", str(retry_after)),),
            keep_alive=False,
        )
    finally:
        app.observe_request(request, telemetry)


async def _dispatch(
    app, request: Request, writer, telemetry: RequestTelemetry
) -> bool:
    route = (request.method, request.path)

    if route == ("GET", "/healthz"):
        _respond(writer, telemetry, 200,
                 render_document({"status": "ok"}))
        return True
    if route == ("GET", "/metrics"):
        app.slo.export_gauges(app.registry)
        _respond(
            writer, telemetry, 200,
            app.registry.to_prometheus().encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )
        return True
    if route == ("GET", "/stats"):
        body = (
            json.dumps(app.stats_document(), sort_keys=True) + "\n"
        ).encode("utf-8")
        _respond(writer, telemetry, 200, body)
        return True
    if route == ("GET", "/debug/requests"):
        return _answer_flight_list(app, request, writer, telemetry)
    if request.method == "GET" and request.path.startswith(_DEBUG_PREFIX):
        return _answer_flight_lookup(app, request, writer, telemetry)
    if route == ("GET", "/v1/query"):
        return _answer_store_query(app, request, writer, telemetry)
    if route == ("POST", "/v1/characterize"):
        return await handle_characterize(app, request, writer, telemetry)

    if request.path in _KNOWN_PATHS or \
            request.path.startswith(_DEBUG_PREFIX):
        _respond(
            writer, telemetry, 405,
            error_body(405, f"{request.method} not allowed on "
                            f"{request.path}"),
        )
    else:
        _respond(
            writer, telemetry, 404,
            error_body(404, f"no route {request.path!r}"),
        )
    return True


def _answer_flight_list(
    app, request: Request, writer, telemetry: RequestTelemetry
) -> bool:
    """``GET /debug/requests``: the flight recorder's recent wide events."""
    raw_limit = request.query.get("limit", "50")
    try:
        limit = int(raw_limit)
    except ValueError:
        _respond(writer, telemetry, 400,
                 error_body(400, f"bad limit {raw_limit!r}"))
        return True
    body = (json.dumps(
        {"requests": app.flight.recent(limit), **app.flight.stats()},
        sort_keys=True, default=str,
    ) + "\n").encode("utf-8")
    _respond(writer, telemetry, 200, body)
    return True


def _answer_flight_lookup(
    app, request: Request, writer, telemetry: RequestTelemetry
) -> bool:
    """``GET /debug/requests/<id>``: one request's event + span tree."""
    request_id = request.path[len(_DEBUG_PREFIX):]
    found = app.flight.lookup(request_id)
    if found is None:
        _respond(
            writer, telemetry, 404,
            error_body(404, f"request {request_id!r} not in the "
                            "flight recorder"),
        )
        return True
    body = (json.dumps(found, sort_keys=True, default=str) + "\n") \
        .encode("utf-8")
    _respond(writer, telemetry, 200, body)
    return True


def _answer_store_query(
    app, request: Request, writer, telemetry: RequestTelemetry
) -> bool:
    """``GET /v1/query``: cross-campaign scans over the columnar store.

    Query-string filters mirror the ``repro query`` CLI (``kind``,
    ``device``, ``workload``, ``target``, ``fault_plan`` -- ``none``
    means fault-free rows -- ``fingerprint``, ``min_gbps``/``max_gbps``,
    ``percentiles``, ``limit``).  Scans run inline on the event loop:
    they are vectorized predicate passes over mmap'd manifests, not
    characterization work, so they never queue behind leader jobs.
    """
    if app.cache.store is None:
        _respond(
            writer, telemetry, 404,
            error_body(404, "no columnar store (server started "
                            "without --cache-dir)"),
        )
        return True
    params = request.query
    fault_plan = params.get("fault_plan")
    if fault_plan == "none":
        fault_plan = ""
    try:
        min_gbps = (
            float(params["min_gbps"]) if "min_gbps" in params else None
        )
        max_gbps = (
            float(params["max_gbps"]) if "max_gbps" in params else None
        )
        limit = int(params.get("limit", "1000"))
        percentiles = tuple(
            float(p)
            for p in params.get("percentiles", "50,99,99.9").split(",")
            if p.strip()
        )
    except ValueError as exc:
        _respond(writer, telemetry, 400,
                 error_body(400, f"bad query parameter: {exc}"))
        return True
    kind = params.get("kind")
    if kind is not None and kind not in ("eventsim", "analytic"):
        _respond(writer, telemetry, 400,
                 error_body(400, f"bad kind {kind!r}"))
        return True
    rows = app.cache.store.query_rows(
        kind=kind,
        device=params.get("device"),
        workload=params.get("workload"),
        target=params.get("target"),
        fault_plan=fault_plan,
        min_gbps=min_gbps,
        max_gbps=max_gbps,
        fingerprint=params.get("fingerprint"),
        percentiles=percentiles,
        limit=limit,
    )
    for row in rows:  # JSON has no NaN; analytic load columns go null
        for field, value in row.items():
            if isinstance(value, float) and value != value:
                row[field] = None
    _respond(writer, telemetry, 200, render_document({
        "rows": rows,
        "count": len(rows),
        "stored": len(app.cache.store),
    }))
    return True


async def handle_characterize(
    app, request: Request, writer, telemetry: RequestTelemetry
) -> bool:
    """Admit, coalesce, execute, and answer one characterization query."""
    tenant = request.header("x-repro-tenant", "anon") or "anon"
    telemetry.tenant = tenant
    try:
        app.admission.admit_tenant(tenant)
    except AdmissionError as exc:
        _respond(
            writer, telemetry, 429, error_body(429, str(exc)),
            extra=(("Retry-After", str(exc.retry_after_s)),),
        )
        return True
    try:
        try:
            query = parse_query(
                request.body, allow_chaos=app.config.allow_chaos
            )
        except QueryError as exc:
            _respond(writer, telemetry, 400, error_body(400, str(exc)))
            return True
        telemetry.query_key = query.key()
        job, leader = app.coalescer.submit(
            query.key(),
            lambda job: app.execute_job(query, job, telemetry),
        )
        telemetry.role = "leader" if leader else "follower"
        telemetry.coalesced = not leader
        if request.query.get("stream") in ("1", "true", "yes"):
            return await _answer_streaming(
                app, job, leader, writer, telemetry
            )
        return await _answer_plain(app, job, writer, telemetry)
    finally:
        app.admission.release_tenant(tenant)


def _adopt_job_facts(job: Job, telemetry: RequestTelemetry) -> None:
    """Copy the leader's execution facts onto a subscriber's wide event.

    The leader's telemetry already carries its own ``queue_wait_s`` and
    ``exec_s`` (set by ``execute_job``); followers keep those at 0 --
    they never queued or executed -- and link to the leader instead.
    """
    for key, value in job.meta.items():
        if key in ("queue_wait_s", "exec_s"):
            continue
        telemetry.extra.setdefault(key, value)
    if telemetry.role == "follower":
        telemetry.extra.setdefault(
            "leader_request_id", job.leader_request_id
        )
        telemetry.extra.setdefault("leader_trace_id", job.leader_trace_id)


async def _answer_plain(
    app, job: Job, writer, telemetry: RequestTelemetry
) -> bool:
    """Buffered mode: one JSON document once the job finishes."""
    wait_start = time.perf_counter()
    try:
        body = await app.coalescer.wait(job)
    except AdmissionError as exc:
        _respond(
            writer, telemetry, 429, error_body(429, str(exc)),
            extra=(("Retry-After", str(exc.retry_after_s)),),
        )
        return True
    except Exception as exc:  # noqa: BLE001 -- degrade to a 500, stay up
        _adopt_job_facts(job, telemetry)
        _respond(
            writer, telemetry, 500,
            error_body(500, f"{type(exc).__name__}: {exc}"),
        )
        return True
    _adopt_job_facts(job, telemetry)
    if telemetry.role == "follower":
        telemetry.add_span(
            "coalesce.wait", "serve", wait_start, time.perf_counter(),
            leader_request_id=job.leader_request_id,
        )
    _respond(
        writer, telemetry, 200, body,
        extra=(("traceparent", telemetry.ctx.to_traceparent()),),
    )
    return True


async def _answer_streaming(
    app, job: Job, leader: bool, writer, telemetry: RequestTelemetry
) -> bool:
    """Streamed mode: chunked ndjson events, then the result document.

    Followers replay the job's past events first, so every subscriber
    sees the complete history; the final line is the rendered result --
    byte-identical across all subscribers and ``--oneshot``.
    """
    stream = ChunkedResponse(
        writer,
        extra=(("traceparent", telemetry.ctx.to_traceparent()),),
    )
    telemetry.status = 200  # headers are on the wire from here on
    wait_start = time.perf_counter()
    queue = job.subscribe()
    try:
        await stream.send(render_document({
            "event": "accepted",
            "key": job.key,
            "role": "leader" if leader else "follower",
        }))
        async for event in job.events(queue):
            await stream.send(render_document(event))
        body = await app.coalescer.wait(job)
        _adopt_job_facts(job, telemetry)
        if telemetry.role == "follower":
            telemetry.add_span(
                "coalesce.wait", "serve", wait_start,
                time.perf_counter(),
                leader_request_id=job.leader_request_id,
            )
        telemetry.bytes_sent = len(body)
        await stream.send(body)
    except AdmissionError as exc:
        telemetry.extra["stream_error"] = str(exc)
        await stream.send(render_document({
            "event": "error", "status": 429, "message": str(exc),
        }))
    except asyncio.CancelledError:
        raise
    except Exception as exc:  # noqa: BLE001 -- degrade, stay up
        telemetry.extra["stream_error"] = f"{type(exc).__name__}: {exc}"
        await stream.send(render_document({
            "event": "error", "status": 500,
            "message": f"{type(exc).__name__}: {exc}",
        }))
    finally:
        job.unsubscribe(queue)
        await stream.close()
    return True
