"""Minimal HTTP/1.1 framing over asyncio streams.

``repro serve`` speaks plain HTTP so any client -- ``curl``, a browser, a
Prometheus scraper -- can talk to it, but the repo adds no runtime
dependencies, so the framing is hand-rolled here: request-line + header
parsing with hard size limits, ``Content-Length`` bodies, fixed-length
responses, and ``Transfer-Encoding: chunked`` for streamed progress
events.  Only the subset the service needs is implemented; anything
outside it is a :class:`ProtocolError`, which the connection handler
turns into a 400 and a closed connection.

Keep-alive is supported (it is what makes the warm-path benchmark an
honest qps number rather than a connection-setup benchmark): a handler
loop calls :func:`read_request` repeatedly until EOF or a
``Connection: close``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

MAX_REQUEST_LINE = 8192
"""Longest accepted request line (bytes)."""

MAX_HEADER_BYTES = 16384
"""Total header budget per request (bytes)."""

MAX_BODY_BYTES = 1_048_576
"""Largest accepted request body; queries are a few hundred bytes."""

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A request the framing layer refuses to parse.

    ``status`` is the HTTP status the handler should answer with before
    closing the connection (a malformed request leaves the stream in an
    unknown state, so it is never kept alive).
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    keep_alive: bool = True
    peer: str = ""
    parse_s: float = 0.0
    """Wall seconds spent reading/parsing this request off the wire,
    measured from the first request-line byte (keep-alive idle time
    between requests is excluded).  Feeds the ``http.parse`` span."""
    _json: object = field(default=None, repr=False)

    def header(self, name: str, default: str = "") -> str:
        """A header value by case-insensitive name."""
        return self.headers.get(name.lower(), default)


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    """One CRLF-terminated line within ``limit`` bytes."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise ProtocolError("truncated request") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("header line too long") from None
    if len(line) > limit:
        raise ProtocolError("header line too long")
    return line.rstrip(b"\r\n")


async def read_request(
    reader: asyncio.StreamReader, peer: str = ""
) -> Optional[Request]:
    """Parse one request, or ``None`` on clean EOF (client went away).

    Raises :class:`ProtocolError` for anything malformed or over the
    size limits; the caller answers with the error's status and closes.
    """
    line = await _read_line(reader, MAX_REQUEST_LINE)
    if not line:
        return None
    parse_start = time.perf_counter()
    parts = line.split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line {line[:64]!r}")
    method, target, version = (p.decode("latin-1") for p in parts)
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await _read_line(reader, MAX_HEADER_BYTES)
        if not line:
            break
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise ProtocolError("headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header {line[:64]!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise ProtocolError("chunked request bodies are not supported")
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {raw_length!r}") from None
    if length < 0:
        raise ProtocolError("negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise ProtocolError("request body too large", status=413)
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("request body truncated") from None

    split = urlsplit(target)
    connection = headers.get("connection", "").lower()
    keep_alive = connection != "close" and version != "HTTP/1.0"
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
        keep_alive=keep_alive,
        peer=peer,
        parse_s=time.perf_counter() - parse_start,
    )


def _head(
    status: int,
    content_type: str,
    extra: Tuple[Tuple[str, str], ...],
    framing: str,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        framing,
    ]
    lines.extend(f"{name}: {value}" for name, value in extra)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra: Tuple[Tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> None:
    """Queue one fixed-length response (the caller drains the writer)."""
    headers = list(extra)
    if not keep_alive:
        headers.append(("Connection", "close"))
    writer.write(
        _head(status, content_type, tuple(headers),
              f"Content-Length: {len(body)}")
    )
    writer.write(body)


class ChunkedResponse:
    """A ``Transfer-Encoding: chunked`` response being streamed.

    Used by the ndjson progress stream: each event is one chunk, so the
    client sees it as soon as the event happens, and the terminating
    zero-chunk keeps the connection reusable afterwards.
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        status: int = 200,
        content_type: str = "application/x-ndjson",
        extra: Tuple[Tuple[str, str], ...] = (),
    ):
        self._writer = writer
        self._writer.write(
            _head(status, content_type, extra, "Transfer-Encoding: chunked")
        )
        self._closed = False

    async def send(self, data: bytes) -> None:
        """Stream one chunk and drain (backpressure on slow clients)."""
        if not data or self._closed:
            return
        self._writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
        await self._writer.drain()

    async def close(self) -> None:
        """Terminate the chunk stream."""
        if self._closed:
            return
        self._closed = True
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
