"""Deterministic random-number plumbing.

Every stochastic component in the simulator draws from a ``numpy`` Generator
seeded through this module, so that a whole characterization campaign is
reproducible from a single root seed.  Components derive child seeds from
stable string keys (device names, workload names, tool names) rather than
call order, so adding a new experiment never perturbs existing results.
"""

from __future__ import annotations

import zlib

import numpy as np

DEFAULT_SEED = 0xC41_2025
"""Root seed used when callers do not supply one (CXL, 2025)."""


def derive_seed(root_seed: int, *keys: str) -> int:
    """Derive a stable child seed from a root seed and string keys.

    The derivation hashes the keys with CRC32 (stable across Python runs and
    platforms, unlike ``hash``) and mixes them into the root seed.
    """
    mixed = root_seed & 0xFFFFFFFF
    for key in keys:
        mixed = zlib.crc32(key.encode("utf-8"), mixed) & 0xFFFFFFFF
    return mixed


def generator_for(root_seed: int, *keys: str) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically from ``keys``."""
    return np.random.default_rng(derive_seed(root_seed, *keys))
